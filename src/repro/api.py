"""The stable, versioned public API of the JMake reproduction.

``repro.api`` is the only supported import surface: the CLI and every
example script import from here, and anything importable from this
module follows the serialized-record ``schema_version`` compatibility
story (see :data:`SCHEMA_VERSION` / :func:`migrate_record`).

Three tiers:

- **functions** — :func:`check_commit`, :func:`check_patch`,
  :func:`evaluate`, :func:`serve` cover the common one-shot paths;
- **session objects** — :class:`CheckSession`,
  :class:`EvaluationSession`, :class:`CheckService` for callers that
  hold state across many checks;
- **re-exports** — the data types and helpers user scripts legitimately
  touch (reports, corpus construction, tables/figures, observability,
  fault plans).

The old scattered entry points (``repro.core.jmake.JMake``,
``repro.evalsuite.runner.EvaluationRunner``) still work but emit
``DeprecationWarning``.
"""

from __future__ import annotations

# -- the facade's own imports (public re-export surface) ----------------------

from repro.analysis.deadblocks import BlockVerdict, DeadBlockAnalyzer
from repro.buildcache.cache import BuildCache, CachePolicy
from repro.core.changes import extract_changed_files
from repro.core.jmake import CheckSession, JMake, JMakeOptions
from repro.core.mutation import MutationEngine, MutationOverlay
from repro.core.report import (
    SCHEMA_VERSION,
    FileReport,
    FileStatus,
    PatchReport,
    migrate_record,
)
from repro.core.units import UnitDag, WorkUnit, run_units
from repro.errors import (
    FaultPlanError,
    FrameCorruptError,
    FrameTooLargeError,
    FrameTruncatedError,
    JournalCorruptError,
    JournalError,
    ReproError,
    SchemaError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadedError,
    ServiceOverloadError,
    SimulatedCrashError,
    TransportError,
    VcsError,
    WireError,
    WireSchemaError,
    WorkerCrashError,
    WorkerLostError,
)
from repro.evalsuite.experiments import EXPERIMENTS
from repro.evalsuite.figures import figure5_overall
from repro.evalsuite.reportdoc import write_markdown_report
from repro.evalsuite.runner import (
    EvaluationResult,
    EvaluationRunner,
    EvaluationSession,
    scaled_criteria,
)
from repro.evalsuite.tables import table1, table2, table3, table4
from repro.faults.chaos import (
    CrashPoint,
    crash_offsets,
    transport_chaos_plan,
)
from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import FaultPlan
from repro.faults.resilience import RetryPolicy
from repro.journal import Journal, ReplayResult, VerdictLedger
from repro.janitors.activity import ActivityAnalyzer
from repro.janitors.identify import JanitorFinder
from repro.kbuild.build import BuildSystem
from repro.kconfig.ast import Tristate
from repro.kconfig.configfile import Config
from repro.kernel.generator import generate_tree
from repro.kernel.layout import HazardKind
from repro.cpp.prepared import (
    collect_metrics as collect_substrate_metrics,
    set_event_hook as set_substrate_event_hook,
)
from repro.obs.events import (
    EVENT_FASTPATH_CHANGED,
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    Event,
    EventLog,
    NullEventLog,
    validate_event_record,
)
from repro.obs.export import (
    render_span_tree,
    span_count,
    write_chrome_trace,
)
from repro.obs.logcfg import LEVELS, configure_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    CallbackSink,
    JsonlSink,
    OpenMetricsSink,
    parse_openmetrics,
    read_jsonl,
    render_openmetrics,
    sanitized_metrics,
)
from repro.obs.timeseries import (
    SNAPSHOT_SCHEMA_VERSION,
    MetricsSnapshot,
    SnapshotRing,
    Snapshotter,
    histogram_quantiles,
    registry_from_dict,
    validate_snapshot_record,
)
from repro.obs.tracer import Tracer
from repro.service import (
    START_METHODS,
    TRANSPORT_KINDS,
    CheckRequest,
    CheckResult,
    CheckService,
    ServiceConfig,
    ShardSupervisor,
    SupervisorConfig,
    TransportOutcome,
    live_transports,
)
from repro.service.transport import wire
from repro.util.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.util.rng import DeterministicRng
from repro.vcs.diff import Patch, diff_texts
from repro.vcs.repository import Repository, Worktree
from repro.workload.corpus import Corpus, CorpusSpec, build_corpus
from repro.workload.personas import PersonaKind

__all__ = [
    # functions
    "check_commit", "check_patch", "evaluate", "serve", "validate_jobs",
    # sessions / service
    "CheckSession", "EvaluationSession", "CheckService", "ServiceConfig",
    "CheckRequest", "CheckResult", "ShardSupervisor", "SupervisorConfig",
    # transports and the wire protocol
    "TRANSPORT_KINDS", "START_METHODS", "TransportOutcome",
    "live_transports", "wire", "transport_chaos_plan",
    "TransportError", "WorkerLostError", "WireError",
    "FrameTruncatedError", "FrameCorruptError", "FrameTooLargeError",
    "WireSchemaError",
    # durability (write-ahead journal, resume, chaos)
    "Journal", "ReplayResult", "VerdictLedger", "CrashPoint",
    "crash_offsets", "JournalError", "JournalCorruptError",
    "SimulatedCrashError", "WorkerCrashError",
    # schema
    "SCHEMA_VERSION", "migrate_record",
    # telemetry plane (snapshots, sinks, structured events)
    "EVENT_FASTPATH_CHANGED", "EVENT_KINDS", "EVENT_SCHEMA_VERSION",
    "Event", "EventLog", "NullEventLog", "validate_event_record",
    "SNAPSHOT_SCHEMA_VERSION", "MetricsSnapshot", "SnapshotRing",
    "Snapshotter", "histogram_quantiles", "registry_from_dict",
    "validate_snapshot_record",
    "CallbackSink", "JsonlSink", "OpenMetricsSink",
    "parse_openmetrics", "read_jsonl", "render_openmetrics",
    "sanitized_metrics",
    "collect_substrate_metrics", "set_substrate_event_hook",
    # deprecated shims (still exported so old code keeps importing)
    "JMake", "EvaluationRunner",
    # data types and helpers
    "ActivityAnalyzer", "BlockVerdict", "BuildCache", "BuildSystem",
    "CachePolicy", "Config", "Corpus", "CorpusSpec", "DeadBlockAnalyzer",
    "DeterministicRng", "EXPERIMENTS", "EvaluationResult", "FaultInjector",
    "FaultPlan", "FaultPlanError", "FileReport", "FileStatus",
    "HazardKind", "JMakeOptions", "JanitorFinder", "LEVELS",
    "MetricsRegistry", "MutationEngine", "MutationOverlay",
    "NULL_INJECTOR", "Patch", "PatchReport", "PersonaKind", "ReproError",
    "Repository", "RetryPolicy", "SchemaError", "ServiceDrainingError",
    "ServiceError", "ServiceOverloadedError", "ServiceOverloadError",
    "Tracer", "Tristate",
    "UnitDag", "VcsError", "WorkUnit", "Worktree",
    "atomic_write_bytes", "atomic_write_json", "atomic_write_text",
    "build_corpus",
    "configure_logging", "diff_texts", "extract_changed_files",
    "figure5_overall", "generate_tree", "render_span_tree", "run_units",
    "scaled_criteria", "span_count", "table1", "table2", "table3",
    "table4", "write_chrome_trace", "write_markdown_report",
]


# -- validation ---------------------------------------------------------------

def validate_jobs(jobs, *, what: str = "jobs") -> int:
    """The one place ``--jobs``/shard counts are validated.

    Accepts any integral value ≥ 1 (bools rejected); raises
    ``ValueError`` with a uniform message otherwise. The CLI, the
    evaluation session, and the service config all call this, so
    ``jmake serve --shards 0`` and ``jmake evaluate --jobs 0`` fail the
    same way.
    """
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(
            f"{what} must be a positive integer, got {jobs!r}")
    if jobs < 1:
        raise ValueError(
            f"{what} must be a positive integer, got {jobs}")
    return jobs


# -- one-shot functions -------------------------------------------------------

def check_commit(tree, repository: Repository, commit,
                 *, options: JMakeOptions | None = None,
                 cache: "BuildCache | None" = None,
                 tracer=None, metrics=None,
                 fault_plan: "FaultPlan | None" = None,
                 retry_policy: "RetryPolicy | None" = None) -> PatchReport:
    """Check one commit of a repository against a generated tree."""
    session = CheckSession.from_generated_tree(
        tree, options=options, cache=cache, tracer=tracer,
        metrics=metrics, fault_plan=fault_plan,
        retry_policy=retry_policy)
    return session.check_commit(repository, commit)


def check_patch(worktree: Worktree, patch: Patch,
                *, tree=None, commit_id: str | None = None,
                options: JMakeOptions | None = None,
                cache: "BuildCache | None" = None,
                tracer=None, metrics=None,
                fault_plan: "FaultPlan | None" = None,
                retry_policy: "RetryPolicy | None" = None) -> PatchReport:
    """Check a patch against an already-checked-out worktree.

    ``tree`` (a generated kernel tree) binds bootstrap/rebuild
    metadata when available; without it the check runs bare.
    """
    if tree is not None:
        session = CheckSession.from_generated_tree(
            tree, options=options, cache=cache, tracer=tracer,
            metrics=metrics, fault_plan=fault_plan,
            retry_policy=retry_policy)
    else:
        session = CheckSession(
            options=options, cache=cache, tracer=tracer,
            metrics=metrics, fault_plan=fault_plan,
            retry_policy=retry_policy)
    return session.check_patch(worktree, patch, commit_id=commit_id)


def evaluate(corpus: Corpus, *,
             options: JMakeOptions | None = None,
             criteria=None,
             cache: "BuildCache | bool | None" = None,
             observe: bool = False,
             fault_plan: "FaultPlan | None" = None,
             retry_policy: "RetryPolicy | None" = None,
             limit: int | None = None,
             use_ground_truth_janitors: bool = False,
             jobs: int = 1,
             service: "bool | int | ServiceConfig" = False
             ) -> EvaluationResult:
    """Run the §V evaluation protocol over a corpus window."""
    session = EvaluationSession(
        corpus, options=options, criteria=criteria, cache=cache,
        observe=observe, fault_plan=fault_plan,
        retry_policy=retry_policy)
    return session.run(limit=limit,
                       use_ground_truth_janitors=use_ground_truth_janitors,
                       jobs=jobs, service=service)


def serve(corpus: Corpus, *,
          options: JMakeOptions | None = None,
          config: "ServiceConfig | None" = None,
          cache: "BuildCache | bool | None" = True) -> CheckService:
    """Construct a check service over a corpus (call ``start()`` or
    use the ``check_commits`` sync wrapper)."""
    return CheckService(corpus, options=options, config=config,
                        cache=cache)
