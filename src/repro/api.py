"""The stable, versioned public API of the JMake reproduction.

``repro.api`` is the only supported import surface: the CLI and every
example script import from here, and anything importable from this
module follows the serialized-record ``schema_version`` compatibility
story (see :data:`SCHEMA_VERSION` / :func:`migrate_record`).

Four tiers:

- **functions** — :func:`check_commit`, :func:`check_patch`,
  :func:`evaluate`, :func:`serve` cover the common one-shot write
  paths;
- **the read surface** — :func:`open_store`, :func:`query_verdicts`,
  :func:`janitor_report`, :func:`watch`: fleet mode's persistent
  verdict store and its continuous-ingest daemon. Queries are pure
  reads — answering one never triggers preprocess or compile work;
- **session objects** — :class:`CheckSession`,
  :class:`EvaluationSession`, :class:`CheckService`,
  :class:`WatchSession` for callers that hold state across many
  checks;
- **re-exports** — the data types and helpers user scripts legitimately
  touch (reports, corpus construction, tables/figures, observability,
  fault plans, store filters).

The old scattered entry points (``repro.core.jmake.JMake``,
``repro.evalsuite.runner.EvaluationRunner``, and direct
``repro.service``/``repro.journal`` access to the watch/store types)
still work but emit ``DeprecationWarning``.
"""

from __future__ import annotations

# -- the facade's own imports (public re-export surface) ----------------------

from repro.analysis.deadblocks import BlockVerdict, DeadBlockAnalyzer
from repro.buildcache.cache import BuildCache, CachePolicy
from repro.core.changes import extract_changed_files
from repro.core.jmake import CheckSession, JMake, JMakeOptions
from repro.core.mutation import MutationEngine, MutationOverlay
from repro.core.report import (
    SCHEMA_VERSION,
    FileReport,
    FileStatus,
    PatchReport,
    migrate_record,
)
from repro.core.units import UnitDag, WorkUnit, run_units
from repro.errors import (
    AuthError,
    CorpusMismatchError,
    FaultPlanError,
    FrameCorruptError,
    FrameTooLargeError,
    FrameTruncatedError,
    JournalCorruptError,
    JournalError,
    ReproError,
    SchemaError,
    StoreError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadedError,
    ServiceOverloadError,
    SimulatedCrashError,
    TransportError,
    VcsError,
    WireError,
    WireSchemaError,
    WorkerCrashError,
    WorkerLostError,
)
from repro.evalsuite.experiments import EXPERIMENTS
from repro.evalsuite.figures import figure5_overall
from repro.evalsuite.reportdoc import write_markdown_report
from repro.evalsuite.runner import (
    EvaluationResult,
    EvaluationRunner,
    EvaluationSession,
    scaled_criteria,
)
from repro.evalsuite.tables import table1, table2, table3, table4
from repro.faults.chaos import (
    CrashPoint,
    crash_offsets,
    transport_chaos_plan,
)
from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import FaultPlan
from repro.faults.resilience import RetryPolicy
from repro.journal import Journal, ReplayResult, VerdictLedger
from repro.janitors.activity import ActivityAnalyzer
from repro.janitors.identify import JanitorFinder
from repro.kbuild.build import BuildSystem
from repro.kconfig.ast import Tristate
from repro.kconfig.configfile import Config
from repro.kernel.generator import generate_tree
from repro.kernel.layout import HazardKind
from repro.cpp.prepared import (
    collect_metrics as collect_substrate_metrics,
    set_event_hook as set_substrate_event_hook,
)
from repro.obs.events import (
    EVENT_FASTPATH_CHANGED,
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    Event,
    EventLog,
    NullEventLog,
    validate_event_record,
)
from repro.obs.export import (
    render_span_tree,
    span_count,
    write_chrome_trace,
)
from repro.obs.logcfg import LEVELS, configure_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    CallbackSink,
    JsonlSink,
    OpenMetricsSink,
    parse_openmetrics,
    read_jsonl,
    render_openmetrics,
    sanitized_metrics,
)
from repro.obs.timeseries import (
    SNAPSHOT_SCHEMA_VERSION,
    MetricsSnapshot,
    SnapshotRing,
    Snapshotter,
    histogram_quantiles,
    registry_from_dict,
    validate_snapshot_record,
)
from repro.obs.tracer import Tracer
from repro.service import (
    START_METHODS,
    TRANSPORT_KINDS,
    CheckRequest,
    CheckResult,
    CheckService,
    ServiceConfig,
    ShardSupervisor,
    SupervisorConfig,
    TransportOutcome,
    live_transports,
)
from repro.service.transport import wire
from repro.service.transport.client import ReconnectPolicy, WorkerClient
from repro.service.watch import (
    SyntheticTrafficSource,
    WatchConfig,
    WatchResult,
    WatchSession,
    WindowSource,
)
from repro.service.watch import watch as _watch
from repro.store import (
    STORE_SCHEMA_VERSION,
    VERDICT_KINDS,
    FileVerdictRow,
    IngestResult,
    JanitorViewCriteria,
    JanitorViewRow,
    StoredVerdict,
    VerdictFilter,
    VerdictStore,
    ingest_ledger,
)
from repro.util.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.util.rng import DeterministicRng
from repro.vcs.diff import Patch, diff_texts
from repro.vcs.repository import Repository, Worktree
from repro.workload.corpus import Corpus, CorpusSpec, build_corpus
from repro.workload.personas import PersonaKind

__all__ = [
    # functions
    "check_commit", "check_patch", "evaluate", "serve", "validate_jobs",
    "resolve_outputs", "OUT_DIR_DEFAULTS",
    # the fleet-mode read surface (store + watch)
    "open_store", "query_verdicts", "janitor_report", "watch",
    "VerdictStore", "VerdictFilter", "StoredVerdict", "FileVerdictRow",
    "IngestResult", "JanitorViewCriteria", "JanitorViewRow",
    "STORE_SCHEMA_VERSION", "VERDICT_KINDS", "StoreError",
    "ingest_ledger",
    "WatchSession", "WatchConfig", "WatchResult", "WindowSource",
    "SyntheticTrafficSource",
    # sessions / service
    "CheckSession", "EvaluationSession", "CheckService", "ServiceConfig",
    "CheckRequest", "CheckResult", "ShardSupervisor", "SupervisorConfig",
    # transports and the wire protocol
    "TRANSPORT_KINDS", "START_METHODS", "TransportOutcome",
    "live_transports", "wire", "transport_chaos_plan",
    "TransportError", "WorkerLostError", "WireError",
    "FrameTruncatedError", "FrameCorruptError", "FrameTooLargeError",
    "WireSchemaError",
    # the cross-host worker fleet (PR 10)
    "WorkerClient", "ReconnectPolicy", "AuthError",
    "CorpusMismatchError",
    # durability (write-ahead journal, resume, chaos)
    "Journal", "ReplayResult", "VerdictLedger", "CrashPoint",
    "crash_offsets", "JournalError", "JournalCorruptError",
    "SimulatedCrashError", "WorkerCrashError",
    # schema
    "SCHEMA_VERSION", "migrate_record",
    # telemetry plane (snapshots, sinks, structured events)
    "EVENT_FASTPATH_CHANGED", "EVENT_KINDS", "EVENT_SCHEMA_VERSION",
    "Event", "EventLog", "NullEventLog", "validate_event_record",
    "SNAPSHOT_SCHEMA_VERSION", "MetricsSnapshot", "SnapshotRing",
    "Snapshotter", "histogram_quantiles", "registry_from_dict",
    "validate_snapshot_record",
    "CallbackSink", "JsonlSink", "OpenMetricsSink",
    "parse_openmetrics", "read_jsonl", "render_openmetrics",
    "sanitized_metrics",
    "collect_substrate_metrics", "set_substrate_event_hook",
    # deprecated shims (still exported so old code keeps importing)
    "JMake", "EvaluationRunner",
    # data types and helpers
    "ActivityAnalyzer", "BlockVerdict", "BuildCache", "BuildSystem",
    "CachePolicy", "Config", "Corpus", "CorpusSpec", "DeadBlockAnalyzer",
    "DeterministicRng", "EXPERIMENTS", "EvaluationResult", "FaultInjector",
    "FaultPlan", "FaultPlanError", "FileReport", "FileStatus",
    "HazardKind", "JMakeOptions", "JanitorFinder", "LEVELS",
    "MetricsRegistry", "MutationEngine", "MutationOverlay",
    "NULL_INJECTOR", "Patch", "PatchReport", "PersonaKind", "ReproError",
    "Repository", "RetryPolicy", "SchemaError", "ServiceDrainingError",
    "ServiceError", "ServiceOverloadedError", "ServiceOverloadError",
    "Tracer", "Tristate",
    "UnitDag", "VcsError", "WorkUnit", "Worktree",
    "atomic_write_bytes", "atomic_write_json", "atomic_write_text",
    "build_corpus",
    "configure_logging", "diff_texts", "extract_changed_files",
    "figure5_overall", "generate_tree", "render_span_tree", "run_units",
    "scaled_criteria", "span_count", "table1", "table2", "table3",
    "table4", "write_chrome_trace", "write_markdown_report",
]


# -- validation ---------------------------------------------------------------

def validate_jobs(jobs, *, what: str = "jobs") -> int:
    """The one place ``--jobs``/shard counts are validated.

    Accepts any integral value ≥ 1 (bools rejected); raises
    ``ValueError`` with a uniform message otherwise. The CLI, the
    evaluation session, and the service config all call this, so
    ``jmake serve --shards 0`` and ``jmake evaluate --jobs 0`` fail the
    same way.
    """
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(
            f"{what} must be a positive integer, got {jobs!r}")
    if jobs < 1:
        raise ValueError(
            f"{what} must be a positive integer, got {jobs}")
    return jobs


# -- one-shot functions -------------------------------------------------------

def check_commit(tree, repository: Repository, commit,
                 *, options: JMakeOptions | None = None,
                 cache: "BuildCache | None" = None,
                 tracer=None, metrics=None,
                 fault_plan: "FaultPlan | None" = None,
                 retry_policy: "RetryPolicy | None" = None) -> PatchReport:
    """Check one commit of a repository against a generated tree."""
    session = CheckSession.from_generated_tree(
        tree, options=options, cache=cache, tracer=tracer,
        metrics=metrics, fault_plan=fault_plan,
        retry_policy=retry_policy)
    return session.check_commit(repository, commit)


def check_patch(worktree: Worktree, patch: Patch,
                *, tree=None, commit_id: str | None = None,
                options: JMakeOptions | None = None,
                cache: "BuildCache | None" = None,
                tracer=None, metrics=None,
                fault_plan: "FaultPlan | None" = None,
                retry_policy: "RetryPolicy | None" = None) -> PatchReport:
    """Check a patch against an already-checked-out worktree.

    ``tree`` (a generated kernel tree) binds bootstrap/rebuild
    metadata when available; without it the check runs bare.
    """
    if tree is not None:
        session = CheckSession.from_generated_tree(
            tree, options=options, cache=cache, tracer=tracer,
            metrics=metrics, fault_plan=fault_plan,
            retry_policy=retry_policy)
    else:
        session = CheckSession(
            options=options, cache=cache, tracer=tracer,
            metrics=metrics, fault_plan=fault_plan,
            retry_policy=retry_policy)
    return session.check_patch(worktree, patch, commit_id=commit_id)


def evaluate(corpus: Corpus, *,
             options: JMakeOptions | None = None,
             criteria=None,
             cache: "BuildCache | bool | None" = None,
             observe: bool = False,
             fault_plan: "FaultPlan | None" = None,
             retry_policy: "RetryPolicy | None" = None,
             limit: int | None = None,
             use_ground_truth_janitors: bool = False,
             jobs: int = 1,
             service: "bool | int | ServiceConfig" = False
             ) -> EvaluationResult:
    """Run the §V evaluation protocol over a corpus window."""
    session = EvaluationSession(
        corpus, options=options, criteria=criteria, cache=cache,
        observe=observe, fault_plan=fault_plan,
        retry_policy=retry_policy)
    return session.run(limit=limit,
                       use_ground_truth_janitors=use_ground_truth_janitors,
                       jobs=jobs, service=service)


def serve(corpus: Corpus, *,
          options: JMakeOptions | None = None,
          config: "ServiceConfig | None" = None,
          cache: "BuildCache | bool | None" = True) -> CheckService:
    """Construct a check service over a corpus (call ``start()`` or
    use the ``check_commits`` sync wrapper)."""
    return CheckService(corpus, options=options, config=config,
                        cache=cache)


# -- the fleet-mode read surface ----------------------------------------------

def open_store(path: str = ":memory:", *, metrics=None,
               events=None) -> VerdictStore:
    """Open (or create) a persistent verdict store.

    The returned :class:`VerdictStore` is a context manager; pass
    ``metrics``/``events`` to wire its ``store.*`` gauges and
    ``ingest.*`` events into the telemetry plane.
    """
    return VerdictStore(path, metrics=metrics, events=events)


def query_verdicts(store: "VerdictStore | str",
                   filter: "VerdictFilter | None" = None,
                   **predicates) -> list[StoredVerdict]:
    """Answer a typed filter against a store — a pure read.

    ``store`` is an open :class:`VerdictStore` or a database path;
    predicates are either a ready :class:`VerdictFilter` or its fields
    as keywords (``query_verdicts(store, verdict="PARTIAL",
    arch="mips")``). Already-ingested commits answer straight from
    SQLite: no preprocessing, no compilation, no corpus needed.
    """
    if isinstance(store, VerdictStore):
        return store.query(filter, **predicates)
    with VerdictStore(store) as opened:
        return opened.query(filter, **predicates)


def janitor_report(store: "VerdictStore | str",
                   criteria: "JanitorViewCriteria | None" = None
                   ) -> list[JanitorViewRow]:
    """The §IV Table-II janitor ranking from the materialized view."""
    if isinstance(store, VerdictStore):
        return store.janitor_report(criteria)
    with VerdictStore(store) as opened:
        return opened.janitor_report(criteria)


def watch(corpus: Corpus, *, store, journal: str, source=None,
          options: JMakeOptions | None = None,
          config: "WatchConfig | None" = None,
          metrics=None, events=None,
          resume: bool = False) -> WatchResult:
    """Run the continuous-ingest daemon until its stream drains.

    Checks only commits neither the journal nor the store has seen,
    journals every verdict before the store ingests it, and refreshes
    the janitor materialized view per batch. Kill it mid-stream
    (``WatchConfig.chaos_kill_after``) and re-run with ``resume=True``:
    the store converges on bytes identical to an uninterrupted run.
    """
    return _watch(corpus, store=store, journal=journal, source=source,
                  options=options, config=config, metrics=metrics,
                  events=events, resume=resume)


# -- CLI output-path convention -----------------------------------------------

#: per-sink default filenames under ``--out-dir``
OUT_DIR_DEFAULTS = {
    "stats": "stats.json",
    "metrics": "metrics.jsonl",
    "events": "events.jsonl",
    "journal": "run.jnl",
    "store": "verdicts.sqlite",
}


def resolve_outputs(out_dir: "str | None",
                    sinks: "dict[str, object | None]") -> dict:
    """The one validator behind every CLI output-path flag.

    ``sinks`` maps sink names (keys of :data:`OUT_DIR_DEFAULTS`) to
    explicit per-sink overrides (``None`` when the flag was not
    given). With ``--out-dir`` set, un-overridden sinks resolve to
    their conventional filename inside the directory (created on
    demand); without it, they stay ``None`` (disabled). Explicit
    overrides always win — that is the documented escape hatch.
    """
    import os as _os
    unknown = set(sinks) - set(OUT_DIR_DEFAULTS)
    if unknown:
        raise ValueError(
            f"unknown output sink(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(OUT_DIR_DEFAULTS))})")
    if out_dir is not None:
        if _os.path.exists(out_dir) and not _os.path.isdir(out_dir):
            raise ValueError(
                f"--out-dir {out_dir!r} exists and is not a directory")
        _os.makedirs(out_dir, exist_ok=True)
    resolved = {}
    for name, override in sinks.items():
        if override is not None:
            resolved[name] = override
        elif out_dir is not None:
            resolved[name] = _os.path.join(
                out_dir, OUT_DIR_DEFAULTS[name])
        else:
            resolved[name] = None
    return resolved
