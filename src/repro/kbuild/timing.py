"""The simulated build cost model.

Calibrated to the constants the paper reports (§V-C):

- configuration creation: "5 seconds or less for all invocations"
  (Fig. 4a) — dominated by Kconfig evaluation plus per-arch setup;
- ``.i`` generation: "15 seconds or less for 98% of invocations …
  up to 22 seconds" (Fig. 4b) — a fixed make start-up (the "many tens of
  set up operations", >80 for x86, >60 for arm) plus per-file work that
  scales with preprocessed size;
- ``.o`` generation: "7 seconds or less for 97% … maximum 15 for almost
  all files" (Fig. 4c), with a >6000-second outlier for files whose
  compilation triggers a whole-kernel rebuild (the
  ``arch/powerpc/kernel/prom_init.c`` case).

Every draw is deterministic: noise comes from hashing the operation's
identity, so a corpus replays identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def _unit_noise(*identity: str) -> float:
    """A deterministic pseudo-uniform draw in [0, 1) from an identity."""
    digest = hashlib.sha256(":".join(identity).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class CostModel:
    """Tunable constants; defaults reproduce the paper's figures."""

    # -- configuration creation (Fig. 4a) --------------------------------
    config_base_seconds: float = 1.4
    config_per_symbol_seconds: float = 0.0006
    config_noise_seconds: float = 2.6

    # -- make start-up ----------------------------------------------------
    setup_op_seconds: float = 0.035
    x86_setup_ops: int = 82
    default_setup_ops: int = 64
    recheck_ops: int = 6

    # -- .i generation (Fig. 4b) ------------------------------------------
    i_invocation_base_seconds: float = 2.2
    i_per_file_seconds: float = 0.28
    i_per_kb_seconds: float = 0.004
    i_noise_seconds: float = 2.0

    # -- .o generation (Fig. 4c) ------------------------------------------
    o_base_seconds: float = 1.6
    o_per_kb_seconds: float = 0.09
    o_noise_seconds: float = 1.8
    whole_kernel_rebuild_seconds: float = 6200.0

    # -- build-cache probe (ccache-style hit, stat + hash lookup) ----------
    cache_probe_seconds: float = 0.05

    def config_cost(self, arch: str, target: str, symbol_count: int) -> float:
        """Simulated seconds to create one configuration."""
        noise = _unit_noise("config", arch, target) * self.config_noise_seconds
        return (self.config_base_seconds
                + symbol_count * self.config_per_symbol_seconds
                + noise)

    def setup_ops(self, arch: str) -> int:
        """How many set-up operations a first make invocation performs."""
        return self.x86_setup_ops if arch in ("x86_64", "i386") \
            else self.default_setup_ops

    def setup_cost(self, arch: str, *, first_invocation: bool) -> float:
        """Simulated make start-up cost (first vs repeat invocation)."""
        ops = self.setup_ops(arch) if first_invocation else self.recheck_ops
        return ops * self.setup_op_seconds

    def i_cost(self, arch: str, files_with_sizes: list[tuple[str, int]],
               *, first_invocation: bool) -> float:
        """One ``make f1.i f2.i ...`` invocation over a batch of files."""
        total = self.setup_cost(arch, first_invocation=first_invocation)
        total += self.i_invocation_base_seconds
        for path, size_bytes in files_with_sizes:
            noise = _unit_noise("make_i", arch, path) * self.i_noise_seconds
            total += (self.i_per_file_seconds
                      + (size_bytes / 1024.0) * self.i_per_kb_seconds
                      + noise / max(1, len(files_with_sizes)))
        return total

    def o_cost(self, arch: str, path: str, size_bytes: int, *,
               first_invocation: bool,
               triggers_whole_kernel_rebuild: bool = False) -> float:
        """One ``make file.o`` invocation (files compiled individually)."""
        if triggers_whole_kernel_rebuild:
            noise = _unit_noise("rebuild", arch, path) * 600.0
            return self.whole_kernel_rebuild_seconds + noise
        noise = _unit_noise("make_o", arch, path) * self.o_noise_seconds
        return (self.setup_cost(arch, first_invocation=first_invocation)
                + self.o_base_seconds
                + (size_bytes / 1024.0) * self.o_per_kb_seconds
                + noise)
