"""Kbuild Makefile parsing.

Handles the declarative subset of the kernel's per-directory Makefiles::

    obj-y += always.o subdir/
    obj-m += module.o
    obj-$(CONFIG_FOO) += foo.o other/
    foo-objs := a.o b.o        # composite object
    foo-y    += c.o            # composite, kbuild style
    foo-$(CONFIG_BAR) += d.o   # conditional composite member

plus variable assignments that JMake's architecture heuristic scans for
``CONFIG_*`` mentions (§III-C). ``ccflags-y`` and similar flag lines are
recorded but otherwise ignored.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.kconfig.configfile import Config

_RULE_RE = re.compile(
    r"^(?P<label>[A-Za-z0-9_\-]+)-"
    r"(?P<cond>y|m|objs|\$\(CONFIG_[A-Za-z0-9_]+\))"
    r"\s*(?P<op>\+?=|:=)\s*(?P<items>.*)$")
_CONFIG_VAR_RE = re.compile(r"CONFIG_([A-Za-z0-9_]+)")


@dataclass(frozen=True)
class ObjectRule:
    """One right-hand item of an ``obj-`` or composite line."""

    target: str               # "foo.o" or "subdir/"
    condition: str | None     # CONFIG symbol name, or None for -y
    modular_ok: bool = True   # False when the entry came from obj-y only

    @property
    def is_subdir(self) -> bool:
        """True for 'subdir/' entries."""
        return self.target.endswith("/")


@dataclass
class KbuildMakefile:
    """Parsed content of one directory's Makefile."""

    directory: str
    #: objects/subdirs attached directly to obj-…
    objects: list[ObjectRule] = field(default_factory=list)
    #: composite name (without .o) -> member rules
    composites: dict[str, list[ObjectRule]] = field(default_factory=dict)
    #: every CONFIG_* symbol textually mentioned anywhere in the file
    mentioned_config_vars: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str, directory: str = "") -> "KbuildMakefile":
        """Parse one Makefile's Kbuild-relevant lines."""
        makefile = cls(directory=directory)
        seen_vars: set[str] = set()
        for raw in text.split("\n"):
            line = raw.split("#", 1)[0].rstrip()
            if not line.strip():
                continue
            for match in _CONFIG_VAR_RE.finditer(line):
                name = match.group(1)
                if name not in seen_vars:
                    seen_vars.add(name)
                    makefile.mentioned_config_vars.append(name)
            match = _RULE_RE.match(line.strip())
            if not match:
                continue
            label = match.group("label")
            cond_text = match.group("cond")
            items = match.group("items").split()
            if cond_text == "objs":
                condition: str | None = None
                is_composite_def = True
            elif cond_text in ("y", "m"):
                condition = None
                is_composite_def = label != "obj"
            else:
                condition = cond_text[len("$(CONFIG_"):-1]
                is_composite_def = label != "obj"
            rules = [ObjectRule(target=item, condition=condition)
                     for item in items]
            if label == "obj":
                makefile.objects.extend(rules)
            elif is_composite_def and label not in (
                    "ccflags", "asflags", "ldflags", "subdir-ccflags",
                    "extra", "always", "targets", "clean"):
                makefile.composites.setdefault(label, []).extend(rules)
        return makefile

    # -- queries ------------------------------------------------------------

    def subdir_rules(self) -> list[ObjectRule]:
        """The obj- entries naming subdirectories."""
        return [rule for rule in self.objects if rule.is_subdir]

    def object_rules(self) -> list[ObjectRule]:
        """The obj- entries naming .o files."""
        return [rule for rule in self.objects if not rule.is_subdir]

    def rule_for_source(self, c_basename: str) -> ObjectRule | None:
        """The rule governing ``name.c`` (via ``name.o`` or a composite).

        Returns the *outermost* condition: for a composite member, the
        condition on the composite's own ``obj-`` line wins, matching how
        kbuild actually gates compilation.
        """
        obj_name = c_basename[:-2] + ".o" if c_basename.endswith(".c") \
            else c_basename
        for rule in self.object_rules():
            if rule.target == obj_name:
                return rule
        stem = obj_name[:-2]
        for composite, members in self.composites.items():
            if not any(member.target == obj_name for member in members):
                continue
            for rule in self.object_rules():
                if rule.target == composite + ".o":
                    return rule
        return None

    def config_vars_for_object(self, c_basename: str) -> list[str]:
        """The §III-C heuristic: config variables tied to one object.

        1. variables on lines mentioning the ``.o`` file;
        2. recursively, variables on the ``obj-`` lines of composite
           labels containing it;
        3. if nothing found, *all* config variables in the Makefile.
        """
        obj_name = c_basename[:-2] + ".o" if c_basename.endswith(".c") \
            else c_basename
        found: list[str] = []

        direct = [rule for rule in self.object_rules()
                  if rule.target == obj_name and rule.condition]
        found.extend(rule.condition for rule in direct)

        for composite, members in self.composites.items():
            if any(member.target == obj_name for member in members):
                for member in members:
                    if member.target == obj_name and member.condition:
                        found.append(member.condition)
                for rule in self.object_rules():
                    if rule.target == composite + ".o" and rule.condition:
                        found.append(rule.condition)

        if not found:
            found = list(self.mentioned_config_vars)
        unique: list[str] = []
        for name in found:
            if name not in unique:
                unique.append(name)
        return unique

    def source_is_enabled(self, c_basename: str, config: Config) -> bool:
        """Is ``name.c`` compiled in this directory under ``config``?"""
        rule = self.rule_for_source(c_basename)
        if rule is None:
            return False
        if rule.condition is None:
            return True
        return config.enabled(rule.condition)

    def source_is_modular(self, c_basename: str, config: Config) -> bool:
        """Compiled as a module (=m) rather than built-in (=y)?"""
        rule = self.rule_for_source(c_basename)
        if rule is None or rule.condition is None:
            return False
        return config.modular(rule.condition)
