"""The build orchestrator: configuration, preprocessing, compilation.

:class:`BuildSystem` binds a source-tree view (any ``path -> text | None``
provider, typically a :class:`repro.vcs.repository.Worktree`) to the
toolchain registry, a simulated clock, and the cost model. It exposes the
make targets JMake drives (§II-A):

- :meth:`BuildSystem.make_config` — ``make ARCH=<a> allyesconfig`` /
  ``allmodconfig`` / ``<name>_defconfig``, cached per (arch, target);
- :meth:`BuildSystem.make_i` — batched ``make f1.i f2.i …`` (§III-D
  groups up to 50 files per invocation to amortize make start-up);
- :meth:`BuildSystem.make_o` — individual ``make file.o``.

Buildability follows the kbuild chain: a source compiles only when its
own Makefile rule is enabled by the configuration *and* every ancestor
directory is pulled in by an enabled ``obj-… += subdir/`` rule. Files
under ``arch/<d>/`` build only for toolchains owning that directory.

Bootstrap files (§V-D): the kernel Makefile compiles a few tree files to
run *any* make target, so those files cannot be mutated; the tree marks
them and :meth:`BuildSystem.is_bootstrap` exposes the set.

When constructed with a :class:`~repro.buildcache.BuildCache`, every
expensive artifact (parsed Kconfig models, solved configurations, parsed
Makefiles, ``.i`` results, ``.o`` outcomes) is first probed in the
shared content-addressed cache; under the default *replay* clock policy
a hit charges exactly the cost the uncached run would have charged, so
the simulated timeline — and thus every table and figure — is
byte-identical while the real Python work is skipped.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Callable

from repro.buildcache.cache import BuildCache
from repro.buildcache.fingerprint import (
    RecordingProvider,
    blob_digest,
    env_fingerprint,
)
from repro.cc.compiler import Compiler, ObjectFile
from repro.cc.toolchain import ToolchainRegistry, arch_directory
from repro.cpp.preprocessor import FileProvider, PreprocessResult
from repro.errors import (
    CompileError,
    KbuildError,
    KconfigError,
    MakefileNotFoundError,
    PreprocessorError,
)
from repro.faults.inject import NULL_INJECTOR
from repro.faults.plan import (
    KIND_COMPILE_TIMEOUT,
    KIND_CONFIG_FAIL,
    KIND_IO_ERROR,
    KIND_PREPROCESS_FLAKE,
    KIND_TRUNCATE_I,
    SITE_COMPILE,
    SITE_CONFIG,
    SITE_PREPROCESS,
)
from repro.faults.resilience import DEFAULT_RETRY_POLICY, Quarantine
from repro.kbuild.makefile import KbuildMakefile
from repro.kbuild.timing import CostModel
from repro.kconfig.configfile import Config
from repro.kconfig.model import ConfigModel
from repro.kconfig.solver import (
    allmodconfig,
    allnoconfig,
    allyesconfig,
    defconfig,
)
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.util.simclock import SimClock


class BuildError(KbuildError):
    """A make invocation failed; ``kind`` narrows the cause."""

    def __init__(self, message: str, kind: str) -> None:
        super().__init__(message)
        self.kind = kind


#: BuildError kinds injected fault kinds surface as after retries
_FAULT_ERROR_KINDS = {
    KIND_CONFIG_FAIL: "config_failed",
    KIND_PREPROCESS_FLAKE: "preprocess_flake",
    KIND_COMPILE_TIMEOUT: "timeout",
    KIND_IO_ERROR: "io_error",
}


@dataclass
class FileBuildResult:
    """Per-file outcome inside a batched ``make_i`` invocation."""

    path: str
    ok: bool
    i_text: str | None = None
    preprocess_result: PreprocessResult | None = None
    error: str | None = None
    error_kind: str | None = None  # no_makefile | no_rule | preprocess_failed
    #: True when the result came out of the shared build cache
    cached: bool = False


@dataclass
class MakeInvocation:
    """One recorded make run, with its simulated duration."""

    kind: str                 # "config" | "make_i" | "make_o"
    arch: str
    duration: float
    files: list[str] = field(default_factory=list)


@dataclass
class VmlinuxBuild:
    """A whole-kernel build: the linked image plus any failed units."""

    image: "object"
    failed: dict[str, str] = field(default_factory=dict)
    arch: str = ""

    @property
    def clean(self) -> bool:
        """True when every enabled unit compiled."""
        return not self.failed

    @property
    def verdict(self) -> str:
        """``CLEAN``, or ``PARTIAL:<arch>`` when any unit failed.

        A ``keep_going`` build that recorded unit failures must never
        pass for a fully checked kernel — callers that only test
        ``image`` truthiness silently absorb the failures (the
        silent-abort bug); this is the explicit signal they should
        propagate instead.
        """
        if self.clean:
            return "CLEAN"
        return f"PARTIAL:{self.arch}" if self.arch else "PARTIAL"


#: Directories the top-level Makefile always descends into.
_TOP_LEVEL_DIRS = ("kernel", "mm", "fs", "drivers", "net", "sound", "lib",
                   "crypto", "block", "init", "security", "virt", "ipc")


class BuildSystem:
    """Configuration, preprocessing, and compilation orchestrator."""
    def __init__(self, provider: FileProvider,
                 registry: ToolchainRegistry | None = None,
                 clock: SimClock | None = None,
                 cost_model: CostModel | None = None,
                 bootstrap_paths: set[str] | None = None,
                 rebuild_trigger_paths: set[str] | None = None,
                 path_lister: "Callable[[], list[str]] | None" = None,
                 cache: BuildCache | None = None,
                 tracer=None, metrics=None,
                 injector=None, retry_policy=None,
                 quarantine: Quarantine | None = None) -> None:
        self._provider = provider
        self._path_lister = path_lister
        self.registry = registry or ToolchainRegistry()
        self.clock = clock or SimClock()
        #: span sink (NULL_TRACER when observability is off); spans only
        #: read the simulated clock, they never charge it
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.cost_model = cost_model or CostModel()
        self.cache = cache
        #: fault-injection hook consulted at every step boundary;
        #: NULL_INJECTOR (never fires) outside fault-plan runs
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.retry_policy = retry_policy if retry_policy is not None \
            else DEFAULT_RETRY_POLICY
        #: per-architecture circuit breaker; a BuildSystem lives for one
        #: patch, so quarantine state is naturally commit-scoped
        self.quarantine = quarantine if quarantine is not None \
            else Quarantine()
        self._bootstrap_paths = set(bootstrap_paths or ())
        self._rebuild_trigger_paths = set(rebuild_trigger_paths or ())
        self._config_cache: dict[tuple[str, str], Config] = {}
        self._model_cache: dict[str, ConfigModel] = {}
        self._model_digests: dict[str, str] = {}
        self._makefile_cache: dict[str, KbuildMakefile | None] = {}
        self._invocations_seen: set[tuple[str, str]] = set()
        self.invocations: list[MakeInvocation] = []

    # -- bootstrap files (§V-D) --------------------------------------------

    def is_bootstrap(self, path: str) -> bool:
        """True for files the Makefile compiles during setup (§V-D)."""
        return path in self._bootstrap_paths

    def bootstrap_paths(self) -> set[str]:
        """The set of §V-D bootstrap files."""
        return set(self._bootstrap_paths)

    # -- fault injection and resilience --------------------------------------

    def _guard_step(self, site: str, arch_name: str, path: str = ""):
        """The fault gate every step passes through before real work.

        Raises ``BuildError(kind="quarantined")`` when the architecture
        is benched. Otherwise consults the injector: failing fault kinds
        are absorbed by a bounded retry loop — each doomed attempt
        charges its simulated cost (clamped by the step timeout), each
        retry charges exponential backoff under a ``retry`` span — until
        an attempt comes back clean or the budget is exhausted, at which
        point the persistent failure is recorded with the quarantine and
        raised as a :class:`BuildError`. Output-degrading kinds (e.g.
        ``truncate_i``) are returned for the caller to apply; they never
        fail the step.

        Runs before any cache probe, so the decision sequence — and
        therefore every verdict — is identical with the cache on or off.
        """
        if self.quarantine.is_quarantined(arch_name):
            raise BuildError(
                f"architecture {arch_name} is quarantined after persistent "
                f"{self.quarantine.reason(arch_name)} failures",
                kind="quarantined")
        if not self.injector.enabled:
            return None
        retries = 0
        while True:
            spec = self.injector.fire(site, arch=arch_name, path=path)
            if spec is None:
                return None
            self.metrics.counter("build.faults.injected").inc()
            self.metrics.counter(f"build.faults.{spec.kind}").inc()
            if spec.kind not in _FAULT_ERROR_KINDS:
                return spec  # degrades output instead of failing the step
            cost = self.retry_policy.clamp_attempt_seconds(
                spec.attempt_cost_seconds)
            if cost:
                self.clock.charge("fault", cost)
            if retries >= self.retry_policy.max_retries:
                self.quarantine.record(arch_name, site)
                raise BuildError(
                    f"injected {spec.kind} at {site} "
                    f"({path or arch_name}): {retries} retries exhausted",
                    kind=_FAULT_ERROR_KINDS[spec.kind])
            backoff = self.retry_policy.backoff_seconds(retries)
            with self.tracer.span("retry", site=site, arch=arch_name,
                                  path=path, attempt=retries + 1) as span:
                self.clock.charge("retry_backoff", backoff)
                span.set("backoff", backoff)
                span.set("fault_kind", spec.kind)
            self.metrics.counter("build.retries").inc()
            retries += 1

    def _check_step_timeout(self, site: str, arch_name: str, cost: float,
                            charge) -> None:
        """Fail a step whose simulated cost exceeds ``--step-timeout``.

        A cost-model timeout is deterministic, so no retry loop: the
        step burns the timeout budget and fails outright (config-site
        timeouts bench the architecture immediately).
        """
        timeout = self.retry_policy.step_timeout_seconds
        if timeout is None or cost <= timeout:
            return
        charge(timeout)
        self.metrics.counter("build.timeouts").inc()
        self.quarantine.record(arch_name, site)
        raise BuildError(
            f"{site} step for {arch_name} exceeded the "
            f"{timeout:g}s step timeout", kind="timeout")

    # -- configuration -------------------------------------------------------

    def config_model(self, arch_name: str) -> ConfigModel:
        """The parsed Kconfig model for an architecture (cached)."""
        directory = arch_directory(arch_name)
        if directory not in self._model_cache:
            kconfig_path = f"arch/{directory}/Kconfig"
            text = self._provider(kconfig_path)
            if text is None:
                kconfig_path = "Kconfig"
                text = self._provider(kconfig_path)
            if text is None:
                raise KconfigError(
                    f"no Kconfig found for architecture {arch_name}")
            if self.cache is not None:
                payload = self.cache.get_model(kconfig_path, text,
                                               self._provider)
                if payload is not None:
                    model, digest = payload
                else:
                    recording = RecordingProvider(self._provider)
                    recording(kconfig_path)  # root lands in the manifest
                    model = ConfigModel.from_kconfig(
                        text, path=kconfig_path, provider=recording)
                    digest = self.cache.put_model(kconfig_path, text,
                                                  recording, model)
                self._model_digests[directory] = digest
                self._model_cache[directory] = model
            else:
                self._model_cache[directory] = ConfigModel.from_kconfig(
                    text, path=kconfig_path, provider=self._provider)
        return self._model_cache[directory]

    def make_config(self, arch_name: str, target: str = "allyesconfig"
                    ) -> Config:
        """Create (or fetch cached) configuration for an architecture.

        ``target`` is ``allyesconfig``, ``allmodconfig``, or the name of
        a file in ``arch/<dir>/configs/`` (e.g. ``multi_defconfig``).
        """
        self.registry.get(arch_name)  # raises ToolchainError if broken
        key = (arch_name, target)
        if key in self._config_cache:
            return self._config_cache[key]
        with self.tracer.span("build.config", arch=arch_name,
                              target=target) as span:
            # Fault gate before the model cache probe below, so the
            # decision sequence is cache-invariant.
            self._guard_step(SITE_CONFIG, arch_name, path=target)
            model = self.config_model(arch_name)
            seed_text: str | None = None
            if target not in ("allyesconfig", "allmodconfig", "allnoconfig"):
                directory = arch_directory(arch_name)
                seed_path = f"arch/{directory}/configs/{target}"
                seed_text = self._provider(seed_path)
                if seed_text is None:
                    raise KconfigError(f"no such defconfig: {seed_path}")
            cost = self.cost_model.config_cost(arch_name, target, len(model))

            def _charge_timeout(amount: float) -> None:
                self.clock.charge("config", amount)
                span.set("sim_cost", amount)
                self.invocations.append(MakeInvocation(
                    kind="config", arch=arch_name, duration=amount,
                    files=[target]))

            self._check_step_timeout(SITE_CONFIG, arch_name, cost,
                                     _charge_timeout)

            config: Config | None = None
            model_digest = self._model_digests.get(arch_directory(arch_name))
            seed_digest = blob_digest(seed_text) \
                if seed_text is not None else ""
            if self.cache is not None and model_digest is not None:
                config = self.cache.get_config(model_digest, target,
                                               seed_digest)
            span.set("cached", config is not None)
            if config is not None:
                probe = self.cost_model.cache_probe_seconds
                counters = self.cache.stats.kind("config")
                counters.sim_seconds_saved += max(0.0, cost - probe)
                if self.cache.charge_probe_cost:
                    cost = probe
            else:
                if target == "allyesconfig":
                    config = allyesconfig(model)
                elif target == "allmodconfig":
                    config = allmodconfig(model)
                elif target == "allnoconfig":
                    config = allnoconfig(model)
                else:
                    config = defconfig(model, seed_text, name=target)
                if self.cache is not None and model_digest is not None:
                    self.cache.put_config(model_digest, target, config,
                                          seed_digest)
            self.clock.charge("config", cost)
            span.set("sim_cost", cost)
            self.invocations.append(MakeInvocation(
                kind="config", arch=arch_name, duration=cost,
                files=[target]))
        self.metrics.counter("build.config.invocations").inc()
        self._config_cache[key] = config
        return config

    def adopt_config(self, arch_name: str, config: Config) -> Config:
        """Register an externally built configuration (e.g. a targeted
        covering configuration), charging creation cost once."""
        self.registry.get(arch_name)
        key = (arch_name, config.name)
        if key in self._config_cache:
            return self._config_cache[key]
        cost = self.cost_model.config_cost(
            arch_name, config.name, len(self.config_model(arch_name)))
        self.clock.charge("config", cost)
        self.invocations.append(MakeInvocation(
            kind="config", arch=arch_name, duration=cost,
            files=[config.name]))
        self._config_cache[key] = config
        return config

    def gate_symbols(self, source_path: str) -> "set[str] | None":
        """Config symbols the kbuild chain requires to build the file.

        Returns None when no Makefile governs the path. Used by the
        targeted-configuration extension: a covering configuration must
        enable these on top of the block's own condition.
        """
        parts = source_path.split("/")
        try:
            makefile = self.governing_makefile(source_path)
        except MakefileNotFoundError:
            return None
        symbols: set[str] = set()
        rule = makefile.rule_for_source(parts[-1])
        if rule is not None and rule.condition is not None:
            symbols.add(rule.condition)
        if parts[0] == "arch":
            chain_root = f"arch/{parts[1]}" if len(parts) >= 3 else None
        else:
            chain_root = parts[0]
        directory = posixpath.dirname(source_path)
        while chain_root is not None and directory != chain_root:
            parent = posixpath.dirname(directory)
            parent_makefile = self.makefile_for_directory(parent)
            if parent_makefile is None:
                break
            subdir_name = posixpath.basename(directory) + "/"
            subdir_rule = next(
                (r for r in parent_makefile.subdir_rules()
                 if r.target == subdir_name), None)
            if subdir_rule is not None and \
                    subdir_rule.condition is not None:
                symbols.add(subdir_rule.condition)
            directory = parent
        return symbols

    def defconfig_names(self, arch_name: str) -> list[str]:
        """Files available under ``arch/<dir>/configs/``.

        Requires a ``path_lister`` (a plain provider cannot enumerate);
        without one, no defconfigs are discoverable, which degrades JMake
        to allyesconfig-only — the E-S1 ablation baseline.
        """
        if self._path_lister is None:
            return []
        directory = arch_directory(arch_name)
        prefix = f"arch/{directory}/configs/"
        return sorted(path[len(prefix):] for path in self._path_lister()
                      if path.startswith(prefix) and "/" not in
                      path[len(prefix):])

    # -- makefiles and buildability ------------------------------------------

    def makefile_for_directory(self, directory: str) -> KbuildMakefile | None:
        """The parsed Makefile of a directory, or None (cached)."""
        if directory in self._makefile_cache:
            return self._makefile_cache[directory]
        path = posixpath.join(directory, "Makefile") if directory \
            else "Makefile"
        text = self._provider(path)
        if text is None:
            parsed = None
        elif self.cache is not None:
            parsed = self.cache.get_makefile(path, text)
            if parsed is None:
                parsed = KbuildMakefile.parse(text, directory=directory)
                self.cache.put_makefile(path, text, parsed)
        else:
            parsed = KbuildMakefile.parse(text, directory=directory)
        self._makefile_cache[directory] = parsed
        return parsed

    def governing_makefile(self, source_path: str) -> KbuildMakefile:
        """The Makefile of the file's directory; raises if absent."""
        directory = posixpath.dirname(source_path)
        makefile = self.makefile_for_directory(directory)
        if makefile is None:
            raise MakefileNotFoundError(
                f"no Makefile governs {source_path}")
        return makefile

    def is_buildable(self, source_path: str, arch_name: str,
                     config: Config) -> bool:
        """Does ``make source.o`` have an enabled rule chain?"""
        parts = source_path.split("/")
        if parts[0] == "arch":
            if len(parts) < 3:
                return False
            if parts[1] != arch_directory(arch_name):
                return False
            chain_root = f"arch/{parts[1]}"
        elif parts[0] in _TOP_LEVEL_DIRS:
            chain_root = parts[0]
        else:
            return False

        try:
            makefile = self.governing_makefile(source_path)
        except MakefileNotFoundError:
            return False
        basename = parts[-1]
        if not makefile.source_is_enabled(basename, config):
            return False

        # Ancestor chain: every directory from the file's up to (but not
        # including) the chain root must be pulled in by its parent.
        directory = posixpath.dirname(source_path)
        while directory != chain_root:
            parent = posixpath.dirname(directory)
            parent_makefile = self.makefile_for_directory(parent)
            if parent_makefile is None:
                return False
            subdir_name = posixpath.basename(directory) + "/"
            rule = next((r for r in parent_makefile.subdir_rules()
                         if r.target == subdir_name), None)
            if rule is None:
                return False
            if rule.condition is not None and not config.enabled(rule.condition):
                return False
            directory = parent
        return True

    def is_modular(self, source_path: str, config: Config) -> bool:
        """True when the config builds the file as a module (=m)."""
        try:
            makefile = self.governing_makefile(source_path)
        except MakefileNotFoundError:
            return False
        return makefile.source_is_modular(
            posixpath.basename(source_path), config)

    # -- compilation -----------------------------------------------------------

    def _compiler(self, arch_name: str, config: Config,
                  *, modular_unit: bool) -> Compiler:
        architecture = self.registry.get(arch_name)
        macros = config.autoconf_macros()
        if modular_unit:
            macros["MODULE"] = "1"
        return Compiler(architecture, self._provider, config_macros=macros)

    def _env_digest(self, arch_name: str, config: Config,
                    *, modular: bool) -> str:
        return env_fingerprint(self.registry.get(arch_name), config,
                               modular=modular)

    def _cached_preprocess(self, path: str, compiler: Compiler,
                           env: str) -> tuple[PreprocessResult, bool]:
        """Probe/compute/store one ``.i`` result; (result, was_hit)."""
        text = self._provider(path)
        main_digest = blob_digest(text or "")
        cached = self.cache.get_preprocess(path, env, main_digest,
                                           self._provider)
        if cached is not None:
            self.cache.stats.kind("preprocess").bytes_saved += \
                len(cached.text)
            return cached, True
        result = compiler.preprocess(path)
        self.cache.put_preprocess(path, env, main_digest, self._provider,
                                  result)
        return result, False

    def make_i(self, paths: list[str], arch_name: str,
               config: Config) -> list[FileBuildResult]:
        """One batched preprocessing invocation over up to N files."""
        if not paths:
            return []
        with self.tracer.span("build.make_i", arch=arch_name,
                              config=config.name,
                              files=len(paths)) as span:
            results: list[FileBuildResult] = []
            sizes: list[tuple[str, int]] = []
            for path in paths:
                text = self._provider(path)
                sizes.append((path, len(text) if text else 0))
                with self.tracer.span("build.preprocess",
                                      path=path) as file_span:
                    result = self._make_one_i(path, arch_name, config)
                    file_span.set("ok", result.ok)
                    file_span.set("cached", result.cached)
                    if result.error_kind is not None:
                        file_span.set("error_kind", result.error_kind)
                results.append(result)
            first = (arch_name, config.name) not in self._invocations_seen
            self._invocations_seen.add((arch_name, config.name))
            cost = self.cost_model.i_cost(arch_name, sizes,
                                          first_invocation=first)
            hit_count = sum(1 for result in results if result.cached)
            if self.cache is not None and hit_count:
                # What a real ccache-backed make would have cost: a probe
                # per hit plus a normal invocation over the remaining
                # misses.
                probe_equivalent = hit_count * \
                    self.cost_model.cache_probe_seconds
                miss_sizes = [size for size, result in zip(sizes, results)
                              if not result.cached]
                if miss_sizes:
                    probe_equivalent += self.cost_model.i_cost(
                        arch_name, miss_sizes, first_invocation=first)
                self.cache.stats.kind("preprocess").sim_seconds_saved += \
                    max(0.0, cost - probe_equivalent)
                if self.cache.charge_probe_cost:
                    cost = min(cost, probe_equivalent)
            self.clock.charge("make_i", cost)
            span.set("sim_cost", cost)
            span.set("cache_hits", hit_count)
            self.invocations.append(MakeInvocation(
                kind="make_i", arch=arch_name, duration=cost,
                files=list(paths)))
        self.metrics.counter("build.make_i.invocations").inc()
        self.metrics.counter("build.make_i.files").inc(len(paths))
        self.metrics.histogram(
            "build.make_i.batch_size",
            buckets=(1, 2, 5, 10, 20, 50, 100)).observe(len(paths))
        return results

    def _make_one_i(self, path: str, arch_name: str,
                    config: Config) -> FileBuildResult:
        try:
            degrade = self._guard_step(SITE_PREPROCESS, arch_name, path=path)
        except BuildError as error:
            return FileBuildResult(path=path, ok=False, error=str(error),
                                   error_kind=error.kind)
        try:
            self.governing_makefile(path)
        except MakefileNotFoundError as error:
            return FileBuildResult(path=path, ok=False, error=str(error),
                                   error_kind="no_makefile")
        if not self.is_buildable(path, arch_name, config):
            return FileBuildResult(
                path=path, ok=False,
                error=f"no rule to make target '{path[:-2]}.i'",
                error_kind="no_rule")
        modular = self.is_modular(path, config)
        compiler = self._compiler(arch_name, config, modular_unit=modular)
        hit = False
        try:
            if self.cache is not None:
                env = self._env_digest(arch_name, config, modular=modular)
                preprocessed, hit = self._cached_preprocess(
                    path, compiler, env)
            else:
                preprocessed = compiler.preprocess(path)
        except PreprocessorError as error:
            return FileBuildResult(path=path, ok=False, error=str(error),
                                   error_kind="preprocess_failed")
        i_text = preprocessed.text
        if degrade is not None and degrade.kind == KIND_TRUNCATE_I:
            # A torn .i write: keep the first half, cut at a line
            # boundary. Only the grep view is degraded — the cached
            # PreprocessResult stays intact — and losing lines can only
            # lose tokens, so truncation can never credit a line the
            # compiler did not see.
            cut = i_text.rfind("\n", 0, len(i_text) // 2 + 1)
            i_text = i_text[:cut + 1] if cut >= 0 else ""
        return FileBuildResult(path=path, ok=True,
                               i_text=i_text,
                               preprocess_result=preprocessed,
                               cached=hit)

    def make_o(self, path: str, arch_name: str, config: Config) -> ObjectFile:
        """Individual ``make file.o``; raises :class:`BuildError`."""
        self.metrics.counter("build.make_o.invocations").inc()
        with self.tracer.span("build.make_o", arch=arch_name,
                              config=config.name, path=path) as span:
            # Fault gate before the object-cache probe in _make_o, so
            # the decision sequence is cache-invariant.
            self._guard_step(SITE_COMPILE, arch_name, path=path)
            return self._make_o(path, arch_name, config, span)

    def _make_o(self, path: str, arch_name: str, config: Config,
                span) -> ObjectFile:
        text = self._provider(path)
        size = len(text) if text else 0
        first = (arch_name, config.name) not in self._invocations_seen
        self._invocations_seen.add((arch_name, config.name))
        full_cost = self.cost_model.o_cost(
            arch_name, path, size, first_invocation=first,
            triggers_whole_kernel_rebuild=path in self._rebuild_trigger_paths)
        probe_clock = self.cache is not None and self.cache.charge_probe_cost
        charged = False

        def charge(amount: float) -> None:
            # Idempotent so the replay clock can charge up front (the
            # uncached ordering) while the probe clock defers until the
            # hit/miss outcome is known.
            nonlocal charged
            if charged:
                return
            charged = True
            self.clock.charge("make_o", amount)
            span.set("sim_cost", amount)
            self.invocations.append(MakeInvocation(
                kind="make_o", arch=arch_name, duration=amount, files=[path]))

        self._check_step_timeout(SITE_COMPILE, arch_name, full_cost, charge)
        if not probe_clock:
            charge(full_cost)
        try:
            self.governing_makefile(path)
        except MakefileNotFoundError as error:
            charge(full_cost)
            raise BuildError(str(error), kind="no_makefile") from error
        if not self.is_buildable(path, arch_name, config):
            charge(full_cost)
            raise BuildError(
                f"no rule to make target '{path[:-2]}.o'", kind="no_rule")
        modular = self.is_modular(path, config)
        compiler = self._compiler(arch_name, config, modular_unit=modular)
        if self.cache is None:
            try:
                return compiler.compile_object(path)
            except CompileError as error:
                raise BuildError(str(error),
                                 kind="compile_failed") from error

        env = self._env_digest(arch_name, config, modular=modular)
        main_digest = blob_digest(text or "")
        outcome = self.cache.get_object(path, env, main_digest,
                                        self._provider)
        if outcome is not None:
            span.set("cached", True)
            probe = self.cost_model.cache_probe_seconds
            counters = self.cache.stats.kind("object")
            counters.sim_seconds_saved += max(0.0, full_cost - probe)
            charge(probe if probe_clock else full_cost)
            status, payload = outcome
            if status == "ok":
                counters.bytes_saved += payload.size
                return payload
            raise BuildError(payload, kind="compile_failed")
        charge(full_cost)
        preprocessed: PreprocessResult | None = None
        try:
            preprocessed, _ = self._cached_preprocess(path, compiler, env)
        except PreprocessorError:
            # compile_object(path) below reproduces the exact uncached
            # failure; no closure exists so the outcome is not cached.
            preprocessed = None
        try:
            result = compiler.compile_object(path, preprocessed=preprocessed)
        except CompileError as error:
            if preprocessed is not None:
                self.cache.put_object(
                    path, env, main_digest, self._provider,
                    preprocessed.included_files,
                    preprocessed.missing_includes,
                    ("compile_failed", str(error)))
            raise BuildError(str(error), kind="compile_failed") from error
        if preprocessed is not None:
            self.cache.put_object(
                path, env, main_digest, self._provider,
                preprocessed.included_files, preprocessed.missing_includes,
                ("ok", result))
        return result

    def make_vmlinux(self, arch_name: str, config: Config,
                     *, keep_going: bool = True) -> "VmlinuxBuild":
        """``make`` (optionally ``make -k``): compile every enabled
        builtin unit and link the kernel image. Modular (=m) units are
        excluded, as they would be built as separate .ko objects.

        With ``keep_going`` (the default), units that fail — e.g. a
        driver needing another architecture's headers, which real
        allyesconfig builds also trip over — are recorded in
        ``failed`` rather than aborting the build. Requires a
        ``path_lister``; raises :class:`~repro.cc.linker.LinkError`
        on symbol clashes.
        """
        from repro.cc.linker import link

        if self._path_lister is None:
            raise KbuildError("make_vmlinux requires a path_lister")
        objects = []
        failed: dict[str, str] = {}
        for path in self._path_lister():
            if not path.endswith(".c"):
                continue
            if not self.is_buildable(path, arch_name, config):
                continue
            if self.is_modular(path, config):
                continue
            try:
                objects.append(self.make_o(path, arch_name, config))
            except BuildError as error:
                if not keep_going:
                    raise
                failed[path] = str(error)
        image = link(objects, architecture=arch_name)
        return VmlinuxBuild(image=image, failed=failed, arch=arch_name)
