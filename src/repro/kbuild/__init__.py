"""Kbuild substrate: Makefile parsing and build orchestration.

Provides the three Makefile facilities JMake invokes (§II-A, §III-D):

- ``make <arch> allyesconfig`` etc. — configuration creation
  (:meth:`~repro.kbuild.build.BuildSystem.make_config`);
- ``make file.i`` — preprocessing, batched over many files per
  invocation (:meth:`~repro.kbuild.build.BuildSystem.make_i`);
- ``make file.o`` — object compilation
  (:meth:`~repro.kbuild.build.BuildSystem.make_o`).

Running times are charged to a :class:`~repro.util.simclock.SimClock`
via the cost model in :mod:`repro.kbuild.timing`, reproducing the
distributional shape of the paper's Figures 4–6.
"""

from repro.kbuild.build import BuildError, BuildSystem, MakeInvocation
from repro.kbuild.makefile import KbuildMakefile, ObjectRule
from repro.kbuild.timing import CostModel

__all__ = [
    "BuildError",
    "BuildSystem",
    "CostModel",
    "KbuildMakefile",
    "MakeInvocation",
    "ObjectRule",
]
