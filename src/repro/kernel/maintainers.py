"""The MAINTAINERS database.

§IV uses two pieces of MAINTAINERS structure: entries (a proxy for
*subsystems*) and the mailing lists designated to receive patches
(a coarser proxy). An entry looks like::

    INTEL ETHERNET DRIVERS
    M:	Jeff Kirsher <jeffrey.t.kirsher@intel.com>
    L:	netdev@vger.kernel.org
    F:	drivers/net/ethernet/intel/

``F:`` patterns ending in ``/`` match the whole subtree; otherwise they
match a single path (with ``*`` globbing, as the kernel's
``get_maintainer.pl`` does). Entries may overlap — a path can belong to
several subsystems, exactly the ambiguity §IV calls out.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


def _glob_match(pattern: str, path: str) -> bool:
    """Glob where ``*`` does not cross ``/`` (get_maintainer.pl style)."""
    regex = "".join("[^/]*" if ch == "*" else
                    "[^/]" if ch == "?" else re.escape(ch)
                    for ch in pattern)
    return re.fullmatch(regex, path) is not None


@dataclass
class MaintainersEntry:
    """One MAINTAINERS section (subsystem proxy, §IV)."""
    name: str
    maintainers: list[str] = field(default_factory=list)  # "Name <email>"
    lists: list[str] = field(default_factory=list)
    file_patterns: list[str] = field(default_factory=list)

    def matches(self, path: str) -> bool:
        """True when an F: pattern covers the path."""
        for pattern in self.file_patterns:
            if pattern.endswith("/"):
                if path.startswith(pattern):
                    return True
            elif _glob_match(pattern, path):
                return True
        return False

    def maintainer_emails(self) -> list[str]:
        """Emails extracted from the M: lines."""
        emails = []
        for maintainer in self.maintainers:
            if "<" in maintainer and ">" in maintainer:
                emails.append(maintainer.split("<", 1)[1].split(">", 1)[0])
        return emails

    def render(self) -> str:
        """The entry in MAINTAINERS file syntax."""
        lines = [self.name]
        lines.extend(f"M:\t{maintainer}" for maintainer in self.maintainers)
        lines.extend(f"L:\t{list_addr}" for list_addr in self.lists)
        lines.extend(f"F:\t{pattern}" for pattern in self.file_patterns)
        return "\n".join(lines) + "\n"


class MaintainersDb:
    """The parsed MAINTAINERS database with path matching."""
    def __init__(self, entries: list[MaintainersEntry] | None = None) -> None:
        self.entries = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: MaintainersEntry) -> None:
        """Append an entry."""
        self.entries.append(entry)

    def entries_for_path(self, path: str) -> list[MaintainersEntry]:
        """All entries whose patterns cover the path."""
        return [entry for entry in self.entries if entry.matches(path)]

    def subsystems_for_path(self, path: str) -> list[str]:
        """Entry names covering the path (the §IV subsystem proxy)."""
        return [entry.name for entry in self.entries_for_path(path)]

    def lists_for_path(self, path: str) -> list[str]:
        """Deduplicated mailing lists designated for the path."""
        lists: list[str] = []
        for entry in self.entries_for_path(path):
            for list_addr in entry.lists:
                if list_addr not in lists:
                    lists.append(list_addr)
        return lists

    def maintainer_emails_for_path(self, path: str) -> set[str]:
        """Union of maintainer emails over matching entries."""
        emails: set[str] = set()
        for entry in self.entries_for_path(path):
            emails.update(entry.maintainer_emails())
        return emails

    def render(self) -> str:
        """The whole database in MAINTAINERS file syntax."""
        header = ("List of maintainers and how to submit kernel changes\n"
                  "\n")
        return header + "\n".join(entry.render() for entry in self.entries)

    @classmethod
    def parse(cls, text: str) -> "MaintainersDb":
        """Parse MAINTAINERS text back into a database."""
        db = cls()
        current: MaintainersEntry | None = None
        for raw in text.split("\n"):
            line = raw.rstrip()
            if not line:
                current = None
                continue
            if len(line) >= 2 and line[1] == ":" and current is not None:
                tag, _, value = line.partition(":")
                value = value.strip()
                if tag == "M":
                    current.maintainers.append(value)
                elif tag == "L":
                    current.lists.append(value)
                elif tag == "F":
                    current.file_patterns.append(value)
                continue
            if line == line.upper() and any(ch.isalpha() for ch in line) \
                    and ":" not in line:
                current = MaintainersEntry(name=line)
                db.add(current)
        return db
