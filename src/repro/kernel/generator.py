"""Deterministic synthetic kernel tree generation.

Produces a tree with the structural properties JMake exercises:

- per-architecture subtrees (``arch/<d>/``) with Kconfig, Makefiles,
  ``configs/*_defconfig`` files, and ``include/asm`` headers — some of
  them *exclusive*, so drivers including them compile only for that
  architecture (the §V-B "does not compile for x86_64" population);
- subsystem directories with Kconfig symbols, Kbuild Makefiles
  (including composite objects), driver ``.c`` files, and local ``.h``
  headers whose macros the drivers use;
- configurability hazards at spec-controlled rates, one generator per
  Table IV category;
- a MAINTAINERS database mirroring the subsystem structure (§IV);
- bootstrap files and whole-kernel-rebuild triggers (§V-C/D);
- ``Documentation/``, ``scripts/``, ``tools/`` content that the
  evaluation must filter out (§V-A).

Generation is fully deterministic given ``TreeSpec.seed``. The returned
:class:`GeneratedTree` carries ground-truth metadata (hazards per file,
arch affinity, controlling symbols) for the *workload* generator only —
JMake itself sees nothing but the files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.layout import ArchSpec, HazardKind, SubsystemSpec, TreeSpec
from repro.kernel.maintainers import MaintainersDb, MaintainersEntry
from repro.util.rng import DeterministicRng


@dataclass
class SourceFileInfo:
    """Ground truth about one generated source file."""

    path: str
    kind: str                     # driver_c | subsys_header | arch_c | ...
    subsystem: str | None = None
    config_symbol: str | None = None   # controlling CONFIG_* (no prefix)
    hazards: list[HazardKind] = field(default_factory=list)
    affine_arch: str | None = None     # needs this arch's headers
    arch_gate: str | None = None       # gated on an arch-only symbol
    #: arch owning an #ifdef CONFIG_<ARCH>_SPECIAL_BUS block in the file
    arch_conditional_arch: str | None = None
    macros: list[str] = field(default_factory=list)
    #: header macros that are used by at least one driver
    used_macros: list[str] = field(default_factory=list)


@dataclass
class GeneratedTree:
    """The generated files plus ground-truth metadata."""
    spec: TreeSpec
    files: dict[str, str]
    info: dict[str, SourceFileInfo]
    maintainers: MaintainersDb
    #: CONFIG names (no prefix) per hazard kind available for #ifdefs
    hazard_symbols: dict[HazardKind, list[str]]
    bootstrap_paths: set[str]
    rebuild_triggers: set[str]

    def provider(self):
        """A path -> text callable over the files."""
        return self.files.get

    def source_files(self, *, kind: str | None = None) -> list[str]:
        """Paths with metadata, optionally filtered by kind."""
        paths = sorted(self.info)
        if kind is None:
            return paths
        return [path for path in paths if self.info[path].kind == kind]

    def driver_files(self) -> list[str]:
        """All driver .c paths."""
        return self.source_files(kind="driver_c")

    def header_files(self) -> list[str]:
        """All subsystem and shared header paths."""
        return [path for path in sorted(self.info)
                if self.info[path].kind in ("subsys_header",
                                            "shared_header")]


class KernelTreeGenerator:
    """Deterministic generator for one TreeSpec."""
    def __init__(self, spec: TreeSpec) -> None:
        self.spec = spec
        self._rng = DeterministicRng(spec.seed)
        self._files: dict[str, str] = {}
        self._info: dict[str, SourceFileInfo] = {}
        self._maintainers = MaintainersDb()
        self._hazard_symbols: dict[HazardKind, list[str]] = {
            kind: [] for kind in HazardKind}
        self._subsystem_kconfigs: list[str] = []
        self._never_set_counter = 0

    #: global choice groups in the top Kconfig; allyesconfig picks the
    #: first member of each, the rest are CHOICE_UNSET hazard symbols.
    _IOSCHED_MEMBERS = ("IOSCHED_CFQ", "IOSCHED_DEADLINE", "IOSCHED_NOOP")
    _PREEMPT_MEMBERS = ("PREEMPT_NONE", "PREEMPT_VOLUNTARY", "PREEMPT_FULL")

    def generate(self) -> GeneratedTree:
        # Register hazard symbols up front: drivers draw from this pool.
        """Emit the whole tree; deterministic per spec seed."""
        self._hazard_symbols[HazardKind.CHOICE_UNSET].extend(
            self._IOSCHED_MEMBERS[1:])
        self._hazard_symbols[HazardKind.CHOICE_UNSET].extend(
            self._PREEMPT_MEMBERS[1:])
        self._emit_shared_headers()
        for position, subsystem in enumerate(self.spec.subsystems):
            self._emit_subsystem(subsystem, position)
        self._emit_top_kconfig()
        for arch in self.spec.arches:
            self._emit_arch(arch)
        self._emit_top_makefile()
        self._emit_core_dirs()
        self._emit_intermediate_makefiles()
        self._emit_ignored_dirs()
        self._emit_maintainers_entries()
        self._files["MAINTAINERS"] = self._maintainers.render()
        return GeneratedTree(
            spec=self.spec,
            files=self._files,
            info=self._info,
            maintainers=self._maintainers,
            hazard_symbols=self._hazard_symbols,
            bootstrap_paths=set(self.spec.bootstrap_files),
            rebuild_triggers=set(self.spec.rebuild_triggers),
        )

    # -- shared headers ------------------------------------------------------

    def _emit_shared_headers(self) -> None:
        basic = {
            "include/linux/kernel.h": (
                "#ifndef _LINUX_KERNEL_H\n#define _LINUX_KERNEL_H\n\n"
                "#define KERN_INFO \"6\"\n"
                "#define ARRAY_SIZE(x) (sizeof(x) / sizeof((x)[0]))\n"
                "#define max(a, b) ((a) > (b) ? (a) : (b))\n\n"
                "#endif\n"),
            "include/linux/module.h": (
                "#ifndef _LINUX_MODULE_H\n#define _LINUX_MODULE_H\n\n"
                "#define MODULE_LICENSE(l) "
                "static const char *__modinfo_license = l;\n"
                "#define MODULE_AUTHOR(a)\n"
                "#define module_init(fn) int __init_##fn(void) "
                "{ return fn(); }\n\n"
                "#endif\n"),
            "include/linux/device.h": (
                "#ifndef _LINUX_DEVICE_H\n#define _LINUX_DEVICE_H\n\n"
                "struct device {\n\tint id;\n\tvoid *priv;\n};\n\n"
                "#define dev_name(d) ((d)->id)\n\n"
                "#endif\n"),
        }
        for path, text in basic.items():
            self._files[path] = text
            self._info[path] = SourceFileInfo(path=path, kind="shared_header")
        rng = self._rng.fork("shared-headers")
        for index in range(self.spec.shared_headers):
            name = f"include/linux/subsys{index}.h"
            guard = f"_LINUX_SUBSYS{index}_H"
            limit = rng.randint(8, 64)
            macro = f"SUBSYS{index}_LIMIT"
            self._files[name] = (
                f"#ifndef {guard}\n#define {guard}\n\n"
                f"#define {macro} {limit}\n"
                f"#define SUBSYS{index}_ALIGN(x) (((x) + 7) & ~7)\n\n"
                f"struct subsys{index}_ops {{\n"
                f"\tint (*open)(int id);\n"
                f"\tint (*close)(int id);\n"
                f"}};\n\n#endif\n")
            self._info[name] = SourceFileInfo(
                path=name, kind="shared_header",
                macros=[macro, f"SUBSYS{index}_ALIGN"],
                used_macros=[f"SUBSYS{index}_ALIGN"])

    # -- subsystems ------------------------------------------------------------

    def _emit_subsystem(self, spec: SubsystemSpec, position: int = 0) -> None:
        rng = self._rng.fork(f"subsys:{spec.path}")
        prefix = spec.config_prefix
        gate_symbol = prefix  # CONFIG_<PREFIX> gates the whole directory

        header_infos = self._emit_subsystem_headers(spec, rng)
        driver_names: list[str] = []
        driver_symbols: dict[str, str] = {}
        kconfig_lines = [f"config {gate_symbol}",
                         f"\tbool \"{spec.name} support\"",
                         "\tdefault y", ""]
        # An "extra" symbol for #ifndef hazards: on under allyesconfig.
        extra_symbol = f"{prefix}_EXTRA"
        kconfig_lines += [f"config {extra_symbol}", "\tbool",
                          f"\tdepends on {gate_symbol}", "\tdefault y", ""]
        makefile_lines = [f"# {spec.path}/Makefile"]

        arch_gated: dict[str, str] = {}
        for index in range(spec.drivers):
            name = f"{prefix.lower()}{index}"
            symbol = f"{prefix}_{name.upper()}"
            driver_names.append(name)
            driver_symbols[name] = symbol
            dep = gate_symbol
            kind = "tristate" if spec.tristate else "bool"

            if index >= 2 and rng.bernoulli(0.04):
                # negative dependency: allyesconfig can never enable this
                # driver; a defconfig that leaves the blocker off can.
                blocker = driver_symbols[driver_names[index - 1]]
                dep = f"{gate_symbol} && !{blocker}"
            elif spec.affine_arch and (
                    (index == 3 and position % 2 == 1)
                    or rng.bernoulli(spec.affine_fraction / 2)):
                # Makefile-level arch gating on an arch-only symbol.
                arch_gate = f"{spec.affine_arch.upper()}_SPECIAL_BUS"
                arch_gated[name] = arch_gate
                dep = f"{gate_symbol} && {arch_gate}"

            kconfig_lines += [f"config {symbol}",
                              f"\t{kind} \"{spec.name} driver {name}\"",
                              f"\tdepends on {dep}", ""]
            # Arch-gated drivers are gated in the *Makefile* on the
            # arch-only symbol (the real kernel writes e.g.
            # obj-$(CONFIG_ARCH_OMAP) += ...), which is exactly what the
            # §III-C Makefile heuristic keys on.
            makefile_condition = arch_gated.get(name, symbol)
            makefile_lines.append(
                f"obj-$(CONFIG_{makefile_condition}) += {name}.o")

        # One composite object per subsystem exercises foo-objs handling.
        composite_symbol = f"{prefix}_COMPOSITE"
        kconfig_lines += [f"config {composite_symbol}",
                          f"\ttristate \"{spec.name} composite driver\"",
                          f"\tdepends on {gate_symbol}", ""]
        makefile_lines.append(
            f"obj-$(CONFIG_{composite_symbol}) += {prefix.lower()}_combo.o")
        makefile_lines.append(
            f"{prefix.lower()}_combo-objs := {prefix.lower()}_core.o "
            f"{prefix.lower()}_ops.o")

        kconfig_path = f"{spec.path}/Kconfig"
        self._files[kconfig_path] = "\n".join(kconfig_lines) + "\n"
        self._subsystem_kconfigs.append(kconfig_path)
        self._files[f"{spec.path}/Makefile"] = \
            "\n".join(makefile_lines) + "\n"

        # Hazard coverage guarantee: each subsystem forces one Table-IV
        # hazard (cycling by subsystem position) onto its first driver,
        # so every category exists in every generated tree regardless of
        # the random draws; the rates then add more instances on top.
        hazard_cycle = list(HazardKind)
        forced_hazard = hazard_cycle[position % len(hazard_cycle)]
        if forced_hazard is HazardKind.ARCH_CONDITIONAL and \
                spec.affine_arch is None:
            forced_hazard = HazardKind.CHOICE_UNSET
        for index, name in enumerate(driver_names):
            force = forced_hazard if index == 0 else None
            if index == 4 and spec.affine_arch is not None:
                # Affine subsystems always carry at least one
                # arch-conditional block (the §V-B rescued population).
                force = HazardKind.ARCH_CONDITIONAL
            force_affine = (index == 1 and position % 2 == 0
                            and spec.affine_arch is not None
                            and name not in arch_gated)
            self._emit_driver(spec, rng, name, driver_symbols[name],
                              header_infos, index,
                              arch_gate=arch_gated.get(name),
                              forced_hazard=force,
                              force_affine=force_affine)
        for part in ("core", "ops"):
            self._emit_composite_part(spec, rng, part, composite_symbol,
                                      header_infos)

    def _emit_subsystem_headers(self, spec: SubsystemSpec,
                                rng: DeterministicRng
                                ) -> list[SourceFileInfo]:
        infos: list[SourceFileInfo] = []
        prefix = spec.config_prefix
        for index in range(spec.headers):
            stem = f"{prefix.lower()}_local{index}"
            path = f"{spec.path}/{stem}.h"
            guard = f"_{stem.upper()}_H"
            helper = f"{prefix}{index}_HELPER"
            limit = f"{prefix}{index}_LIMIT"
            orphan = f"{prefix}{index}_ORPHAN"  # used by no .c file
            limit_value = rng.randint(8, 128)
            lines = [
                f"#ifndef {guard}", f"#define {guard}", "",
                f"#define {helper}(x) ((x) * {rng.randint(2, 5)})",
                f"#define {limit} {limit_value}",
                f"#define {orphan}(x) ((x) - {rng.randint(1, 4)})", "",
                f"struct {stem}_state {{",
                "\tint opened;",
                "\tint flags;",
                "\tint pending;",
                "};", "",
            ]
            hazards: list[HazardKind] = []
            if rng.bernoulli(spec.hazard_rates.get(HazardKind.NEVER_SET, 0)):
                ghost = self._new_never_set_symbol()
                lines += [f"#ifdef CONFIG_{ghost}",
                          f"#define {prefix}{index}_LEGACY_SHIFT 3",
                          "#endif", ""]
                hazards.append(HazardKind.NEVER_SET)
            lines += ["#endif", ""]
            self._files[path] = "\n".join(lines)
            info = SourceFileInfo(
                path=path, kind="subsys_header", subsystem=spec.path,
                macros=[helper, limit, orphan],
                used_macros=[helper, limit],
                hazards=hazards)
            self._info[path] = info
            infos.append(info)
        return infos

    def _new_never_set_symbol(self) -> str:
        self._never_set_counter += 1
        name = f"LEGACY_FEATURE_{self._never_set_counter}"
        self._hazard_symbols[HazardKind.NEVER_SET].append(name)
        return name

    def _emit_driver(self, spec: SubsystemSpec, rng: DeterministicRng,
                     name: str, symbol: str,
                     headers: list[SourceFileInfo], index: int,
                     arch_gate: str | None,
                     forced_hazard: HazardKind | None = None,
                     force_affine: bool = False) -> None:
        path = f"{spec.path}/{name}.c"
        upper = name.upper()
        header = headers[index % len(headers)] if headers else None
        hazards: list[HazardKind] = []
        affine_arch: str | None = None

        def wants(kind: HazardKind) -> bool:
            if forced_hazard is kind:
                return True
            return rng.bernoulli(spec.hazard_rates.get(kind, 0))

        shared_index = (index + len(spec.path)) % \
            max(1, self.spec.shared_headers)
        lines = [
            "/*",
            f" * {name}: synthetic {spec.path} driver",
            " *",
            " * Generated substrate source; the structure mirrors common",
            " * kernel driver idioms (register macros, probe/main pair).",
            " */",
            "#include <linux/kernel.h>",
            "#include <linux/module.h>",
            "#include <linux/device.h>",
            f"#include <linux/subsys{shared_index}.h>",
        ]
        if header is not None:
            lines.append(f'#include "{header.path.split("/")[-1]}"')
        if arch_gate is None and spec.affine_arch and force_affine:
            arch = next(a for a in self.spec.arches
                        if a.name == spec.affine_arch)
            if arch.exclusive_headers:
                chosen = arch.exclusive_headers[index %
                                                len(arch.exclusive_headers)]
                lines.append(f"#include <asm/{chosen}.h>")
                affine_arch = spec.affine_arch
        lines += [
            "",
            f"#define {upper}_REG_BASE 0x{rng.randint(0x100, 0xfff):04x}",
            f"#define {upper}_MUX_HI(x) (((x) & 0xf) << 4)",
            f"#define {upper}_MUX_LO(x) (((x) & 0xf) << 0)",
            f"#define {upper}_MUX(x) \\",
            f"\t({upper}_MUX_HI(x) | \\",
            f"\t {upper}_MUX_LO(x))",
        ]
        macros = [f"{upper}_REG_BASE", f"{upper}_MUX_HI",
                  f"{upper}_MUX_LO", f"{upper}_MUX"]

        if wants(HazardKind.UNUSED_MACRO):
            lines.append(f"#define {upper}_UNUSED_SHIFT(x) ((x) << 2)")
            macros.append(f"{upper}_UNUSED_SHIFT")
            hazards.append(HazardKind.UNUSED_MACRO)
        lines.append("")

        if wants(HazardKind.IF_ZERO):
            lines += ["#if 0",
                      f"static int {name}_disabled(void)",
                      "{",
                      "\treturn 1;",
                      "}",
                      "#endif", ""]
            hazards.append(HazardKind.IF_ZERO)

        helper_call = "0"
        limit_ref = "16"
        if header is not None and header.used_macros:
            # Alternate users: each header's users split between its
            # helper and its limit macro (drivers are assigned to
            # headers round-robin by index, so alternate on the
            # driver's ordinal among this header's users). A header
            # change touching both macros then needs two candidate
            # compilations — the paper's 1-11 range for .h coverage.
            user_ordinal = index // max(1, len(headers))
            if user_ordinal % 2 == 0 or len(header.used_macros) < 2:
                helper_call = f"{header.used_macros[0]}(value)"
            else:
                limit_ref = header.used_macros[1]
        lines += [
            f"static int {name}_probe(struct device *dev)",
            "{",
            "\tint status = 0;",
            f"\tint value = {rng.randint(1, 9)};",
            f"\tstatus = {upper}_MUX(value) + {upper}_REG_BASE;",
            f"\tvalue = status + {helper_call};",
            f"\tif (value > {limit_ref})",
            f"\t\tvalue = {limit_ref};",
            f"\tstatus = SUBSYS{shared_index}_ALIGN(status);",
            "\tstatus = max(status, value);",
            "\treturn status;",
            "}", "",
        ]

        if wants(HazardKind.CHOICE_UNSET) \
                and self._hazard_symbols[HazardKind.CHOICE_UNSET]:
            chosen = rng.choice(
                self._hazard_symbols[HazardKind.CHOICE_UNSET])
            lines += [f"#ifdef CONFIG_{chosen}",
                      f"static int {name}_alt_path(struct device *dev)",
                      "{",
                      "\treturn dev->id + 2;",
                      "}",
                      "#endif", ""]
            hazards.append(HazardKind.CHOICE_UNSET)

        if wants(HazardKind.NEVER_SET):
            ghost = self._new_never_set_symbol()
            lines += [f"#ifdef CONFIG_{ghost}",
                      f"static int {name}_legacy(struct device *dev)",
                      "{",
                      "\treturn dev->id - 1;",
                      "}",
                      "#endif", ""]
            hazards.append(HazardKind.NEVER_SET)

        arch_conditional_arch = None
        if spec.affine_arch is not None and \
                wants(HazardKind.ARCH_CONDITIONAL):
            bus = f"{spec.affine_arch.upper()}_SPECIAL_BUS"
            lines += [f"#ifdef CONFIG_{bus}",
                      f"static int {name}_bus_attach(struct device *dev)",
                      "{",
                      f"\tint lanes = {rng.randint(2, 8)};",
                      "\treturn dev->id + lanes;",
                      "}",
                      "#endif", ""]
            hazards.append(HazardKind.ARCH_CONDITIONAL)
            arch_conditional_arch = spec.affine_arch

        if wants(HazardKind.MODULE_ONLY):
            lines += ["#ifdef MODULE",
                      f"static void {name}_module_cleanup(void)",
                      "{",
                      f"\tint grace_ms = {rng.randint(10, 90)};",
                      "\tgrace_ms = grace_ms + 0;",
                      "\treturn;",
                      "}",
                      "#endif", ""]
            hazards.append(HazardKind.MODULE_ONLY)

        if wants(HazardKind.IFNDEF):
            lines += [f"#ifndef CONFIG_{spec.config_prefix}_EXTRA",
                      f"static int {name}_fallback(void)",
                      "{",
                      "\treturn 0;",
                      "}",
                      "#endif", ""]
            hazards.append(HazardKind.IFNDEF)

        if wants(HazardKind.IFDEF_AND_ELSE):
            lines += [f"#ifdef CONFIG_{spec.config_prefix}_EXTRA",
                      f"static int {name}_fast(int v)",
                      "{",
                      f"\treturn v << {rng.randint(1, 3)};",
                      "}",
                      "#else",
                      f"static int {name}_slow(int v)",
                      "{",
                      f"\treturn v + {rng.randint(2, 9)};",
                      "}",
                      "#endif", ""]
            hazards.append(HazardKind.IFDEF_AND_ELSE)

        lines += [
            f"static int {name}_main(struct device *dev)",
            "{",
            f"\tint total = {name}_probe(dev);",
            "\tint retries = 0;",
            "\twhile (retries < 3 && total < 0) {",
            f"\t\ttotal = {name}_probe(dev);",
            "\t\tretries = retries + 1;",
            "\t}",
            "\treturn total;",
            "}", "",
            f"module_init({name}_main);" if spec.tristate else
            f"static int {name}_registered = 1;",
            "MODULE_LICENSE(\"GPL\");" if spec.tristate else "",
            "",
        ]
        self._files[path] = "\n".join(lines)
        self._info[path] = SourceFileInfo(
            path=path, kind="driver_c", subsystem=spec.path,
            config_symbol=symbol, hazards=hazards,
            affine_arch=affine_arch, arch_gate=arch_gate,
            arch_conditional_arch=arch_conditional_arch, macros=macros)

    def _emit_composite_part(self, spec: SubsystemSpec,
                             rng: DeterministicRng, part: str,
                             symbol: str,
                             headers: list[SourceFileInfo]) -> None:
        stem = f"{spec.config_prefix.lower()}_{part}"
        path = f"{spec.path}/{stem}.c"
        upper = stem.upper()
        lines = [
            f"/* {stem}: member of the {spec.config_prefix} composite. */",
            "#include <linux/kernel.h>",
            "",
            f"#define {upper}_STRIDE {rng.randint(2, 16)}",
            "",
            f"int {stem}_setup(int base)",
            "{",
            f"\treturn base + {upper}_STRIDE;",
            "}",
            "",
        ]
        self._files[path] = "\n".join(lines)
        self._info[path] = SourceFileInfo(
            path=path, kind="driver_c", subsystem=spec.path,
            config_symbol=symbol, macros=[f"{upper}_STRIDE"])

    # -- top-level Kconfig/Makefile ---------------------------------------------

    def _emit_top_kconfig(self) -> None:
        lines = [
            'mainmenu "Synthetic Kernel Configuration"',
            "",
            "config MODULES", "\tbool \"Enable loadable module support\"",
            "\tdefault y", "",
            # CONFIG_COMPILE_TEST (Linux 3.11): lets drivers build on
            # hardware that cannot run them — the reason JMake's first
            # guess is a plain native make (§III-C).
            "config COMPILE_TEST", "\tbool \"Compile-test drivers\"",
            "\tdefault y", "",
            "config EXPERT", "\tbool \"Expert options\"", "",
            "config PCI", "\tbool \"PCI support\"", "\tdefault y", "",
            "config SYSFS_DEPRECATED", "\tbool \"Deprecated sysfs\"", "",
        ]
        lines += ["choice", '\tprompt "Default I/O scheduler"']
        for member in self._IOSCHED_MEMBERS:
            lines += [f"config {member}",
                      f"\tbool \"{member.lower()}\""]
        lines += ["endchoice", ""]

        lines += ["choice", '\tprompt "Preemption model"']
        for member in self._PREEMPT_MEMBERS:
            lines += [f"config {member}", f"\tbool \"{member.lower()}\""]
        lines += ["endchoice", ""]

        for kconfig in self._subsystem_kconfigs:
            lines.append(f'source "{kconfig}"')
        lines.append("")
        self._files["Kconfig"] = "\n".join(lines)

    def _emit_top_makefile(self) -> None:
        top_dirs: list[str] = []
        for subsystem in self.spec.subsystems:
            root = subsystem.path.split("/")[0]
            if root not in top_dirs:
                top_dirs.append(root)
        for always in ("kernel", "lib"):
            if always not in top_dirs:
                top_dirs.append(always)
        entries = " ".join(f"{d}/" for d in top_dirs)
        self._files["Makefile"] = (
            "# Synthetic top-level Makefile\n"
            "VERSION = 4\nPATCHLEVEL = 4\n\n"
            f"obj-y += {entries}\n")

    def _emit_core_dirs(self) -> None:
        self._files["kernel/Makefile"] = "obj-y += sched.o bounds.o\n"
        self._files["kernel/sched.c"] = (
            "#include <linux/kernel.h>\n\n"
            "int schedule_next(int task)\n{\n\treturn task + 1;\n}\n")
        self._info["kernel/sched.c"] = SourceFileInfo(
            path="kernel/sched.c", kind="core_c")
        self._files["kernel/bounds.c"] = (
            "/* Compiled by the Makefile itself during setup (see JMake\n"
            " * paper, section V-D): mutation of this file is impossible\n"
            " * because every make invocation rebuilds it first. */\n"
            "int kernel_bounds = 64;\n")
        self._info["kernel/bounds.c"] = SourceFileInfo(
            path="kernel/bounds.c", kind="bootstrap_c")
        self._files["lib/Makefile"] = "obj-y += sort.o\n"
        self._files["lib/sort.c"] = (
            "#include <linux/kernel.h>\n\n"
            "int sort_ints(int a, int b)\n{\n\treturn max(a, b);\n}\n")
        self._info["lib/sort.c"] = SourceFileInfo(
            path="lib/sort.c", kind="core_c")

    def _emit_intermediate_makefiles(self) -> None:
        """Makefile chain from each top directory down to subsystems."""
        needed: dict[str, dict[str, str | None]] = {}
        for subsystem in self.spec.subsystems:
            parts = subsystem.path.split("/")
            for depth in range(1, len(parts)):
                parent = "/".join(parts[:depth])
                child = parts[depth]
                gate = subsystem.config_prefix \
                    if depth == len(parts) - 1 else None
                needed.setdefault(parent, {})
                existing = needed[parent].get(child)
                needed[parent][child] = gate if existing is None else existing
        for parent, children in needed.items():
            makefile_path = f"{parent}/Makefile"
            if makefile_path in self._files:
                continue
            lines = [f"# {makefile_path}"]
            for child, gate in sorted(children.items()):
                if gate is None:
                    lines.append(f"obj-y += {child}/")
                else:
                    lines.append(f"obj-$(CONFIG_{gate}) += {child}/")
            self._files[makefile_path] = "\n".join(lines) + "\n"

    # -- architectures ---------------------------------------------------------

    def _emit_arch(self, arch: ArchSpec) -> None:
        rng = self._rng.fork(f"arch:{arch.name}")
        directory = arch.directory
        arch_symbol = directory.upper()
        special_bus = f"{arch.name.upper()}_SPECIAL_BUS"
        endian_members = [f"{arch_symbol}_CPU_LE", f"{arch_symbol}_CPU_BE"]

        kconfig = [
            f"config {arch_symbol}", "\tbool", "\tdefault y", "",
            f"config {special_bus}", "\tbool", "\tdefault y",
            f"\tdepends on {arch_symbol}", "",
            "choice", f'\tprompt "{arch.name} byte order"',
        ]
        for member in endian_members:
            kconfig += [f"config {member}", f"\tbool \"{member.lower()}\""]
        kconfig += ["endchoice", "", 'source "Kconfig"', ""]
        self._files[f"arch/{directory}/Kconfig"] = "\n".join(kconfig)
        self._hazard_symbols[HazardKind.CHOICE_UNSET].append(
            endian_members[1])

        for header in arch.asm_headers:
            path = f"arch/{directory}/include/asm/{header}.h"
            guard = f"_ASM_{directory.upper()}_{header.upper()}_H"
            self._files[path] = (
                f"#ifndef {guard}\n#define {guard}\n\n"
                f"#define {header.upper()}_BASE_{arch_symbol} "
                f"0x{rng.randint(0x10, 0xff):02x}\n"
                f"#define {header.upper()}_SHIFT {rng.randint(1, 8)}\n\n"
                f"#endif\n")
            self._info[path] = SourceFileInfo(path=path, kind="asm_header")
        for header in arch.exclusive_headers:
            path = f"arch/{directory}/include/asm/{header}.h"
            guard = f"_ASM_{directory.upper()}_{header.upper()}_H"
            self._files[path] = (
                f"#ifndef {guard}\n#define {guard}\n\n"
                f"#define {header.upper()}_REV {rng.randint(1, 6)}\n\n"
                f"#endif\n")
            self._info[path] = SourceFileInfo(path=path, kind="asm_header")

        self._files[f"arch/{directory}/Makefile"] = "obj-y += kernel/\n"
        kernel_objs = []
        for index in range(arch.kernel_files):
            stem = f"{directory}_setup{index}"
            kernel_objs.append(f"{stem}.o")
            path = f"arch/{directory}/kernel/{stem}.c"
            include = arch.asm_headers[index % len(arch.asm_headers)]
            self._files[path] = (
                f"#include <asm/{include}.h>\n\n"
                f"int {stem}_init(void)\n"
                "{\n"
                f"\treturn {include.upper()}_BASE_{arch_symbol} << "
                f"{include.upper()}_SHIFT;\n"
                "}\n")
            self._info[path] = SourceFileInfo(path=path, kind="arch_c")
        self._files[f"arch/{directory}/kernel/Makefile"] = \
            f"obj-y += {' '.join(kernel_objs)}\n"

        # prom_init analogue for powerpc (the Fig. 4c outlier).
        if directory == "powerpc":
            path = "arch/powerpc/kernel/prom_init.c"
            self._files[path] = (
                "#include <asm/prom.h>\n\n"
                "int prom_init(void)\n{\n"
                "\tint delay = 300;\n"
                "\treturn PROM_REV + delay;\n}\n")
            self._info[path] = SourceFileInfo(path=path, kind="arch_c")
            self._files["arch/powerpc/kernel/Makefile"] = \
                f"obj-y += {' '.join(kernel_objs)} prom_init.o\n"

        self._emit_defconfigs(arch, rng)

    def _emit_defconfigs(self, arch: ArchSpec, rng: DeterministicRng) -> None:
        """Per-arch defconfigs in arch/<d>/configs/.

        Each defconfig enables a sample of driver symbols — including,
        crucially, negative-dependency drivers together with
        ``# CONFIG_<blocker> is not set`` lines, the configurations that
        rescue patches allyesconfig cannot cover (§V-B, 84% → 85%).
        """
        all_driver_symbols: list[str] = []
        negative_pairs: list[tuple[str, str]] = []
        for path, info in self._info.items():
            if info.kind == "driver_c" and info.config_symbol:
                all_driver_symbols.append(info.config_symbol)
        # Recover negative pairs from the Kconfig text (ground truth).
        for subsystem in self.spec.subsystems:
            kconfig_text = self._files.get(f"{subsystem.path}/Kconfig", "")
            previous_symbol = None
            for line in kconfig_text.split("\n"):
                stripped = line.strip()
                if stripped.startswith("config "):
                    previous_symbol = stripped.split()[1]
                if stripped.startswith("depends on") and "!" in stripped \
                        and previous_symbol:
                    blocker = stripped.split("!")[-1].strip()
                    negative_pairs.append((previous_symbol, blocker))

        for config_name in arch.defconfigs:
            lines = [f"# {arch.name} {config_name}", "CONFIG_MODULES=y",
                     "CONFIG_PCI=y"]
            # Subsystem gates and extras must be on for any driver to
            # build (the subdir chain is gated on them).
            for subsystem in self.spec.subsystems:
                lines.append(f"CONFIG_{subsystem.config_prefix}=y")
                lines.append(f"CONFIG_{subsystem.config_prefix}_EXTRA=y")
            # Drivers affine to this architecture always appear in its
            # defconfigs (like OMAP drivers in omap2plus_defconfig) —
            # this is what lets the §III-C heuristic route such files to
            # the right cross-compiler.
            for info in self._info.values():
                if info.config_symbol and (
                        info.affine_arch == arch.name or
                        info.arch_conditional_arch == arch.name or
                        info.arch_gate ==
                        f"{arch.name.upper()}_SPECIAL_BUS"):
                    lines.append(f"CONFIG_{info.config_symbol}=y")
            sample_size = min(len(all_driver_symbols),
                              max(3, len(all_driver_symbols) // 12))
            for symbol in sorted(rng.sample(all_driver_symbols,
                                            sample_size)):
                lines.append(f"CONFIG_{symbol}=y")
            # Each defconfig rescues a couple of negative-dep drivers.
            for symbol, blocker in negative_pairs[:2]:
                lines.append(f"CONFIG_{symbol}=y")
                lines.append(f"# CONFIG_{blocker} is not set")
            path = f"arch/{arch.directory}/configs/{config_name}"
            self._files[path] = "\n".join(lines) + "\n"

    # -- ignored directories -----------------------------------------------------

    def _emit_ignored_dirs(self) -> None:
        self._files["Documentation/networking/netdev-FAQ.txt"] = (
            "Q: How do I test my patches?\n"
            "A: Build with allyesconfig and allmodconfig first.\n")
        self._files["Documentation/CodingStyle"] = \
            "Chapter 1: Indentation\n\nTabs are 8 characters.\n"
        self._files["scripts/checkpatch.pl"] = \
            "#!/usr/bin/perl\n# style checker stub\n"
        self._files["scripts/basic/fixdep.c"] = (
            "/* host tool, not kernel code */\n"
            "int main(void) { return 0; }\n")
        self._files["tools/perf/builtin-top.c"] = (
            "/* userspace tool */\nint tool_main(void) { return 0; }\n")

    # -- MAINTAINERS ----------------------------------------------------------------

    def _emit_maintainers_entries(self) -> None:
        for subsystem in self.spec.subsystems:
            self._maintainers.add(MaintainersEntry(
                name=subsystem.name,
                maintainers=[subsystem.maintainer],
                lists=[subsystem.mailing_list,
                       "linux-kernel@vger.kernel.org"],
                file_patterns=[f"{subsystem.path}/"],
            ))
            # Per-driver overlapping entries for the first two drivers,
            # mirroring how MAINTAINERS granularity varies (§IV).
            prefix = subsystem.config_prefix.lower()
            for index in range(2):
                driver_path = f"{subsystem.path}/{prefix}{index}.c"
                if driver_path in self._files:
                    self._maintainers.add(MaintainersEntry(
                        name=f"{subsystem.name} {prefix}{index} DRIVER",
                        maintainers=[
                            f"Driver Maintainer <{prefix}{index}"
                            f"@example.org>"],
                        lists=[subsystem.mailing_list],
                        file_patterns=[driver_path],
                    ))
        for arch in self.spec.arches:
            self._maintainers.add(MaintainersEntry(
                name=f"{arch.name.upper()} ARCHITECTURE",
                maintainers=[f"Arch Maintainer <{arch.name}@example.org>"],
                lists=[f"linux-{arch.directory}@vger.kernel.org",
                       "linux-kernel@vger.kernel.org"],
                file_patterns=[f"arch/{arch.directory}/"],
            ))


def generate_tree(spec: TreeSpec | None = None) -> GeneratedTree:
    """Convenience wrapper: generate with the default or given spec."""
    from repro.kernel.layout import default_tree_spec

    return KernelTreeGenerator(spec or default_tree_spec()).generate()
