"""Synthetic kernel tree substrate.

The paper's experiments run over the real Linux v4.3→v4.4 tree. Offline,
we generate a structurally equivalent tree instead (see DESIGN.md §2):

- :mod:`repro.kernel.maintainers` — the MAINTAINERS database JMake's
  janitor analysis reads (§IV);
- :mod:`repro.kernel.layout` — declarative specs for architectures,
  subsystems, and configurability-hazard rates;
- :mod:`repro.kernel.generator` — the deterministic generator producing
  the tree files plus ground-truth metadata for the workload generator
  (JMake itself never reads the metadata).
"""

from repro.kernel.generator import (
    GeneratedTree,
    KernelTreeGenerator,
    SourceFileInfo,
    generate_tree,
)
from repro.kernel.layout import (
    ArchSpec,
    HazardKind,
    SubsystemSpec,
    TreeSpec,
    default_tree_spec,
)
from repro.kernel.maintainers import MaintainersDb, MaintainersEntry

__all__ = [
    "ArchSpec",
    "GeneratedTree",
    "HazardKind",
    "KernelTreeGenerator",
    "MaintainersDb",
    "MaintainersEntry",
    "SourceFileInfo",
    "SubsystemSpec",
    "TreeSpec",
    "default_tree_spec",
    "generate_tree",
]
