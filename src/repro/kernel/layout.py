"""Declarative specs for the synthetic kernel tree.

A :class:`TreeSpec` describes which architectures and subsystems to
generate and at what rates to inject *configurability hazards* — the
exact situations Table IV of the paper catalogues as reasons changed
lines escape the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class HazardKind(Enum):
    """Table IV failure categories (plus arch-affinity, §V-B)."""

    #: block under ``#ifdef CONFIG_X`` where X is a non-default choice
    #: member — allyesconfig cannot set it
    CHOICE_UNSET = "ifdef-not-set-by-allyesconfig"
    #: block under ``#ifdef CONFIG_X`` where no Kconfig defines X
    NEVER_SET = "ifdef-never-set-in-kernel"
    #: block under ``#ifdef MODULE``
    MODULE_ONLY = "ifdef-module"
    #: block under ``#ifndef CONFIG_X`` (or the #else of an #ifdef)
    IFNDEF = "ifndef-or-else"
    #: paired change under both branches of #ifdef/#else
    IFDEF_AND_ELSE = "ifdef-and-else"
    #: block under ``#if 0``
    IF_ZERO = "if-0"
    #: macro defined but never used in the file
    UNUSED_MACRO = "unused-macro"
    #: block under ``#ifdef CONFIG_<ARCH>_SPECIAL_BUS`` — invisible to
    #: the host's allyesconfig but compiled under the owning arch; this
    #: is the population §V-B reports as rescued by extra architectures
    #: (54 file instances), not a Table IV failure
    ARCH_CONDITIONAL = "arch-conditional"


@dataclass(frozen=True)
class ArchSpec:
    """One architecture's synthetic subtree."""

    name: str                     # toolchain name, e.g. "x86_64"
    directory: str                # arch/<directory>
    defconfigs: tuple[str, ...] = ()
    kernel_files: int = 4         # .c files under arch/<d>/kernel/
    asm_headers: tuple[str, ...] = ("io", "irq", "page")
    #: arch-private asm headers: drivers including these compile only here
    exclusive_headers: tuple[str, ...] = ()


@dataclass(frozen=True)
class SubsystemSpec:
    """One subsystem directory with drivers, Kconfig, and Makefile."""

    name: str                     # human name for MAINTAINERS
    path: str                     # e.g. "drivers/net"
    config_prefix: str            # e.g. "NET" -> CONFIG_NET_<DRIVER>
    drivers: int = 8              # number of .c driver files
    headers: int = 2              # subsystem-local .h files
    mailing_list: str = "linux-kernel@vger.kernel.org"
    maintainer: str = "Sub Maintainer <maint@example.org>"
    tristate: bool = True         # drivers are tristate (modules) vs bool
    #: fraction of drivers gated on an arch-specific config symbol
    arch_gated_fraction: float = 0.0
    #: arch whose exclusive header some drivers include (arch-affine code)
    affine_arch: str | None = None
    affine_fraction: float = 0.0
    #: probability that a driver file carries each hazard kind
    hazard_rates: dict[HazardKind, float] = field(default_factory=dict)


@dataclass(frozen=True)
class TreeSpec:
    """The whole tree."""

    seed: int | str = "jmake-tree-v1"
    arches: tuple[ArchSpec, ...] = ()
    subsystems: tuple[SubsystemSpec, ...] = ()
    shared_headers: int = 6       # include/linux/*.h
    #: files the Makefile compiles during setup (§V-D); cannot be mutated
    bootstrap_files: tuple[str, ...] = ("kernel/bounds.c",)
    #: files whose .o triggers a whole-kernel rebuild (Fig. 4c outlier)
    rebuild_triggers: tuple[str, ...] = (
        "arch/powerpc/kernel/prom_init.c",)


_DEFAULT_HAZARDS = {
    HazardKind.CHOICE_UNSET: 0.030,
    HazardKind.NEVER_SET: 0.030,
    HazardKind.MODULE_ONLY: 0.025,
    HazardKind.IFNDEF: 0.020,
    HazardKind.IFDEF_AND_ELSE: 0.010,
    HazardKind.IF_ZERO: 0.010,
    HazardKind.UNUSED_MACRO: 0.030,
    HazardKind.ARCH_CONDITIONAL: 0.040,
}


def default_tree_spec(*, driver_scale: int = 1,
                      seed: int | str = "jmake-tree-v1") -> TreeSpec:
    """The standard evaluation tree.

    ``driver_scale`` multiplies driver counts for larger corpora; the
    default yields a tree of a few hundred files that generates in well
    under a second.
    """
    arches = (
        ArchSpec(name="x86_64", directory="x86",
                 defconfigs=("x86_64_defconfig", "kvm_defconfig"),
                 exclusive_headers=("mtrr",)),
        ArchSpec(name="arm", directory="arm",
                 defconfigs=("multi_v7_defconfig", "omap2plus_defconfig"),
                 exclusive_headers=("amba", "omap")),
        ArchSpec(name="powerpc", directory="powerpc",
                 defconfigs=("ppc64_defconfig",),
                 exclusive_headers=("prom",)),
        ArchSpec(name="mips", directory="mips",
                 defconfigs=("malta_defconfig",),
                 exclusive_headers=("mach",)),
        ArchSpec(name="blackfin", directory="blackfin",
                 defconfigs=("bf537_defconfig",),
                 exclusive_headers=("bfin_serial",)),
        ArchSpec(name="parisc", directory="parisc",
                 defconfigs=("generic_defconfig",),
                 exclusive_headers=("hardware",)),
        ArchSpec(name="s390", directory="s390",
                 defconfigs=("s390_defconfig",),
                 exclusive_headers=("ccw",)),
        ArchSpec(name="sparc", directory="sparc",
                 defconfigs=("sparc64_defconfig",),
                 exclusive_headers=("oplib",)),
    )
    subsystems = (
        SubsystemSpec(
            name="NETWORKING DRIVERS", path="drivers/net",
            config_prefix="NETDRV", drivers=10 * driver_scale, headers=3,
            mailing_list="netdev@vger.kernel.org",
            maintainer="Net Maintainer <netdev-maint@example.org>",
            affine_arch="arm", affine_fraction=0.05,
            hazard_rates=_DEFAULT_HAZARDS),
        SubsystemSpec(
            name="STAGING SUBSYSTEM", path="drivers/staging/comedi",
            config_prefix="COMEDI", drivers=12 * driver_scale, headers=3,
            mailing_list="devel@driverdev.osuosl.org",
            maintainer="Staging Maintainer <staging@example.org>",
            affine_arch="blackfin", affine_fraction=0.04,
            hazard_rates={kind: rate * 1.8
                          for kind, rate in _DEFAULT_HAZARDS.items()}),
        SubsystemSpec(
            name="CHARACTER DEVICES", path="drivers/char",
            config_prefix="CHARDEV", drivers=6 * driver_scale, headers=2,
            mailing_list="linux-kernel@vger.kernel.org",
            maintainer="Char Maintainer <char@example.org>",
            hazard_rates=_DEFAULT_HAZARDS),
        SubsystemSpec(
            name="SOUND SUBSYSTEM", path="sound/core",
            config_prefix="SND", drivers=6 * driver_scale, headers=2,
            mailing_list="alsa-devel@alsa-project.org",
            maintainer="Sound Maintainer <sound@example.org>",
            affine_arch="powerpc", affine_fraction=0.04,
            hazard_rates=_DEFAULT_HAZARDS),
        SubsystemSpec(
            name="EXT4 FILE SYSTEM", path="fs/ext4",
            config_prefix="EXT4", drivers=5 * driver_scale, headers=2,
            mailing_list="linux-ext4@vger.kernel.org",
            maintainer="Fs Maintainer <fs@example.org>",
            tristate=False,
            hazard_rates=_DEFAULT_HAZARDS),
        SubsystemSpec(
            name="NETWORKING CORE", path="net/core",
            config_prefix="NETCORE", drivers=5 * driver_scale, headers=2,
            mailing_list="netdev@vger.kernel.org",
            maintainer="Net Maintainer <netdev-maint@example.org>",
            tristate=False,
            hazard_rates=_DEFAULT_HAZARDS),
        SubsystemSpec(
            name="GPU DRIVERS", path="drivers/gpu/drm",
            config_prefix="DRM", drivers=7 * driver_scale, headers=2,
            mailing_list="dri-devel@lists.freedesktop.org",
            maintainer="Gpu Maintainer <gpu@example.org>",
            affine_arch="mips", affine_fraction=0.04,
            hazard_rates=_DEFAULT_HAZARDS),
        SubsystemSpec(
            name="MEMORY MANAGEMENT", path="mm",
            config_prefix="MM", drivers=4 * driver_scale, headers=1,
            mailing_list="linux-mm@kvack.org",
            maintainer="Mm Maintainer <mm@example.org>",
            tristate=False,
            hazard_rates=_DEFAULT_HAZARDS),
        SubsystemSpec(
            name="USB SUBSYSTEM", path="drivers/usb/core",
            config_prefix="USB", drivers=6 * driver_scale, headers=2,
            mailing_list="linux-usb@vger.kernel.org",
            maintainer="Usb Maintainer <usb@example.org>",
            affine_arch="parisc", affine_fraction=0.03,
            hazard_rates=_DEFAULT_HAZARDS),
        SubsystemSpec(
            name="SCSI SUBSYSTEM", path="drivers/scsi",
            config_prefix="SCSI", drivers=6 * driver_scale, headers=2,
            mailing_list="linux-scsi@vger.kernel.org",
            maintainer="Scsi Maintainer <scsi@example.org>",
            affine_arch="arm", affine_fraction=0.03,
            hazard_rates=_DEFAULT_HAZARDS),
    )
    return TreeSpec(seed=seed, arches=arches, subsystems=subsystems)
