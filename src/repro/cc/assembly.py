"""Fake assembly output: the ``.s`` and ``.lst`` files of §III-A.

The paper considers tracking mutations through ``.s`` (assembly),
``.lst`` (assembly interleaved with C source), and ``.o`` files, and
rejects all three because "all of these are only generated for files
that pass all the verifications of the compiler front end" — a mutated
file can never produce them. This module implements the generation so
that property is demonstrable rather than asserted: :func:`emit_assembly`
runs the same front end as object compilation and therefore fails on
stray characters, and the ``.lst`` output interleaves the original C
lines the way ``gcc -Wa,-adhln`` does.

The instruction selection is deliberately naive (one pseudo-op per
meaningful token run); nothing downstream executes it. What matters is
*which source lines* appear — the paper's point is that macro-origin
lines are attributed to use sites, losing the definition's own line
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.compiler import Compiler, ObjectFile
from repro.cpp.lexer import TokenKind
from repro.cc.lexer import lex_translation_unit


@dataclass
class AssemblyListing:
    """The ``.s`` text plus the ``.lst`` interleaving."""

    source: str
    architecture: str
    s_text: str
    lst_text: str
    #: (file, line) pairs that contributed at least one instruction
    covered_lines: set[tuple[str, int]] = field(default_factory=set)


def emit_assembly(compiler: Compiler, path: str) -> AssemblyListing:
    """``make file.s`` / ``make file.lst``.

    Raises :class:`repro.errors.CompileError` exactly when
    ``make file.o`` would — the front end runs first.
    """
    obj: ObjectFile = compiler.compile_object(path)  # front-end gate
    preprocessed = compiler.preprocess(path)
    lexed = lex_translation_unit(preprocessed.text, main_file=path)

    s_lines: list[str] = [f"\t.file\t\"{path}\"",
                          f"\t.arch\t{compiler.architecture.name}"]
    lst_lines: list[str] = []
    covered: set[tuple[str, int]] = set()
    current_position: tuple[str, int] | None = None

    for token in lexed.tokens:
        position = (token.file, token.line)
        if position != current_position:
            current_position = position
            covered.add(position)
            s_lines.append(f"\t.loc\t\"{token.file}\" {token.line}")
            lst_lines.append(f"{token.line:>6}: {token.file}")
        if token.token.kind is TokenKind.IDENT:
            mnemonic = f"\tld\tr0, {token.token.text}"
        elif token.token.kind is TokenKind.NUMBER:
            mnemonic = f"\tmov\tr0, #{token.token.text}"
        elif token.token.text == "{":
            mnemonic = "\tpush\t{fp}"
        elif token.token.text == "}":
            mnemonic = "\tpop\t{fp}"
        else:
            continue
        s_lines.append(mnemonic)
        lst_lines.append(" " * 8 + mnemonic)

    for symbol in obj.symbols:
        s_lines.append(f"\t.globl\t{symbol}")

    return AssemblyListing(
        source=path,
        architecture=compiler.architecture.name,
        s_text="\n".join(s_lines) + "\n",
        lst_text="\n".join(lst_lines) + "\n",
        covered_lines=covered,
    )
