"""Compiler front-end substrate.

Provides what ``gcc`` (and its cross variants) contributes to JMake:

- a C lexer over preprocessed ``.i`` text that *rejects invalid
  characters* — this is why a mutated file can produce a ``.i`` file but
  never a ``.o`` file (paper §III-A);
- lightweight syntax validation (balanced delimiters, declaration shape)
  standing in for the rest of the front end;
- per-architecture toolchains that differ in builtin macros and include
  roots, so a file needing ``asm/`` headers of one architecture fails to
  compile for another (§III-C);
- the paper's cross-compiler availability matrix (24 of 34 ``make.cross``
  architectures work).
"""

from repro.cc.assembly import AssemblyListing, emit_assembly
from repro.cc.compiler import Compiler, Diagnostic, ObjectFile
from repro.cc.lexer import lex_translation_unit
from repro.cc.linker import KernelImage, LinkError, link
from repro.cc.toolchain import Architecture, ToolchainRegistry

__all__ = [
    "Architecture",
    "AssemblyListing",
    "Compiler",
    "Diagnostic",
    "KernelImage",
    "LinkError",
    "ObjectFile",
    "ToolchainRegistry",
    "emit_assembly",
    "lex_translation_unit",
    "link",
]
