"""Per-architecture toolchains and the ``make.cross`` availability matrix.

The paper reports that the ``make.cross`` script supports 34
architectures of which the authors could make 24 work (§II-A, footnote 3).
We reproduce that matrix exactly: requesting a broken toolchain raises
:class:`ToolchainError`, which the evaluation counts the same way the
paper counts "unsupported architecture required".

Each :class:`Architecture` carries the properties that make compilation
architecture-dependent in the substrate:

- ``builtin_macros`` — the ``__arch__``-style predefines plus word-size
  macros, referenced by arch-conditional source;
- ``include_roots`` — ordered include search paths; ``asm/...`` headers
  resolve only under the owning architecture's root, so a driver that
  needs another architecture's headers fails to preprocess natively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ToolchainError

#: Architectures make.cross supports and the authors made work (§II-A).
WORKING_ARCHITECTURES: tuple[str, ...] = (
    "i386", "x86_64", "alpha", "arm", "avr32", "blackfin", "cris", "ia64",
    "m32r", "m68k", "microblaze", "mips", "mn10300", "openrisc", "parisc",
    "powerpc", "s390", "sh", "sparc", "sparc64", "tile", "tilegx", "um",
    "xtensa",
)

#: Architectures make.cross lists but that failed for the authors.
BROKEN_ARCHITECTURES: tuple[str, ...] = (
    "arm64", "c6x", "frv", "h8300", "hexagon", "score", "sh64", "sparc32",
    "tilepro", "unicore32",
)

#: Map from an architecture name to the arch/ subdirectory that owns it
#: (several names share a directory, e.g. i386/x86_64 -> arch/x86).
ARCH_DIRECTORY: dict[str, str] = {
    "i386": "x86",
    "x86_64": "x86",
    "sparc64": "sparc",
    "tilegx": "tile",
}


def arch_directory(name: str) -> str:
    """The arch/ subdirectory for a toolchain name."""
    return ARCH_DIRECTORY.get(name, name)


@dataclass(frozen=True)
class Architecture:
    """One buildable target."""

    name: str
    bits: int = 64
    builtin_macros: dict[str, str] = field(default_factory=dict)
    include_roots: tuple[str, ...] = ()
    works: bool = True

    @property
    def directory(self) -> str:
        """The arch/ subdirectory owning this target."""
        return arch_directory(self.name)

    def predefines(self) -> dict[str, str]:
        """All compiler-level predefined macros for this target."""
        macros = {
            "__KERNEL__": "1",
            f"__{self.name}__": "1",
            "__GNUC__": "4",
            "BITS_PER_LONG": str(self.bits),
        }
        if self.bits == 64:
            macros["__LP64__"] = "1"
        macros.update(self.builtin_macros)
        return macros


def _default_architecture(name: str, works: bool) -> Architecture:
    directory = arch_directory(name)
    bits = 64 if name in ("x86_64", "alpha", "ia64", "powerpc", "s390",
                          "sparc64", "tilegx", "mips") else 32
    return Architecture(
        name=name,
        bits=bits,
        include_roots=(
            f"arch/{directory}/include",
            "include",
        ),
        works=works,
    )


class ToolchainRegistry:
    """All toolchains known to ``make.cross``, working or not.

    ``host`` names the architecture of the developer's machine — the
    paper's experiments ran on x86_64 and JMake tries a plain ``make``
    (native toolchain) first.
    """

    def __init__(self, host: str = "x86_64",
                 architectures: list[Architecture] | None = None) -> None:
        self._architectures: dict[str, Architecture] = {}
        if architectures is None:
            for name in WORKING_ARCHITECTURES:
                self.register(_default_architecture(name, works=True))
            for name in BROKEN_ARCHITECTURES:
                self.register(_default_architecture(name, works=False))
        else:
            for architecture in architectures:
                self.register(architecture)
        if host not in self._architectures:
            raise ToolchainError(f"unknown host architecture: {host}")
        self._host = host

    def register(self, architecture: Architecture) -> None:
        """Add or replace a toolchain."""
        self._architectures[architecture.name] = architecture

    @property
    def host(self) -> Architecture:
        """The developer machine's architecture (tried first)."""
        return self._architectures[self._host]

    def names(self) -> list[str]:
        """All known toolchain names, working or not."""
        return sorted(self._architectures)

    def working_names(self) -> list[str]:
        """Names with a working cross-compiler (24 in the paper)."""
        return sorted(name for name, arch in self._architectures.items()
                      if arch.works)

    def knows(self, name: str) -> bool:
        """True when the name is in the make.cross matrix at all."""
        return name in self._architectures

    def get(self, name: str) -> Architecture:
        """A *working* toolchain, or ToolchainError.

        Broken toolchains raise the same way a failing make.cross install
        surfaces in the paper's pipeline.
        """
        architecture = self._architectures.get(name)
        if architecture is None:
            raise ToolchainError(f"unknown architecture: {name}")
        if not architecture.works:
            raise ToolchainError(
                f"cross-compilation for {name} is unavailable "
                f"(make.cross failure)")
        return architecture

    def for_directory(self, directory: str) -> list[Architecture]:
        """Working toolchains whose arch/ subdirectory is ``directory``.

        ``arch/x86`` maps to both i386 and x86_64, for example.
        """
        return [arch for arch in self._architectures.values()
                if arch.works and arch.directory == directory]
