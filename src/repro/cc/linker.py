"""A linker: objects into a kernel image.

Completes the toolchain substrate so that the paper's *basic idea* —
"mutate the source code ... then compile the code, and finally check
that all of the unique tokens are found in the compiled image" (§III) —
is a real, runnable operation: string literals flow from sources through
:class:`~repro.cc.compiler.ObjectFile` data sections into the linked
:class:`KernelImage`, where :meth:`KernelImage.contains` searches them.

The refinement the paper then makes is also demonstrable here: a mutated
file never produces an object at all, so the image-level check can only
ever confirm *unmutated* builds — which is why JMake greps ``.i`` files
instead.

Link semantics implemented:

- duplicate *defined* symbols are an error (kernel builds are one
  namespace);
- undefined references are reported (callers decide whether to treat
  them as errors; kernels resolve some at module-load time);
- a deterministic image layout: symbols get monotonically increasing
  addresses in link order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.compiler import ObjectFile
from repro.errors import ReproError


class LinkError(ReproError):
    """Raised on duplicate symbol definitions."""


@dataclass
class KernelImage:
    """The linked artifact: symbol table plus read-only string data."""

    architecture: str
    objects: list[str] = field(default_factory=list)
    #: symbol -> (defining object, address)
    symbol_table: dict[str, tuple[str, int]] = field(default_factory=dict)
    rodata: list[str] = field(default_factory=list)
    undefined: set[str] = field(default_factory=set)

    @property
    def size(self) -> int:
        """Deterministic image size (symbols + rodata bytes)."""
        return 4096 + 64 * len(self.symbol_table) + \
            sum(len(s) for s in self.rodata)

    def contains(self, needle: str) -> bool:
        """The §III basic-idea check: is the token in the image?"""
        return any(needle in blob for blob in self.rodata)

    def address_of(self, symbol: str) -> int:
        """The symbol's address; KeyError when not defined."""
        return self.symbol_table[symbol][1]

    def defined_in(self, symbol: str) -> str:
        """The object that defined the symbol."""
        return self.symbol_table[symbol][0]


_BASE_ADDRESS = 0xFFFF_0000_0000
_SYMBOL_STRIDE = 0x40


def link(objects: list[ObjectFile], *,
         architecture: str | None = None) -> KernelImage:
    """Link objects into one image.

    Raises :class:`LinkError` on duplicate definitions or on objects
    compiled for different architectures.
    """
    if not objects:
        raise LinkError("nothing to link")
    arch = architecture or objects[0].architecture
    image = KernelImage(architecture=arch)
    referenced: set[str] = set()
    address = _BASE_ADDRESS
    for obj in objects:
        if obj.architecture != arch:
            raise LinkError(
                f"{obj.source} compiled for {obj.architecture}, "
                f"image is {arch}")
        image.objects.append(obj.source)
        for symbol in obj.symbols:
            if symbol in image.symbol_table:
                other = image.symbol_table[symbol][0]
                raise LinkError(
                    f"duplicate symbol {symbol!r}: defined in "
                    f"{other} and {obj.source}")
            image.symbol_table[symbol] = (obj.source, address)
            address += _SYMBOL_STRIDE
        referenced.update(obj.references)
        image.rodata.extend(obj.strings)
    image.undefined = referenced - set(image.symbol_table)
    return image
