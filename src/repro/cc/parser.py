"""Lightweight syntax validation of a lexed translation unit.

This stands in for the rest of the gcc front end. It checks the
properties that matter to the substrate:

- every ``(``/``[``/``{`` closes in order (kernel code that survives the
  preprocessor always balances; a truncated or corrupted unit does not);
- the unit is not empty (an empty ``.o`` would hide a preprocessing bug);
- top-level function definitions are recognised well enough to extract a
  symbol table for the fake object file.

It deliberately does *not* type-check: JMake never depends on type
errors, only on lexical validity and on whether lines reach the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.lexer import LexedToken, LexResult
from repro.cpp.lexer import TokenKind

_OPENERS = {"(": ")", "[": "]", "{": "}"}
_CLOSERS = {")": "(", "]": "[", "}": "{"}

#: Keywords that can never be function names.
_KEYWORDS = {
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "return", "short", "signed",
    "sizeof", "static", "struct", "switch", "typedef", "union", "unsigned",
    "void", "volatile", "while",
}


@dataclass(frozen=True)
class SyntaxIssue:
    """One front-end complaint with its source position."""
    message: str
    file: str
    line: int


@dataclass
class ParseOutcome:
    """Validation result: issues found plus extracted symbols."""
    issues: list[SyntaxIssue] = field(default_factory=list)
    symbols: list[str] = field(default_factory=list)
    #: function names called but not defined in this unit
    external_calls: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when validation produced no issues."""
        return not self.issues


def validate_unit(lexed: LexResult) -> ParseOutcome:
    """Balance-check the token stream and extract defined symbols."""
    outcome = ParseOutcome()
    stack: list[LexedToken] = []
    meaningful = [t for t in lexed.tokens
                  if t.token.kind is not TokenKind.OTHER]
    if not meaningful:
        outcome.issues.append(SyntaxIssue(
            "empty translation unit", file="<unit>", line=0))
        return outcome

    for lexed_token in meaningful:
        text = lexed_token.token.text
        if text in _OPENERS:
            stack.append(lexed_token)
        elif text in _CLOSERS:
            if not stack or stack[-1].token.text != _CLOSERS[text]:
                outcome.issues.append(SyntaxIssue(
                    f"unbalanced {text!r}",
                    file=lexed_token.file, line=lexed_token.line))
                return outcome
            stack.pop()
    for unclosed in stack:
        outcome.issues.append(SyntaxIssue(
            f"unclosed {unclosed.token.text!r}",
            file=unclosed.file, line=unclosed.line))
    if outcome.issues:
        return outcome

    outcome.symbols = _extract_symbols(meaningful)
    outcome.external_calls = _extract_external_calls(
        meaningful, set(outcome.symbols))
    return outcome


def _extract_external_calls(tokens: list[LexedToken],
                            defined: set[str]) -> list[str]:
    """Call sites ``ident(...)`` inside function bodies whose target is
    not defined in this unit — the linker's undefined references."""
    calls: list[str] = []
    depth = 0
    for index, lexed in enumerate(tokens):
        text = lexed.token.text
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
        elif (depth > 0 and lexed.token.kind is TokenKind.IDENT
                and text not in _KEYWORDS and text not in defined
                and index + 1 < len(tokens)
                and tokens[index + 1].token.text == "("
                and text not in calls):
            calls.append(text)
    return calls


def _extract_symbols(tokens: list[LexedToken]) -> list[str]:
    """Function definitions: ``ident ( ... ) {`` at brace depth 0."""
    symbols: list[str] = []
    depth = 0
    i = 0
    while i < len(tokens):
        text = tokens[i].token.text
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
        elif (depth == 0 and tokens[i].token.kind is TokenKind.IDENT
                and text not in _KEYWORDS
                and i + 1 < len(tokens) and tokens[i + 1].token.text == "("):
            close = _matching_paren(tokens, i + 1)
            if close is not None and close + 1 < len(tokens) \
                    and tokens[close + 1].token.text == "{":
                symbols.append(text)
                i = close
        i += 1
    return symbols


def _matching_paren(tokens: list[LexedToken], open_index: int) -> int | None:
    depth = 0
    for index in range(open_index, len(tokens)):
        text = tokens[index].token.text
        if text == "(":
            depth += 1
        elif text == ")":
            depth -= 1
            if depth == 0:
                return index
    return None
