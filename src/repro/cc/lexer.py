"""C token lexing over preprocessed text, with position tracking.

The input is ``.i`` text carrying gcc-style ``# <line> "<file>"``
markers. The lexer walks each line, resolves the original source position
from the markers, and classifies tokens with the shared preprocessing
lexer. Characters that form no valid C token (JMake's mutation character
among them) produce *stray-character* records the compiler turns into
hard errors — gcc's ``error: stray '`' in program``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.cpp.lexer import Token, TokenKind, tokenize_shared

_LINE_MARKER_RE = re.compile(r'^#\s+(\d+)\s+"([^"]*)"')


@dataclass(frozen=True)
class LexedToken:
    """A token with its resolved original source position."""

    token: Token
    file: str
    line: int


@dataclass
class LexResult:
    """All tokens of a unit plus the stray-character records."""
    tokens: list[LexedToken] = field(default_factory=list)
    stray_characters: list[LexedToken] = field(default_factory=list)

    def identifiers(self) -> list[str]:
        """The texts of all identifier tokens, in order."""
        return [lexed.token.text for lexed in self.tokens
                if lexed.token.kind is TokenKind.IDENT]


def lex_translation_unit(i_text: str, *,
                         main_file: str = "<unit>") -> LexResult:
    """Lex preprocessed text, honouring line markers."""
    result = LexResult()
    current_file = main_file
    current_line = 1
    for raw in i_text.split("\n"):
        if not raw:
            current_line += 1
            continue
        if raw[0] == "#":
            marker = _LINE_MARKER_RE.match(raw)
            if marker:
                current_line = int(marker.group(1))
                current_file = marker.group(2)
                continue
        for token in tokenize_shared(raw):
            if token.is_ws:
                continue
            lexed = LexedToken(token=token, file=current_file,
                               line=current_line)
            result.tokens.append(lexed)
            if token.kind is TokenKind.OTHER and not token.text.isspace():
                result.stray_characters.append(lexed)
        current_line += 1
    return result
