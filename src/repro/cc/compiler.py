"""The compiler: preprocess + front-end validation + fake object output.

:class:`Compiler` binds one :class:`~repro.cc.toolchain.Architecture` to a
file provider and a configuration macro set, and offers the two
operations the kernel Makefile exposes to JMake (§II-A):

- :meth:`Compiler.preprocess` — ``make file.i``;
- :meth:`Compiler.compile_object` — ``make file.o``.

A unit containing stray characters (mutations) preprocesses fine but
fails ``compile_object`` with gcc-shaped diagnostics. Per the paper's
observation about gcc 4.8 error reporting, a stray character that came
from a macro *body* is reported at the macro *use* site — the position
the line markers attribute, which is exactly why JMake gave up on
error-message scraping and greps ``.i`` files instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.lexer import LexResult, lex_translation_unit
from repro.cc.parser import validate_unit
from repro.cc.toolchain import Architecture
from repro.cpp.preprocessor import FileProvider, PreprocessResult, Preprocessor
from repro.errors import CompileError, PreprocessorError


@dataclass(frozen=True)
class Diagnostic:
    """One compiler error message."""

    file: str
    line: int
    message: str

    def render(self) -> str:
        """gcc-style ``file:line: error: message`` formatting."""
        return f"{self.file}:{self.line}: error: {self.message}"


@dataclass
class ObjectFile:
    """The fake ``.o``: enough structure for tests and benchmarks.

    ``strings`` is the read-only data section: every string literal of
    the unit lands here, which is what makes "check that all of the
    unique tokens are found in the compiled image" (§III, the paper's
    basic idea) a real operation on linked images.
    """

    source: str
    architecture: str
    symbols: list[str] = field(default_factory=list)
    token_count: int = 0
    strings: list[str] = field(default_factory=list)
    #: function names called but not defined in this unit
    references: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        """A deterministic stand-in for object size."""
        return 64 + 16 * self.token_count + \
            sum(len(s) for s in self.strings)


class Compiler:
    """One toolchain invocation context."""

    def __init__(self, architecture: Architecture, provider: FileProvider,
                 config_macros: dict[str, str] | None = None) -> None:
        self.architecture = architecture
        self._provider = provider
        self._config_macros = dict(config_macros or {})

    def preprocess(self, path: str) -> PreprocessResult:
        """``make file.i``: may fail on missing headers or bad directives."""
        predefined = self.architecture.predefines()
        predefined.update(self._config_macros)
        preprocessor = Preprocessor(
            self._provider,
            include_paths=list(self.architecture.include_roots),
            predefined=predefined,
        )
        return preprocessor.preprocess(path)

    def lex(self, path: str) -> LexResult:
        """Preprocess then lex; the token stream with positions."""
        result = self.preprocess(path)
        return lex_translation_unit(result.text, main_file=path)

    def compile_object(self, path: str,
                       preprocessed: PreprocessResult | None = None
                       ) -> ObjectFile:
        """``make file.o``: raises :class:`CompileError` on any diagnostic.

        ``preprocessed`` lets a caller that already holds the unit's
        ``.i`` result (e.g. the build cache) skip re-preprocessing; it
        must come from this compiler's exact environment.
        """
        try:
            if preprocessed is None:
                preprocessed = self.preprocess(path)
        except PreprocessorError as error:
            raise CompileError(str(error), [Diagnostic(
                file=error.file or path, line=error.line or 0,
                message=str(error))]) from error
        lexed = lex_translation_unit(preprocessed.text, main_file=path)

        diagnostics = [
            Diagnostic(file=stray.file, line=stray.line,
                       message=f"stray {stray.token.text!r} in program")
            for stray in lexed.stray_characters
        ]
        if diagnostics:
            raise CompileError(
                f"{path}: {len(diagnostics)} stray-character error(s)",
                diagnostics)

        outcome = validate_unit(lexed)
        if not outcome.ok:
            diagnostics = [Diagnostic(file=issue.file, line=issue.line,
                                      message=issue.message)
                           for issue in outcome.issues]
            raise CompileError(f"{path}: syntax errors", diagnostics)

        from repro.cpp.lexer import TokenKind
        strings = [lexed_token.token.text[1:-1]
                   for lexed_token in lexed.tokens
                   if lexed_token.token.kind is TokenKind.STRING]
        return ObjectFile(
            source=path,
            architecture=self.architecture.name,
            symbols=outcome.symbols,
            token_count=len(lexed.tokens),
            strings=strings,
            references=outcome.external_calls,
        )
