"""The §IV janitor-identification materialized view.

Tables I–II of the paper rank developers by how uniformly their patches
spread across files: janitors touch many files about once each (low
coefficient of variation of per-file patch counts), maintainers hammer
a few files (high cv). :class:`~repro.janitors.activity.ActivityAnalyzer`
computes this by walking a repository log; fleet mode cannot afford a
full rewalk per ingested batch, so the store keeps the two §IV
aggregates *materialized*:

- ``author_files`` — per (author, path): how many of the author's
  stored patches touched the path (the cv's underlying counts);
- ``janitor_view`` — per author: patch/verdict tallies, distinct-file
  count, and ``file_cv`` (population std / mean, exactly the
  :attr:`DeveloperActivity.file_cv` formula).

Refresh is incremental: an ingest batch bumps ``author_files`` for the
records it landed and recomputes ``janitor_view`` rows only for the
authors it touched, inside the same transaction as the facts — the view
can never be observed ahead of or behind the verdicts it summarizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class JanitorViewCriteria:
    """Cutoffs for :func:`janitor_rows` (Table I, store-local)."""
    #: minimum stored patches before an author is rankable
    min_patches: int = 3
    #: minimum distinct files touched
    min_files: int = 2
    #: rows returned (ascending file_cv — most janitor-like first)
    top_n: int = 10


@dataclass(frozen=True)
class JanitorViewRow:
    """One ranked author from the materialized view."""
    email: str
    name: str | None
    patches: int
    certified: int
    partial: int
    attention: int
    files: int
    file_cv: float


def apply_batch(conn, records: "list[dict]") -> int:
    """Fold one ingested batch into the view (same transaction).

    ``records`` are the migrated records that actually landed (dups
    excluded). Returns the number of authors whose rows were
    recomputed.
    """
    touched: set[str] = set()
    for record in records:
        author = record.get("author")
        if not author or not author.get("email"):
            continue
        email = author["email"]
        touched.add(email)
        for path in record["files"]:
            conn.execute(
                "INSERT INTO author_files (email, path, patches) "
                "VALUES (?, ?, 1) "
                "ON CONFLICT(email, path) DO UPDATE "
                "SET patches = patches + 1",
                (email, path))
    for email in sorted(touched):
        _recompute_author(conn, email)
    return len(touched)


def _recompute_author(conn, email: str) -> None:
    """Rebuild one author's ``janitor_view`` row from the fact tables."""
    patches, certified, partial, attention, name = conn.execute(
        "SELECT COUNT(*), "
        "COALESCE(SUM(CASE WHEN verdict = 'CERTIFIED' "
        "    THEN 1 ELSE 0 END), 0), "
        "COALESCE(SUM(CASE WHEN verdict LIKE 'PARTIAL:%' "
        "    THEN 1 ELSE 0 END), 0), "
        "COALESCE(SUM(CASE WHEN verdict = 'ATTENTION REQUIRED' "
        "    THEN 1 ELSE 0 END), 0), "
        "MAX(author_name) "
        "FROM verdicts WHERE author_email = ?", (email,)).fetchone()
    counts = [row[0] for row in conn.execute(
        "SELECT patches FROM author_files WHERE email = ?", (email,))]
    conn.execute(
        "INSERT OR REPLACE INTO janitor_view "
        "(email, name, patches, certified, partial, attention, files, "
        " file_cv) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        (email, name, patches, certified, partial, attention,
         len(counts), _file_cv(counts)))


def _file_cv(counts: "list[int]") -> float:
    """Population std / mean — the §IV uniformity metric."""
    if not counts:
        return 0.0
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    variance = sum((count - mean) ** 2 for count in counts) / len(counts)
    return math.sqrt(variance) / mean


def janitor_rows(conn, criteria: JanitorViewCriteria | None = None
                 ) -> "list[JanitorViewRow]":
    """The Table-II ranking: ascending file_cv, email tie-break."""
    criteria = criteria or JanitorViewCriteria()
    rows = conn.execute(
        "SELECT email, name, patches, certified, partial, attention, "
        "files, file_cv FROM janitor_view "
        "WHERE patches >= ? AND files >= ? "
        "ORDER BY file_cv ASC, email ASC LIMIT ?",
        (criteria.min_patches, criteria.min_files,
         criteria.top_n)).fetchall()
    return [JanitorViewRow(email=email, name=name, patches=patches,
                           certified=certified, partial=partial,
                           attention=attention, files=files,
                           file_cv=file_cv)
            for (email, name, patches, certified, partial, attention,
                 files, file_cv) in rows]
