"""WAL → SQLite: the journal-to-store ingest boundary.

Fleet mode has exactly one durability story, told twice:

1. a verdict becomes *durable* the moment the check service's
   ``on_result`` hook emits it into the
   :class:`~repro.journal.ledger.VerdictLedger` (fsync'd, CRC-framed,
   dedup-keyed — PR 5's machinery, unchanged);
2. it becomes *queryable* when an ingest pass replays the ledger into
   the :class:`~repro.store.store.VerdictStore` — one SQLite
   transaction per batch covering the fact rows AND the §IV
   materialized view.

The journal is therefore the store's write-ahead log in the literal
database sense: the store can be deleted and rebuilt from the journal
at any time, and a crash anywhere between the two is harmless —
re-ingest is idempotent because the store dedups on the same commit
key the ledger does. ``identity`` binding is enforced on both sides
(ledger meta == store meta), so a store can never silently swallow a
journal from a different corpus or option set.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one ingest pass (batch or full ledger replay)."""
    #: records that landed as new rows
    ingested: int
    #: records offered to the transaction whose commit was already
    #: stored (a true double-offer inside one batch)
    duplicates: int
    #: authors whose materialized-view rows were recomputed
    authors_refreshed: int
    #: commit ids of the landed records, in ingest order
    commits: tuple = ()
    #: ledger records skipped up front because the store already held
    #: them — the expected case on every replay after the first
    skipped_stored: int = 0

    def merged(self, other: "IngestResult") -> "IngestResult":
        """Fold two passes' tallies together."""
        return IngestResult(
            ingested=self.ingested + other.ingested,
            duplicates=self.duplicates + other.duplicates,
            authors_refreshed=self.authors_refreshed
            + other.authors_refreshed,
            commits=self.commits + other.commits,
            skipped_stored=self.skipped_stored + other.skipped_stored)


def ingest_ledger(store, ledger) -> IngestResult:
    """Replay every ledger record into the store, one transaction.

    Binds the ledger's run identity onto the store first (refusing a
    mismatch), then lands all records the store does not yet have.
    Duplicate keys are the *expected* case on resume — the journal
    holds everything ever checked, the store holds everything ever
    ingested, and the difference is exactly the crash window.
    """
    if ledger.meta is not None:
        store.bind_meta(ledger.meta)
    keys = ledger.keys()
    pending = [key for key in keys if not store.has(key)]
    result = store.ingest_batch([ledger.get(key) for key in pending])
    store.set_lag(0)
    return dataclasses.replace(
        result, skipped_stored=len(keys) - len(pending))
