"""The verdict store's relational schema and canonical row derivation.

One store = one SQLite database holding every verdict a fleet has ever
computed, fed transactionally from the write-ahead journal (see
:mod:`repro.store.ingest`). Three families of tables:

- ``meta`` — key/value: the store schema version and the bound run
  identity (the same ``meta`` record the journal carries, so a store
  refuses to ingest someone else's journal);
- ``verdicts`` / ``file_verdicts`` — the fact tables: one row per
  commit, one row per (commit, file, arch, config) trial, plus the
  full canonical ``schema_version=4`` record as sorted-key JSON so
  nothing ``to_dict`` carries is ever lost to the relational shredding;
- ``author_files`` / ``janitor_view`` — the §IV janitor-identification
  materialized view (:mod:`repro.store.matview`).

Row derivation is deliberately total: a record whose file entry carries
``attempts`` yields one row per distinct (arch, config) with the trial
outcomes OR-merged; a pre-v4 entry without attempts falls back to one
row per useful architecture (config unknown, spelled ``""``), and a
file nothing compiled still gets a single ``("", "")`` row so the file
and its status are queryable at all.
"""

from __future__ import annotations

import json

from repro.errors import StoreError

#: version of the relational layout (bump on any DDL change; the store
#: refuses to open a database written by a different layout)
STORE_SCHEMA_VERSION = 1

DDL = (
    """CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL)""",
    """CREATE TABLE IF NOT EXISTS verdicts (
        commit_id TEXT PRIMARY KEY,
        seq INTEGER NOT NULL,
        verdict TEXT NOT NULL,
        certified INTEGER NOT NULL,
        fully_checked INTEGER NOT NULL,
        elapsed_seconds REAL NOT NULL,
        author_name TEXT,
        author_email TEXT,
        record TEXT NOT NULL)""",
    """CREATE TABLE IF NOT EXISTS file_verdicts (
        commit_id TEXT NOT NULL,
        path TEXT NOT NULL,
        arch TEXT NOT NULL,
        config TEXT NOT NULL,
        status TEXT NOT NULL,
        i_ok INTEGER NOT NULL,
        o_ok INTEGER NOT NULL,
        PRIMARY KEY (commit_id, path, arch, config))""",
    """CREATE TABLE IF NOT EXISTS author_files (
        email TEXT NOT NULL,
        path TEXT NOT NULL,
        patches INTEGER NOT NULL,
        PRIMARY KEY (email, path))""",
    """CREATE TABLE IF NOT EXISTS janitor_view (
        email TEXT PRIMARY KEY,
        name TEXT,
        patches INTEGER NOT NULL,
        certified INTEGER NOT NULL,
        partial INTEGER NOT NULL,
        attention INTEGER NOT NULL,
        files INTEGER NOT NULL,
        file_cv REAL NOT NULL)""",
    """CREATE INDEX IF NOT EXISTS idx_file_verdicts_path
        ON file_verdicts (path)""",
    """CREATE INDEX IF NOT EXISTS idx_file_verdicts_arch
        ON file_verdicts (arch)""",
    """CREATE INDEX IF NOT EXISTS idx_verdicts_author
        ON verdicts (author_email)""",
)


def apply_schema(conn) -> None:
    """Create (or verify) the relational layout on ``conn``."""
    for statement in DDL:
        conn.execute(statement)
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'store_schema'").fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('store_schema', ?)",
            (str(STORE_SCHEMA_VERSION),))
        return
    found = row[0]
    if found != str(STORE_SCHEMA_VERSION):
        raise StoreError(
            f"store has layout version {found}, this build speaks "
            f"{STORE_SCHEMA_VERSION}; refusing to mix layouts")


def canonical_json(record: dict) -> str:
    """The byte-deterministic serialization of a canonical record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def file_rows(path: str, entry: dict) -> list[tuple]:
    """Shred one migrated file entry into ``file_verdicts`` rows.

    Returns ``(path, arch, config, status, i_ok, o_ok)`` tuples sorted
    by (arch, config) so row order never depends on attempt order.
    Repeated trials of the same (arch, config) pair (retries) are
    OR-merged: the pair compiled if any trial did.
    """
    status = entry["status"]
    merged: dict[tuple[str, str], list[int]] = {}
    for attempt in entry.get("attempts", []):
        key = (attempt["arch"], attempt["config"])
        flags = merged.setdefault(key, [0, 0])
        flags[0] |= int(bool(attempt["i_ok"]))
        flags[1] |= int(bool(attempt["o_ok"]))
    if not merged:
        # pre-v4 records carry no attempts; the useful architectures
        # are the only per-arch facts available (config unknown)
        for arch in entry.get("useful_archs", []):
            merged[(arch, "")] = [1, 1]
    if not merged:
        merged[("", "")] = [0, 0]
    return [(path, arch, config, status, flags[0], flags[1])
            for (arch, config), flags in sorted(merged.items())]


def record_rows(record: dict) -> list[tuple]:
    """All ``file_verdicts`` rows of one migrated record, path-sorted."""
    rows: list[tuple] = []
    for path in sorted(record["files"]):
        rows.extend(file_rows(path, record["files"][path]))
    return rows
