"""The persistent, queryable verdict store (fleet mode's memory).

A :class:`VerdictStore` is an SQLite database of every verdict a fleet
has computed, fed transactionally from the write-ahead journal (the
journal *is* the store's WAL: verdicts become durable in the journal
first, and ingest replays them into relational form — see
:mod:`repro.store.ingest` for the transaction boundary). Records are
migrated to the current ``schema_version`` on the way in, shredded
into per-(commit, file, arch, config) rows, and kept whole as
sorted-key canonical JSON, so a store answers both "was this commit
checked" and "show me every mips verdict for this file" without any
preprocess or compile work.

Durability split: the journal owns crash-safety (fsync discipline,
torn-tail recovery), the store owns queryability. A crash between
journal append and store ingest loses nothing — the next ingest pass
replays the journal and the primary-key dedup makes re-ingest a no-op
— which is what makes kill-and-resume of ``jmake watch`` byte-identical
to an uninterrupted run (:meth:`VerdictStore.canonical_dump` is the
proof format CI diffs).
"""

from __future__ import annotations

import os
import sqlite3

from repro.core.report import migrate_record
from repro.errors import SchemaError, StoreError
from repro.obs.events import (
    EVENT_INGEST_BATCH,
    EVENT_INGEST_MATVIEW,
    EVENT_INGEST_SCHEMA_ERROR,
    EVENT_STORE_COMPACTED,
    NULL_EVENTS,
)
from repro.obs.logcfg import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.store import matview
from repro.store.ingest import IngestResult, ingest_ledger
from repro.store.matview import JanitorViewCriteria, JanitorViewRow
from repro.store.query import (
    StoredVerdict,
    VerdictFilter,
    filter_from_kwargs,
    stored_verdict_from_row,
)
from repro.store.schema import (
    apply_schema,
    canonical_json,
    record_rows,
)

_logger = get_logger("store")


class VerdictStore:
    """Durable ``commit -> verdict`` facts with a typed query surface."""

    def __init__(self, path: str = ":memory:", *,
                 metrics=None, events=None) -> None:
        self.path = path
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.events = events if events is not None else NULL_EVENTS
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        try:
            self._conn = sqlite3.connect(path)
            # explicit BEGIN/COMMIT: the ingest batch is the one and
            # only transaction boundary, never the driver's autocommit
            self._conn.isolation_level = None
            apply_schema(self._conn)
        except sqlite3.DatabaseError as error:
            raise StoreError(
                f"cannot open verdict store {path}: {error}") from error
        self.ingested = 0
        self.duplicates = 0
        self.batches = 0
        self.queries = 0
        self.schema_errors = 0
        self._set_size_gauges()

    # -- identity guard --------------------------------------------------------

    @property
    def meta(self) -> dict | None:
        """The bound run identity (None until first bind)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'run_meta'").fetchone()
        if row is None:
            return None
        import json
        return json.loads(row[0])

    def bind_meta(self, meta: dict) -> None:
        """Bind (or verify) the run identity, mirroring the journal's
        :meth:`~repro.journal.ledger.VerdictLedger.bind_meta` guard —
        a store never ingests a journal from a different run."""
        import json
        existing = self.meta
        if existing is not None:
            if existing != meta:
                raise StoreError(
                    f"store {self.path} belongs to a different run: "
                    f"store meta {existing!r} != current {meta!r} "
                    f"(use a fresh store path)")
            return
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES ('run_meta', ?)",
            (json.dumps(meta, sort_keys=True),))

    # -- membership ------------------------------------------------------------

    def __len__(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM verdicts").fetchone()[0]

    def __contains__(self, commit_id: str) -> bool:
        return self.has(commit_id)

    def has(self, commit_id: str) -> bool:
        """True when a verdict for ``commit_id`` is already stored."""
        return self._conn.execute(
            "SELECT 1 FROM verdicts WHERE commit_id = ?",
            (commit_id,)).fetchone() is not None

    def get(self, commit_id: str) -> dict | None:
        """The full canonical record for one commit (None when absent)."""
        import json
        row = self._conn.execute(
            "SELECT record FROM verdicts WHERE commit_id = ?",
            (commit_id,)).fetchone()
        return None if row is None else json.loads(row[0])

    # -- ingest ----------------------------------------------------------------

    def ingest(self, record: dict) -> bool:
        """Ingest one record; True when it landed, False on duplicate."""
        result = self.ingest_batch([record])
        return result.ingested == 1

    def ingest_batch(self, records) -> IngestResult:
        """Land a batch of records in ONE transaction.

        Every record is migrated to the current ``schema_version``
        first (:class:`~repro.errors.SchemaError` rolls the whole batch
        back — a poisoned journal never half-lands). Duplicate commits
        are skipped via the primary key, which is what makes re-ingest
        after a crash idempotent. The §IV materialized view is folded
        in *inside the same transaction*, so readers can never see
        facts the view does not yet summarize.
        """
        landed: list[dict] = []
        duplicates = 0
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            next_seq = conn.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 "
                "FROM verdicts").fetchone()[0]
            for record in records:
                try:
                    migrated = migrate_record(record)
                except SchemaError as error:
                    self.schema_errors += 1
                    self.metrics.counter("store.schema_errors").inc()
                    self.events.emit(
                        EVENT_INGEST_SCHEMA_ERROR,
                        request_id=record.get("commit")
                        if isinstance(record, dict) else None,
                        error=str(error))
                    raise
                commit_id = migrated["commit"]
                author = migrated.get("author") or {}
                cursor = conn.execute(
                    "INSERT INTO verdicts (commit_id, seq, verdict, "
                    "certified, fully_checked, elapsed_seconds, "
                    "author_name, author_email, record) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT(commit_id) DO NOTHING",
                    (commit_id, next_seq, migrated["verdict"],
                     int(bool(migrated["certified"])),
                     int(bool(migrated["fully_checked"])),
                     float(migrated.get("elapsed_seconds", 0.0)),
                     author.get("name"), author.get("email"),
                     canonical_json(migrated)))
                if cursor.rowcount == 0:
                    duplicates += 1
                    continue
                next_seq += 1
                for (path, arch, config, status, i_ok, o_ok) in \
                        record_rows(migrated):
                    conn.execute(
                        "INSERT INTO file_verdicts (commit_id, path, "
                        "arch, config, status, i_ok, o_ok) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (commit_id, path, arch, config, status,
                         i_ok, o_ok))
                landed.append(migrated)
            authors = matview.apply_batch(conn, landed)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self.ingested += len(landed)
        self.duplicates += duplicates
        self.batches += 1
        self.metrics.counter("store.ingested").inc(len(landed))
        self.metrics.counter("store.duplicates").inc(duplicates)
        self.metrics.counter("store.batches").inc()
        self._set_size_gauges()
        self.events.emit(EVENT_INGEST_BATCH, records=len(landed),
                         duplicates=duplicates, batch=self.batches)
        if authors:
            self.events.emit(EVENT_INGEST_MATVIEW, authors=authors)
        if landed or duplicates:
            _logger.debug("store %s: batch #%d landed %d record(s), "
                          "%d duplicate(s)", self.path, self.batches,
                          len(landed), duplicates)
        return IngestResult(ingested=len(landed), duplicates=duplicates,
                            authors_refreshed=authors,
                            commits=tuple(record["commit"]
                                          for record in landed))

    def ingest_ledger(self, ledger) -> IngestResult:
        """Replay a verdict ledger (the WAL) into the store."""
        return ingest_ledger(self, ledger)

    # -- retention -------------------------------------------------------------

    def compact(self, retain: int) -> dict:
        """Prune all but the newest ``retain`` verdicts, then vacuum.

        "Newest" is ingest order (the monotone ``seq`` column), so a
        long-running fleet keeps a sliding window of recent verdicts
        and sheds the tail. One transaction covers the verdict rows,
        their per-file rows, and a *from-scratch rebuild* of the §IV
        janitor materialized view over the survivors — a reader can
        never observe a view that still summarizes pruned commits.
        ``VACUUM`` (which cannot run inside a transaction) then
        returns the freed pages to the filesystem.

        Returns ``{"kept", "pruned", "file_rows_pruned"}``.
        """
        import json
        if isinstance(retain, bool) or not isinstance(retain, int):
            raise StoreError(
                f"retain must be a non-negative integer, "
                f"got {retain!r}")
        if retain < 0:
            raise StoreError(
                f"retain must be a non-negative integer, "
                f"got {retain!r}")
        conn = self._conn
        file_rows_before = self._count("file_verdicts")
        conn.execute("BEGIN IMMEDIATE")
        try:
            victims = [row[0] for row in conn.execute(
                "SELECT commit_id FROM verdicts "
                "ORDER BY seq DESC LIMIT -1 OFFSET ?", (retain,))]
            for commit_id in victims:
                conn.execute(
                    "DELETE FROM file_verdicts WHERE commit_id = ?",
                    (commit_id,))
                conn.execute(
                    "DELETE FROM verdicts WHERE commit_id = ?",
                    (commit_id,))
            # rebuild the matview over the survivors only, inside the
            # same transaction as the deletes
            conn.execute("DELETE FROM author_files")
            conn.execute("DELETE FROM janitor_view")
            survivors = [json.loads(row[0]) for row in conn.execute(
                "SELECT record FROM verdicts ORDER BY seq")]
            matview.apply_batch(conn, survivors)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("VACUUM")
        kept = len(self)
        file_rows_pruned = file_rows_before \
            - self._count("file_verdicts")
        self._set_size_gauges()
        self.metrics.counter("store.compactions").inc()
        self.metrics.counter("store.pruned").inc(len(victims))
        self.events.emit(EVENT_STORE_COMPACTED, kept=kept,
                         pruned=len(victims), retain=retain)
        _logger.info("store %s: compacted to %d verdict(s) "
                     "(%d pruned, %d file row(s) dropped)", self.path,
                     kept, len(victims), file_rows_pruned)
        return {"kept": kept, "pruned": len(victims),
                "file_rows_pruned": file_rows_pruned}

    # -- queries ---------------------------------------------------------------

    def query(self, filter: VerdictFilter | None = None,
              **kwargs) -> list[StoredVerdict]:
        """Answer a typed filter; pure read, never compiles anything."""
        resolved = filter_from_kwargs(filter, **kwargs)
        where, params = resolved.sql()
        sql = ("SELECT commit_id, verdict, certified, fully_checked, "
               "elapsed_seconds, author_name, author_email, record "
               "FROM verdicts v" + where + " ORDER BY v.commit_id")
        if resolved.limit is not None:
            sql += " LIMIT ?"
            params = params + [resolved.limit]
        self.queries += 1
        self.metrics.counter("store.queries").inc()
        results = []
        for row in self._conn.execute(sql, params).fetchall():
            file_rows = self._conn.execute(
                "SELECT path, arch, config, status, i_ok, o_ok "
                "FROM file_verdicts WHERE commit_id = ? "
                "ORDER BY path, arch, config", (row[0],)).fetchall()
            results.append(stored_verdict_from_row(row, file_rows))
        self.metrics.counter("store.query_rows").inc(len(results))
        return results

    def janitor_report(self, criteria: JanitorViewCriteria | None = None
                       ) -> list[JanitorViewRow]:
        """The §IV Table-II ranking from the materialized view."""
        self.queries += 1
        self.metrics.counter("store.queries").inc()
        return matview.janitor_rows(self._conn, criteria)

    # -- canonical dump --------------------------------------------------------

    def canonical_dump(self) -> str:
        """Byte-deterministic dump of every stored fact.

        Sorted by commit / path / arch / config / author email and
        independent of ingest order and batching, so two stores built
        from the same verdicts — one uninterrupted, one killed and
        resumed — dump identical bytes. CI diffs exactly this.
        """
        lines = [f"verdict-store canonical dump",
                 f"verdicts={len(self)} file_rows="
                 f"{self._count('file_verdicts')}"]
        for row in self._conn.execute(
                "SELECT commit_id, record FROM verdicts "
                "ORDER BY commit_id"):
            lines.append(f"verdict {row[0]} {row[1]}")
            for (path, arch, config, status, i_ok, o_ok) in \
                    self._conn.execute(
                        "SELECT path, arch, config, status, i_ok, o_ok "
                        "FROM file_verdicts WHERE commit_id = ? "
                        "ORDER BY path, arch, config", (row[0],)):
                lines.append(
                    f"  file {path} arch={arch or '-'} "
                    f"config={config or '-'} status={status} "
                    f"i_ok={i_ok} o_ok={o_ok}")
        for jrow in matview.janitor_rows(
                self._conn, JanitorViewCriteria(min_patches=1,
                                                min_files=1,
                                                top_n=1 << 30)):
            lines.append(
                f"janitor {jrow.email} patches={jrow.patches} "
                f"certified={jrow.certified} partial={jrow.partial} "
                f"attention={jrow.attention} files={jrow.files} "
                f"file_cv={jrow.file_cv!r}")
        return "\n".join(lines) + "\n"

    # -- telemetry -------------------------------------------------------------

    def _count(self, table: str) -> int:
        return self._conn.execute(
            f"SELECT COUNT(*) FROM {table}").fetchone()[0]

    def _set_size_gauges(self) -> None:
        self.metrics.gauge("store.verdicts").set(self._count("verdicts"))
        self.metrics.gauge("store.file_rows").set(
            self._count("file_verdicts"))

    def set_lag(self, lag: int) -> None:
        """Publish ingest lag (journaled but not yet stored verdicts)."""
        self.metrics.gauge("store.lag").set(lag)

    def stats(self) -> dict:
        """Store telemetry for ``--stats-out``, ``jmake query``, tests."""
        return {
            "path": self.path,
            "verdicts": len(self),
            "file_rows": self._count("file_verdicts"),
            "authors": self._count("janitor_view"),
            "ingested": self.ingested,
            "duplicates": self.duplicates,
            "batches": self.batches,
            "queries": self.queries,
            "schema_errors": self.schema_errors,
        }

    def close(self) -> None:
        """Close the database handle."""
        self._conn.close()

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
