"""Typed query surface over the verdict store.

:class:`VerdictFilter` is the one way to ask the store questions: a
frozen dataclass whose fields map one-to-one onto indexed columns, so
every programmatic caller (``repro.api.query_verdicts``, ``jmake
query``, the tests) speaks the same vocabulary and gets the same
validation. Commit-level predicates constrain the ``verdicts`` table
directly; file-level predicates (``path``/``arch``/``config``/
``status``) constrain via an EXISTS over ``file_verdicts``, and the
matched commits come back whole — a :class:`StoredVerdict` always
carries *all* of its file rows, because a verdict is only meaningful
as a unit.

Queries are pure reads: answering one never triggers preprocessing or
compilation, which is the entire point of keeping the store around.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

from repro.errors import StoreError

#: verdict-kind shorthand: ``"PARTIAL"`` matches any quarantine verdict
#: by prefix, the other two match exactly
VERDICT_KINDS = ("CERTIFIED", "ATTENTION REQUIRED", "PARTIAL")


@dataclass(frozen=True)
class FileVerdictRow:
    """One (commit, file, arch, config) compilation fact."""
    commit: str
    path: str
    arch: str
    config: str
    status: str
    i_ok: bool
    o_ok: bool


@dataclass(frozen=True)
class StoredVerdict:
    """One commit's stored verdict plus its file rows."""
    commit: str
    verdict: str
    certified: bool
    fully_checked: bool
    elapsed_seconds: float
    author_name: str | None
    author_email: str | None
    #: the full canonical ``schema_version=4`` record
    record: dict
    files: tuple[FileVerdictRow, ...] = field(default_factory=tuple)

    @property
    def partial(self) -> bool:
        """True for quarantine (``PARTIAL:<archs>``) verdicts."""
        return self.verdict.startswith("PARTIAL:")


@dataclass(frozen=True)
class VerdictFilter:
    """Typed predicates for :meth:`VerdictStore.query`.

    All fields are ANDed; ``None`` means "don't constrain". ``verdict``
    accepts the three kinds in :data:`VERDICT_KINDS` (``"PARTIAL"``
    matches by prefix) or an exact ``PARTIAL:<archs>`` string.
    """
    commit: str | None = None
    path: str | None = None
    arch: str | None = None
    config: str | None = None
    status: str | None = None
    verdict: str | None = None
    certified: bool | None = None
    fully_checked: bool | None = None
    author: str | None = None
    limit: int | None = None

    def validate(self) -> None:
        """Raise :class:`~repro.errors.StoreError` on malformed filters."""
        for name in ("commit", "path", "arch", "config", "status",
                     "verdict", "author"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise StoreError(
                    f"filter {name} must be a string, got {value!r}")
        for name in ("certified", "fully_checked"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, bool):
                raise StoreError(
                    f"filter {name} must be a bool, got {value!r}")
        if self.limit is not None and (
                isinstance(self.limit, bool) or
                not isinstance(self.limit, int) or self.limit < 1):
            raise StoreError(
                f"filter limit must be a positive integer, "
                f"got {self.limit!r}")
        if self.verdict is not None and \
                self.verdict not in VERDICT_KINDS and \
                not self.verdict.startswith("PARTIAL:"):
            raise StoreError(
                f"filter verdict must be one of {VERDICT_KINDS} or an "
                f"exact 'PARTIAL:<archs>' string, got {self.verdict!r}")

    def sql(self) -> tuple[str, list]:
        """The WHERE clause + parameters this filter compiles to."""
        self.validate()
        clauses: list[str] = []
        params: list = []
        if self.commit is not None:
            clauses.append("v.commit_id = ?")
            params.append(self.commit)
        if self.verdict == "PARTIAL":
            clauses.append("v.verdict LIKE 'PARTIAL:%'")
        elif self.verdict is not None:
            clauses.append("v.verdict = ?")
            params.append(self.verdict)
        if self.certified is not None:
            clauses.append("v.certified = ?")
            params.append(int(self.certified))
        if self.fully_checked is not None:
            clauses.append("v.fully_checked = ?")
            params.append(int(self.fully_checked))
        if self.author is not None:
            clauses.append("v.author_email = ?")
            params.append(self.author)
        file_clauses: list[str] = []
        for column in ("path", "arch", "config", "status"):
            value = getattr(self, column)
            if value is not None:
                file_clauses.append(f"f.{column} = ?")
                params.append(value)
        if file_clauses:
            clauses.append(
                "EXISTS (SELECT 1 FROM file_verdicts f "
                "WHERE f.commit_id = v.commit_id AND "
                + " AND ".join(file_clauses) + ")")
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params


def filter_from_kwargs(filter=None, **kwargs) -> VerdictFilter:
    """Accept either a ready filter or loose keyword predicates."""
    if filter is not None:
        if kwargs:
            raise StoreError(
                "pass either a VerdictFilter or keyword predicates, "
                "not both")
        if not isinstance(filter, VerdictFilter):
            raise StoreError(
                f"filter must be a VerdictFilter, got {filter!r}")
        return filter
    known = {f.name for f in fields(VerdictFilter)}
    unknown = set(kwargs) - known
    if unknown:
        raise StoreError(
            f"unknown filter predicate(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})")
    return VerdictFilter(**kwargs)


def stored_verdict_from_row(row, file_rows) -> StoredVerdict:
    """Build a :class:`StoredVerdict` from its table rows."""
    (commit_id, verdict, certified, fully_checked, elapsed,
     author_name, author_email, record_json) = row
    return StoredVerdict(
        commit=commit_id,
        verdict=verdict,
        certified=bool(certified),
        fully_checked=bool(fully_checked),
        elapsed_seconds=elapsed,
        author_name=author_name,
        author_email=author_email,
        record=json.loads(record_json),
        files=tuple(
            FileVerdictRow(commit=commit_id, path=path, arch=arch,
                           config=config, status=status,
                           i_ok=bool(i_ok), o_ok=bool(o_ok))
            for path, arch, config, status, i_ok, o_ok in file_rows),
    )
