"""Fleet mode's persistent verdict store.

Public surface re-exported through :mod:`repro.api` — ``open_store``,
``query_verdicts``, ``janitor_report`` and the typed filter/result
dataclasses. The journal (:mod:`repro.journal`) is the store's WAL;
:mod:`repro.store.ingest` documents the transaction boundary.
"""

from repro.store.ingest import IngestResult, ingest_ledger
from repro.store.matview import JanitorViewCriteria, JanitorViewRow
from repro.store.query import (
    VERDICT_KINDS,
    FileVerdictRow,
    StoredVerdict,
    VerdictFilter,
)
from repro.store.schema import STORE_SCHEMA_VERSION
from repro.store.store import VerdictStore

__all__ = [
    "STORE_SCHEMA_VERSION",
    "VERDICT_KINDS",
    "FileVerdictRow",
    "IngestResult",
    "JanitorViewCriteria",
    "JanitorViewRow",
    "StoredVerdict",
    "VerdictFilter",
    "VerdictStore",
    "ingest_ledger",
]
