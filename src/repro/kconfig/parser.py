"""Parser for the Kconfig language subset.

Grammar handled (one construct per line, tab- or space-indented
attributes, as the kernel writes them)::

    mainmenu "..."                  # ignored
    menu "..." / endmenu            # grouping only
    comment "..."                   # ignored
    source "path/Kconfig"           # recursive inclusion via the provider
    config NAME
        bool "prompt"               # or: tristate/int/string, prompt optional
        depends on EXPR
        select OTHER [if EXPR]      # the guard is honoured
        default y [if EXPR] / default "val"
        help                        # free text until dedent
    choice [NAME]
        prompt "..."
        config ... (members)
    endchoice

Dependency expressions support ``&&  ||  !  ()`` and the constants
``y m n``. Comparisons (``=`` / ``!=``) appear rarely in the kernel's
tree; they are parsed and reduced to constants when both sides are
literal, otherwise treated as symbol tests.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.errors import KconfigError
from repro.kconfig.ast import (
    AndExpr,
    ConfigSymbol,
    ConstExpr,
    Expr,
    NotExpr,
    OrExpr,
    SymbolRef,
    SymbolType,
    Tristate,
)

FileProvider = Callable[[str], "str | None"]

_CONFIG_RE = re.compile(r"^(?:menu)?config\s+([A-Za-z0-9_]+)\s*$")
_IF_RE = re.compile(r"^if\s+(.+)$")
_RANGE_RE = re.compile(r"^range\s+(\S+)\s+(\S+)\s*$")
_CHOICE_RE = re.compile(r"^choice(?:\s+([A-Za-z0-9_]+))?\s*$")
_SOURCE_RE = re.compile(r'^source\s+"([^"]+)"\s*$')
_TYPE_RE = re.compile(
    r'^(bool|tristate|int|string)(?:\s+"([^"]*)")?\s*$')
_DEPENDS_RE = re.compile(r"^depends on\s+(.+)$")
_SELECT_RE = re.compile(r"^select\s+([A-Za-z0-9_]+)(?:\s+if\s+(.+))?$")
_DEFAULT_RE = re.compile(r"^default\s+(.+?)(?:\s+if\s+(.+))?$")
_PROMPT_RE = re.compile(r'^prompt\s+"([^"]*)"\s*$')


def parse_kconfig(text: str, *, path: str = "Kconfig",
                  provider: FileProvider | None = None,
                  _depth: int = 0) -> list[ConfigSymbol]:
    """Parse Kconfig text into symbols, following ``source`` directives."""
    if _depth > 40:
        raise KconfigError(f"{path}: source inclusion too deep")
    symbols: list[ConfigSymbol] = []
    current: ConfigSymbol | None = None
    choice_stack: list[str] = []
    if_stack: list[Expr] = []   # `if EXPR ... endif` dependency wrappers
    choice_counter = 0
    in_help = False
    help_indent: int | None = None

    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip()
        stripped = line.strip()

        if in_help:
            if not stripped:
                continue
            indent = len(line) - len(line.lstrip())
            if help_indent is None:
                help_indent = indent
            if indent >= help_indent and current is not None:
                current.help_text += stripped + "\n"
                continue
            in_help = False
            help_indent = None
            # fall through: this line is a new construct

        if not stripped or stripped.startswith("#"):
            continue

        match = _CONFIG_RE.match(stripped)
        if match:
            current = ConfigSymbol(
                name=match.group(1), source_file=path,
                choice_group=choice_stack[-1] if choice_stack else None)
            for wrapper in if_stack:
                current.depends_on = wrapper if current.depends_on is None \
                    else AndExpr(current.depends_on, wrapper)
            symbols.append(current)
            continue

        match = _IF_RE.match(stripped)
        if match and not stripped.startswith("ifdef"):
            if_stack.append(parse_expr(match.group(1), path=path,
                                       line=lineno))
            current = None
            continue
        if stripped == "endif":
            if not if_stack:
                raise KconfigError(f"{path}:{lineno}: endif without if")
            if_stack.pop()
            current = None
            continue

        match = _CHOICE_RE.match(stripped)
        if match:
            choice_counter += 1
            name = match.group(1) or f"<choice:{path}:{choice_counter}>"
            choice_stack.append(name)
            current = None
            continue
        if stripped == "endchoice":
            if not choice_stack:
                raise KconfigError(f"{path}:{lineno}: endchoice without choice")
            choice_stack.pop()
            current = None
            continue

        match = _SOURCE_RE.match(stripped)
        if match:
            target = match.group(1)
            if provider is None:
                raise KconfigError(
                    f"{path}:{lineno}: source directive without a provider")
            sub_text = provider(target)
            if sub_text is None:
                raise KconfigError(f"{path}:{lineno}: cannot source {target}")
            symbols.extend(parse_kconfig(sub_text, path=target,
                                         provider=provider,
                                         _depth=_depth + 1))
            current = None
            continue

        if stripped.startswith(("mainmenu", "menu ", "comment ")) or \
                stripped in ("endmenu", "menu"):
            current = None
            continue

        # Attribute lines require a current config entry (or are a choice
        # prompt, which we ignore for solving purposes).
        if current is None:
            if _PROMPT_RE.match(stripped) or _TYPE_RE.match(stripped) or \
                    _DEPENDS_RE.match(stripped) or _DEFAULT_RE.match(stripped):
                continue  # choice-level attribute
            raise KconfigError(
                f"{path}:{lineno}: unexpected line {stripped!r}")

        match = _TYPE_RE.match(stripped)
        if match:
            current.type = SymbolType(match.group(1))
            if match.group(2) is not None:
                current.prompt = match.group(2)
            continue
        match = _PROMPT_RE.match(stripped)
        if match:
            current.prompt = match.group(1)
            continue
        match = _DEPENDS_RE.match(stripped)
        if match:
            new_dep = parse_expr(match.group(1), path=path, line=lineno)
            if current.depends_on is None:
                current.depends_on = new_dep
            else:
                current.depends_on = AndExpr(current.depends_on, new_dep)
            continue
        match = _SELECT_RE.match(stripped)
        if match:
            # A guarded select is modelled as unconditional for solving;
            # the guard symbol is recorded as a dependency of the select.
            current.selects.append(match.group(1))
            continue
        match = _DEFAULT_RE.match(stripped)
        if match:
            value, guard = match.group(1).strip(), match.group(2)
            if current.type in (SymbolType.INT, SymbolType.STRING):
                current.default_value = value.strip('"')
            else:
                default_expr = parse_expr(value, path=path, line=lineno)
                if guard:
                    default_expr = AndExpr(
                        default_expr, parse_expr(guard, path=path, line=lineno))
                current.default = default_expr
            continue
        match = _RANGE_RE.match(stripped)
        if match:
            current.value_range = (match.group(1), match.group(2))
            continue
        if stripped == "help" or stripped == "---help---":
            in_help = True
            help_indent = None
            continue
        raise KconfigError(f"{path}:{lineno}: unknown attribute {stripped!r}")

    if choice_stack:
        raise KconfigError(f"{path}: unterminated choice block")
    if if_stack:
        raise KconfigError(f"{path}: unterminated if block")
    return symbols


# -- expression parsing ----------------------------------------------------

_EXPR_TOKEN_RE = re.compile(
    r"\s*(\(|\)|&&|\|\||!=|!|=|[A-Za-z0-9_]+|\"[^\"]*\")")


def parse_expr(text: str, *, path: str = "<expr>", line: int = 0) -> Expr:
    """Parse a Kconfig dependency expression."""
    tokens = _tokenize_expr(text, path=path, line=line)
    parser = _ExprParser(tokens, path=path, line=line, source=text)
    return parser.parse()


def _tokenize_expr(text: str, *, path: str, line: int) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _EXPR_TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip():
                raise KconfigError(
                    f"{path}:{line}: bad expression {text!r}")
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _ExprParser:
    def __init__(self, tokens: list[str], *, path: str, line: int,
                 source: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._where = f"{path}:{line}"
        self._source = source

    def parse(self) -> Expr:
        if not self._tokens:
            raise KconfigError(f"{self._where}: empty expression")
        expr = self._or()
        if self._pos != len(self._tokens):
            raise KconfigError(
                f"{self._where}: trailing tokens in {self._source!r}")
        return expr

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) \
            else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise KconfigError(
                f"{self._where}: unexpected end of {self._source!r}")
        self._pos += 1
        return token

    def _or(self) -> Expr:
        expr = self._and()
        while self._peek() == "||":
            self._next()
            expr = OrExpr(expr, self._and())
        return expr

    def _and(self) -> Expr:
        expr = self._comparison()
        while self._peek() == "&&":
            self._next()
            expr = AndExpr(expr, self._comparison())
        return expr

    def _comparison(self) -> Expr:
        left = self._unary()
        operator = self._peek()
        if operator in ("=", "!="):
            self._next()
            right = self._unary()
            return self._reduce_comparison(left, operator, right)
        return left

    @staticmethod
    def _reduce_comparison(left: Expr, operator: str, right: Expr) -> Expr:
        """``SYM = y`` tests the symbol; literal = literal folds."""
        def as_const(expr: Expr) -> Tristate | None:
            return expr.value if isinstance(expr, ConstExpr) else None

        left_const, right_const = as_const(left), as_const(right)
        if left_const is not None and right_const is not None:
            equal = left_const == right_const
            result = equal if operator == "=" else not equal
            return ConstExpr(Tristate.Y if result else Tristate.N)
        symbol = left if isinstance(left, SymbolRef) else right
        literal = right_const if right_const is not None else left_const
        if not isinstance(symbol, SymbolRef) or literal is None:
            # Symbol-to-symbol comparison: approximate as AND of both.
            return AndExpr(left, right)
        test: Expr = symbol
        if literal == Tristate.N:
            test = NotExpr(symbol)
        return test if operator == "=" else NotExpr(test)

    def _unary(self) -> Expr:
        token = self._next()
        if token == "!":
            return NotExpr(self._unary())
        if token == "(":
            expr = self._or()
            if self._next() != ")":
                raise KconfigError(
                    f"{self._where}: missing ')' in {self._source!r}")
            return expr
        if token in ("y", "m", "n"):
            return ConstExpr(Tristate.from_letter(token))
        if token.startswith('"'):
            inner = token.strip('"')
            if inner in ("y", "m", "n"):
                return ConstExpr(Tristate.from_letter(inner))
            return ConstExpr(Tristate.N)
        if re.fullmatch(r"[A-Za-z0-9_]+", token):
            return SymbolRef(token)
        raise KconfigError(
            f"{self._where}: unexpected token {token!r} in "
            f"{self._source!r}")
