"""The configuration model: all symbols of one architecture's Kconfig.

A :class:`ConfigModel` is built from the top-level Kconfig of an
architecture (which sources subsystem Kconfigs). It provides symbol
lookup, choice-group enumeration, and reverse-dependency (select) edges
for the solvers.
"""

from __future__ import annotations

from repro.errors import KconfigError
from repro.kconfig.ast import ConfigSymbol, SymbolType
from repro.kconfig.parser import FileProvider, parse_kconfig


class ConfigModel:
    """All symbols of one architecture's Kconfig, with lookups."""
    def __init__(self, symbols: list[ConfigSymbol]) -> None:
        self._symbols: dict[str, ConfigSymbol] = {}
        for symbol in symbols:
            if symbol.name in self._symbols:
                # Kconfig allows re-declaration; merge attributes from the
                # later entry (kernel practice for arch overrides).
                existing = self._symbols[symbol.name]
                existing.selects.extend(symbol.selects)
                if symbol.depends_on is not None:
                    existing.depends_on = symbol.depends_on \
                        if existing.depends_on is None else existing.depends_on
                if symbol.default is not None and existing.default is None:
                    existing.default = symbol.default
                continue
            self._symbols[symbol.name] = symbol

    @classmethod
    def from_kconfig(cls, text: str, *, path: str = "Kconfig",
                     provider: FileProvider | None = None) -> "ConfigModel":
        """Parse Kconfig text (following source directives)."""
        return cls(parse_kconfig(text, path=path, provider=provider))

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __len__(self) -> int:
        return len(self._symbols)

    def get(self, name: str) -> ConfigSymbol:
        """The symbol; KconfigError when unknown."""
        try:
            return self._symbols[name]
        except KeyError:
            raise KconfigError(f"unknown config symbol: {name}") from None

    def names(self) -> list[str]:
        """Sorted symbol names."""
        return sorted(self._symbols)

    def symbols(self) -> list[ConfigSymbol]:
        """Symbols in declaration order.

        Declaration order matters: allyesconfig walks entries in the
        order Kconfig declares them, which is what makes
        ``depends on !X`` symbols stay off when X is declared earlier.
        """
        return list(self._symbols.values())

    def boolean_symbols(self) -> list[ConfigSymbol]:
        """bool/tristate symbols in declaration order."""
        return [symbol for symbol in self.symbols()
                if symbol.is_boolean_like]

    def tristate_symbols(self) -> list[ConfigSymbol]:
        """Tristate symbols in declaration order."""
        return [symbol for symbol in self.symbols()
                if symbol.type is SymbolType.TRISTATE]

    def choice_groups(self) -> dict[str, list[ConfigSymbol]]:
        """Choice-group name -> member symbols, in declaration order."""
        groups: dict[str, list[ConfigSymbol]] = {}
        for name in self._symbols:
            symbol = self._symbols[name]
            if symbol.choice_group is not None:
                groups.setdefault(symbol.choice_group, []).append(symbol)
        return groups

    def selectors_of(self, name: str) -> list[ConfigSymbol]:
        """Symbols that ``select`` the given symbol."""
        return [symbol for symbol in self.symbols()
                if name in symbol.selects]

    def undefined_references(self) -> set[str]:
        """Symbols referenced in dependencies/selects but never defined.

        These are the "#ifdef variable never set in the kernel" hazard
        source (Table IV): code can test a CONFIG_ name no Kconfig
        defines.
        """
        referenced: set[str] = set()
        for symbol in self._symbols.values():
            if symbol.depends_on is not None:
                referenced |= symbol.depends_on.symbols()
            referenced |= set(symbol.selects)
            if symbol.default is not None:
                referenced |= symbol.default.symbols()
        return {name for name in referenced if name not in self._symbols}
