"""Kconfig AST: symbols, tristate values, and dependency expressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Callable, Mapping


class Tristate(IntEnum):
    """The three Kconfig truth values, ordered n < m < y."""

    N = 0
    M = 1
    Y = 2

    @property
    def letter(self) -> str:
        """The .config letter: n, m, or y."""
        return {Tristate.N: "n", Tristate.M: "m", Tristate.Y: "y"}[self]

    @classmethod
    def from_letter(cls, letter: str) -> "Tristate":
        """Parse a .config letter."""
        mapping = {"n": cls.N, "m": cls.M, "y": cls.Y}
        try:
            return mapping[letter.lower()]
        except KeyError:
            raise ValueError(f"not a tristate letter: {letter!r}") from None


class SymbolType(Enum):
    """Kconfig symbol types."""
    BOOL = "bool"
    TRISTATE = "tristate"
    INT = "int"
    STRING = "string"


Assignment = Mapping[str, Tristate]


class Expr:
    """A dependency expression over config symbols.

    Kconfig expressions evaluate to tristates: ``A && B`` is min,
    ``A || B`` is max, ``!A`` is ``y - A`` (2 - value). Undefined symbols
    evaluate to ``n``, matching Kconfig.
    """

    def evaluate(self, assignment: Assignment) -> Tristate:
        """The expression's tristate value under an assignment."""
        raise NotImplementedError

    def symbols(self) -> set[str]:
        """All symbol names the expression references."""
        raise NotImplementedError


@dataclass(frozen=True)
class SymbolRef(Expr):
    """A reference to a symbol; undefined names evaluate to n."""
    name: str

    def evaluate(self, assignment: Assignment) -> Tristate:
        return assignment.get(self.name, Tristate.N)

    def symbols(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstExpr(Expr):
    """A literal tristate constant."""
    value: Tristate

    def evaluate(self, assignment: Assignment) -> Tristate:
        return self.value

    def symbols(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return self.value.letter


@dataclass(frozen=True)
class NotExpr(Expr):
    """Kconfig negation: 2 - value."""
    operand: Expr

    def evaluate(self, assignment: Assignment) -> Tristate:
        return Tristate(2 - self.operand.evaluate(assignment))

    def symbols(self) -> set[str]:
        return self.operand.symbols()

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class AndExpr(Expr):
    """Kconfig conjunction: min of the sides."""
    left: Expr
    right: Expr

    def evaluate(self, assignment: Assignment) -> Tristate:
        return min(self.left.evaluate(assignment),
                   self.right.evaluate(assignment))

    def symbols(self) -> set[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class OrExpr(Expr):
    """Kconfig disjunction: max of the sides."""
    left: Expr
    right: Expr

    def evaluate(self, assignment: Assignment) -> Tristate:
        return max(self.left.evaluate(assignment),
                   self.right.evaluate(assignment))

    def symbols(self) -> set[str]:
        return self.left.symbols() | self.right.symbols()

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


@dataclass
class ConfigSymbol:
    """One ``config NAME`` entry."""

    name: str
    type: SymbolType = SymbolType.BOOL
    prompt: str | None = None
    depends_on: Expr | None = None
    selects: list[str] = field(default_factory=list)
    default: Expr | None = None
    default_value: str | None = None  # for int/string symbols
    help_text: str = ""
    choice_group: str | None = None   # name of the owning choice, if any
    source_file: str | None = None
    #: (low, high) bounds for int symbols, from a ``range`` attribute
    value_range: tuple[str, str] | None = None

    @property
    def is_boolean_like(self) -> bool:
        """True for bool and tristate symbols."""
        return self.type in (SymbolType.BOOL, SymbolType.TRISTATE)

    def dependencies_met(self, assignment: Assignment) -> bool:
        """True when depends-on evaluates non-n (or is absent)."""
        if self.depends_on is None:
            return True
        return self.depends_on.evaluate(assignment) != Tristate.N


def make_and(parts: list[Expr]) -> Expr | None:
    """Combine expressions with &&; None for an empty list."""
    result: Expr | None = None
    for part in parts:
        result = part if result is None else AndExpr(result, part)
    return result


ExprEvaluator = Callable[[Expr, Assignment], Tristate]
