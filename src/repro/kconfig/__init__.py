"""Kconfig substrate: the kernel's configuration language and solvers.

Implements the subset of Kconfig the paper's machinery depends on:

- ``config`` entries with ``bool``/``tristate``/``int``/``string`` types,
  prompts, ``depends on`` expressions, ``select``, and ``default``;
- ``choice`` groups — the reason ``allyesconfig`` *cannot* set every
  symbol (Table IV row "variable not set by allyesconfig");
- ``source`` inclusion of per-subsystem Kconfig files;
- the three make targets JMake uses (§II-B): ``allyesconfig``,
  ``allmodconfig``, and named defconfigs from ``arch/*/configs``;
- ``.config`` serialization and the ``autoconf.h`` macro set the build
  injects into every compilation.
"""

from repro.kconfig.ast import ConfigSymbol, Expr, SymbolType, Tristate
from repro.kconfig.configfile import Config, parse_config_text
from repro.kconfig.model import ConfigModel
from repro.kconfig.parser import parse_kconfig
from repro.kconfig.solver import (
    allmodconfig,
    allnoconfig,
    allyesconfig,
    defconfig,
)

__all__ = [
    "Config",
    "ConfigModel",
    "ConfigSymbol",
    "Expr",
    "SymbolType",
    "Tristate",
    "allmodconfig",
    "allnoconfig",
    "allyesconfig",
    "defconfig",
    "parse_config_text",
    "parse_kconfig",
]
