"""``.config`` files and the autoconf macro set.

A :class:`Config` is one concrete assignment of tristate values (plus
int/string values) to symbols. It serializes to the kernel's ``.config``
format and — crucially for the substrate — exposes
:meth:`Config.autoconf_macros`, the macro set the build system injects
into every compilation (the stand-in for ``include/generated/autoconf.h``):

- ``CONFIG_FOO=y``  → ``CONFIG_FOO`` defined as ``1``
- ``CONFIG_FOO=m``  → ``CONFIG_FOO_MODULE`` defined as ``1`` (and the
  build adds ``MODULE`` when compiling that unit as a module, which is
  what makes ``#ifdef MODULE`` code invisible to allyesconfig — Table IV)
- ``CONFIG_FOO=n``  → nothing defined
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import KconfigError
from repro.kconfig.ast import Tristate


@dataclass
class Config:
    """One concrete configuration."""

    name: str = ".config"
    values: dict[str, Tristate] = field(default_factory=dict)
    scalar_values: dict[str, str] = field(default_factory=dict)

    def tristate(self, symbol: str) -> Tristate:
        """The symbol's value; N when unset."""
        return self.values.get(symbol, Tristate.N)

    def enabled(self, symbol: str) -> bool:
        """True for y or m."""
        return self.tristate(symbol) != Tristate.N

    def builtin(self, symbol: str) -> bool:
        """True for =y."""
        return self.tristate(symbol) == Tristate.Y

    def modular(self, symbol: str) -> bool:
        """True for =m."""
        return self.tristate(symbol) == Tristate.M

    def set(self, symbol: str, value: Tristate) -> None:
        """Assign a tristate value."""
        self.values[symbol] = value
        self.__dict__.pop("_content_digest", None)

    def content_digest(self) -> str:
        """Digest of the value assignment, independent of the name.

        The build cache keys preprocessing environments with this, so
        two configurations that assign identical values share cache
        entries whatever they are called. Memoized on the instance;
        :meth:`set` drops the memo, but callers mutating ``values`` or
        ``scalar_values`` directly must not have called this before.
        """
        digest = self.__dict__.get("_content_digest")
        if digest is None:
            hasher = hashlib.sha256()
            for symbol in sorted(self.values):
                hasher.update(
                    f"{symbol}={self.values[symbol].letter};".encode())
            for symbol in sorted(self.scalar_values):
                hasher.update(
                    f"{symbol}:{self.scalar_values[symbol]};".encode())
            digest = hasher.hexdigest()[:16]
            self.__dict__["_content_digest"] = digest
        return digest

    def enabled_count(self) -> int:
        """Number of symbols set to y or m."""
        return sum(1 for value in self.values.values()
                   if value != Tristate.N)

    # -- serialization -----------------------------------------------------

    def to_config_text(self) -> str:
        """Serialize in the kernel's .config format."""
        lines: list[str] = [f"# {self.name}"]
        for symbol in sorted(set(self.values) | set(self.scalar_values)):
            if symbol in self.scalar_values:
                lines.append(f'CONFIG_{symbol}="{self.scalar_values[symbol]}"')
                continue
            value = self.values[symbol]
            if value == Tristate.N:
                lines.append(f"# CONFIG_{symbol} is not set")
            else:
                lines.append(f"CONFIG_{symbol}={value.letter}")
        return "\n".join(lines) + "\n"

    # -- autoconf ----------------------------------------------------------

    def autoconf_macros(self) -> dict[str, str]:
        """The macro set equivalent to include/generated/autoconf.h."""
        macros: dict[str, str] = {}
        for symbol, value in self.values.items():
            if value == Tristate.Y:
                macros[f"CONFIG_{symbol}"] = "1"
            elif value == Tristate.M:
                macros[f"CONFIG_{symbol}_MODULE"] = "1"
        for symbol, scalar in self.scalar_values.items():
            macros[f"CONFIG_{symbol}"] = scalar
        return macros


def config_diff(old: Config, new: Config) -> list[str]:
    """Human-readable symbol-level differences between two configs.

    The format mirrors ``scripts/diffconfig`` from the kernel tree:
    ``+SYM y`` (new symbol), ``-SYM y`` (dropped), ``SYM n -> y``
    (changed). Useful for explaining what a targeted configuration
    changed relative to allyesconfig.
    """
    lines: list[str] = []
    symbols = sorted(set(old.values) | set(new.values))
    for symbol in symbols:
        before = old.values.get(symbol)
        after = new.values.get(symbol)
        if before == after:
            continue
        if before is None:
            lines.append(f"+{symbol} {after.letter}")
        elif after is None:
            lines.append(f"-{symbol} {before.letter}")
        else:
            lines.append(f"{symbol} {before.letter} -> {after.letter}")
    for symbol in sorted(set(old.scalar_values) | set(new.scalar_values)):
        before = old.scalar_values.get(symbol)
        after = new.scalar_values.get(symbol)
        if before != after:
            lines.append(f"{symbol} {before!r} -> {after!r}")
    return lines


def parse_config_text(text: str, *, name: str = ".config") -> Config:
    """Parse ``.config``/defconfig text.

    Recognizes ``CONFIG_FOO=y|m|n``, ``# CONFIG_FOO is not set``,
    ``CONFIG_FOO=123`` and ``CONFIG_FOO="str"``.
    """
    config = Config(name=name)
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if body.endswith("is not set") and body.startswith("CONFIG_"):
                symbol = body[len("CONFIG_"):-len("is not set")].strip()
                config.values[symbol] = Tristate.N
            continue
        if not line.startswith("CONFIG_") or "=" not in line:
            raise KconfigError(f"{name}:{lineno}: bad config line {raw!r}")
        key, _, value = line.partition("=")
        symbol = key[len("CONFIG_"):]
        value = value.strip()
        if value in ("y", "m", "n"):
            config.values[symbol] = Tristate.from_letter(value)
        elif value.startswith('"'):
            config.scalar_values[symbol] = value.strip('"')
        else:
            config.scalar_values[symbol] = value
    return config
