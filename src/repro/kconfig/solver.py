"""Configuration solvers: allyesconfig, allmodconfig, defconfig.

``allyesconfig`` "attempts to set as many configuration variables as
possible, as long as doing so does not conflict with the chosen
architecture or any of the other chosen options" (§II-B). The solver
realizes that policy as a monotone fixpoint:

1. every choice group picks exactly one member (the first whose
   dependencies hold) — the structural reason some symbols stay off;
2. every other boolean-like symbol is raised to ``y`` (or ``m`` for
   tristates under allmodconfig) when its ``depends on`` evaluates
   non-``n`` under the current assignment;
3. ``select`` edges force their targets on;
4. repeat until nothing changes.

The fixpoint is monotone (values only ever increase), so it terminates
in at most ``len(symbols)`` rounds.

``defconfig`` seeds the assignment from a configs-file and completes it
with defaults, mirroring ``make <name>_defconfig``.
"""

from __future__ import annotations

from repro.kconfig.ast import SymbolType, Tristate
from repro.kconfig.configfile import Config
from repro.kconfig.model import ConfigModel


def allyesconfig(model: ConfigModel) -> Config:
    """make allyesconfig: raise everything dependencies allow."""
    return _all_config(model, modular=False)


def allmodconfig(model: ConfigModel) -> Config:
    """make allmodconfig: tristates become modules."""
    return _all_config(model, modular=True)


def allnoconfig(model: ConfigModel) -> Config:
    """``make allnoconfig``: everything off except forced selections.

    Symbols without a prompt cannot be toggled by the user, so those
    with a satisfied ``default`` keep it (the kernel behaves the same
    way: allnoconfig only clears *visible* symbols).
    """
    config = Config(name="allnoconfig")
    assignment = config.values
    for symbol in model.symbols():
        if symbol.is_boolean_like:
            assignment[symbol.name] = Tristate.N
        elif symbol.default_value is not None:
            config.scalar_values[symbol.name] = symbol.default_value
    changed = True
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if rounds > len(model) + 2:
            break
        for symbol in model.boolean_symbols():
            if assignment.get(symbol.name, Tristate.N) != Tristate.N:
                continue
            if symbol.prompt is None and symbol.default is not None \
                    and symbol.dependencies_met(assignment):
                value = symbol.default.evaluate(assignment)
                if value != Tristate.N:
                    assignment[symbol.name] = value
                    changed = True
        for symbol in model.symbols():
            if assignment.get(symbol.name, Tristate.N) == Tristate.N:
                continue
            for target_name in symbol.selects:
                if target_name in model and \
                        model.get(target_name).is_boolean_like and \
                        assignment.get(target_name,
                                       Tristate.N) == Tristate.N:
                    assignment[target_name] = Tristate.Y
                    changed = True
    return config


def _all_config(model: ConfigModel, *, modular: bool) -> Config:
    name = "allmodconfig" if modular else "allyesconfig"
    config = Config(name=name)
    assignment = config.values
    for symbol in model.symbols():
        if symbol.is_boolean_like:
            assignment[symbol.name] = Tristate.N
        elif symbol.default_value is not None:
            config.scalar_values[symbol.name] = symbol.default_value

    choice_members: set[str] = set()
    for members in model.choice_groups().values():
        choice_members.update(member.name for member in members)

    changed = True
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if rounds > len(model) + 2:
            break  # safety net; the fixpoint is monotone so unreachable

        # 1. choice groups: first member whose dependencies hold gets y.
        for members in model.choice_groups().values():
            if any(assignment.get(member.name, Tristate.N) != Tristate.N
                   for member in members):
                continue
            for member in members:
                if member.dependencies_met(assignment):
                    assignment[member.name] = Tristate.Y
                    changed = True
                    break

        # 2. ordinary symbols rise to y/m when dependencies hold.
        for symbol in model.boolean_symbols():
            if symbol.name in choice_members:
                continue
            current = assignment.get(symbol.name, Tristate.N)
            if current != Tristate.N:
                continue
            if symbol.dependencies_met(assignment):
                target = Tristate.M if (modular and
                                        symbol.type is SymbolType.TRISTATE) \
                    else Tristate.Y
                assignment[symbol.name] = target
                changed = True

        # 3. selects force their targets on (Kconfig ignores the target's
        #    own dependencies for selects; we follow that).
        for symbol in model.symbols():
            if assignment.get(symbol.name, Tristate.N) == Tristate.N:
                continue
            for target_name in symbol.selects:
                if target_name not in model:
                    continue
                target = model.get(target_name)
                if not target.is_boolean_like:
                    continue
                wanted = assignment.get(symbol.name, Tristate.Y)
                if target.type is SymbolType.BOOL:
                    wanted = Tristate.Y
                if assignment.get(target_name, Tristate.N) < wanted:
                    assignment[target_name] = wanted
                    changed = True
    return config


def targeted_config(model: ConfigModel, want_on: "set[str]",
                    want_off: "set[str] | None" = None,
                    *, name: str = "targeted") -> Config | None:
    """Construct a configuration with specific symbols on and off.

    This is the primitive behind Vampyr/Troll-style configuration
    generation (§VI related work; §VII future work): given a conditional
    block's presence condition, build a configuration that reaches it.
    Returns ``None`` when the request is unsatisfiable under the model
    (undefined symbols, violated dependencies, choice-group conflicts,
    or a ``select`` that would force a forbidden symbol).

    The search is greedy-constructive, not a complete SAT solve — the
    same trade-off the related tools make for speed; a ``None`` from
    a satisfiable instance is possible in principle but does not occur
    on realistic dependency shapes (conjunctions of literals).
    """
    from repro.kconfig.ast import (
        AndExpr, ConstExpr, Expr, NotExpr, OrExpr, SymbolRef,
    )

    want_off = set(want_off or ())
    config = Config(name=name)
    assignment = config.values
    for symbol in model.symbols():
        if symbol.is_boolean_like:
            assignment[symbol.name] = Tristate.N
        elif symbol.default_value is not None:
            config.scalar_values[symbol.name] = symbol.default_value
    forbidden = set(want_off)
    choice_groups = model.choice_groups()
    group_of = {member.name: group
                for group, members in choice_groups.items()
                for member in members}

    def enable(target: str, trail: "set[str]") -> bool:
        if target in forbidden:
            return False
        if target not in model:
            return False
        if assignment.get(target, Tristate.N) != Tristate.N:
            return True
        if target in trail:
            return False  # dependency cycle
        symbol = model.get(target)
        if not symbol.is_boolean_like:
            return False
        # choice exclusivity: enabling one member freezes the others
        group = group_of.get(target)
        if group is not None:
            for member in choice_groups[group]:
                if member.name == target:
                    continue
                if assignment.get(member.name, Tristate.N) != Tristate.N:
                    return False
                forbidden.add(member.name)
        if symbol.depends_on is not None and \
                not satisfy(symbol.depends_on, trail | {target}):
            return False
        assignment[target] = Tristate.Y
        # selects fire unconditionally, and may conflict
        for selected in symbol.selects:
            if selected in forbidden:
                return False
            if selected in model and \
                    model.get(selected).is_boolean_like and \
                    assignment.get(selected, Tristate.N) == Tristate.N:
                if not enable(selected, trail | {target}):
                    return False
        return True

    def forbid(target: str) -> bool:
        if target in model and \
                assignment.get(target, Tristate.N) != Tristate.N:
            return False
        forbidden.add(target)
        return True

    def satisfy(expr: Expr, trail: "set[str]") -> bool:
        if isinstance(expr, ConstExpr):
            return expr.value != Tristate.N
        if isinstance(expr, SymbolRef):
            return enable(expr.name, trail)
        if isinstance(expr, NotExpr):
            operand = expr.operand
            if isinstance(operand, SymbolRef):
                return forbid(operand.name)
            if isinstance(operand, ConstExpr):
                return operand.value == Tristate.N
            return False  # nested negations: out of scope for greedy
        if isinstance(expr, AndExpr):
            return satisfy(expr.left, trail) and satisfy(expr.right, trail)
        if isinstance(expr, OrExpr):
            checkpoint = dict(assignment)
            forbidden_checkpoint = set(forbidden)
            if satisfy(expr.left, trail):
                return True
            assignment.clear()
            assignment.update(checkpoint)
            forbidden.clear()
            forbidden.update(forbidden_checkpoint)
            return satisfy(expr.right, trail)
        return False

    for target in sorted(want_off):
        if not forbid(target):
            return None
    for target in sorted(want_on):
        if not enable(target, set()):
            return None
    return config


def defconfig(model: ConfigModel, seed_text: str, *,
              name: str = "defconfig") -> Config:
    """``make <name>_defconfig``: seed values, then defaults, then selects."""
    from repro.kconfig.configfile import parse_config_text

    seed = parse_config_text(seed_text, name=name)
    config = Config(name=name)
    assignment = config.values

    for symbol in model.symbols():
        if symbol.is_boolean_like:
            assignment[symbol.name] = Tristate.N
        elif symbol.default_value is not None:
            config.scalar_values[symbol.name] = symbol.default_value
    # Seed values win where the symbol exists and dependencies permit.
    for symbol_name, value in seed.values.items():
        if symbol_name in model and model.get(symbol_name).is_boolean_like:
            assignment[symbol_name] = value
    config.scalar_values.update(seed.scalar_values)

    # Defaults for symbols the seed left at n and that were never
    # explicitly disabled ("# CONFIG_X is not set" lines count as
    # explicit).
    explicitly_set = set(seed.values)
    changed = True
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if rounds > len(model) + 2:
            break
        for symbol in model.boolean_symbols():
            current = assignment.get(symbol.name, Tristate.N)
            if current != Tristate.N or symbol.name in explicitly_set:
                continue
            if symbol.default is None:
                continue
            value = symbol.default.evaluate(assignment)
            if value != Tristate.N and symbol.dependencies_met(assignment):
                assignment[symbol.name] = value
                changed = True
        for symbol in model.symbols():
            if assignment.get(symbol.name, Tristate.N) == Tristate.N:
                continue
            for target_name in symbol.selects:
                if target_name in model and \
                        model.get(target_name).is_boolean_like and \
                        assignment.get(target_name, Tristate.N) == Tristate.N:
                    assignment[target_name] = Tristate.Y
                    changed = True
    return config
