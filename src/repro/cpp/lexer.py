"""Preprocessing-phase lexing: comments, strings, and token splitting.

Two jobs live here:

1. :func:`strip_comments` — replace comments with spaces while respecting
   string and character literals, preserving newlines inside block
   comments so later phases keep correct line numbers.
2. :func:`tokenize` — split text into preprocessor tokens for macro
   expansion and ``#if`` evaluation. Characters that are not valid C
   tokens (for example JMake's mutation character) come through as
   single-character ``other`` tokens, which is exactly the pass-through
   behaviour a real preprocessor exhibits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum


class TokenKind(Enum):
    """Preprocessor token categories; OTHER = no valid C token."""
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    WS = "ws"
    OTHER = "other"


@dataclass(frozen=True)
class Token:
    """One preprocessor token (kind + exact text)."""
    kind: TokenKind
    text: str

    @property
    def is_ws(self) -> bool:
        """True for whitespace runs."""
        return self.kind is TokenKind.WS


# Longest-match punctuation, ordered so multi-char operators win.
_PUNCTUATORS = [
    "...", "<<=", ">>=",
    "##", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "#", "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", "~", "!",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", ".",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>\.?[0-9](?:[0-9a-zA-Z_.]|[eEpP][+-])*)
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<char>'(?:[^'\\\n]|\\.)*')
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCTUATORS) + r""")
  | (?P<other>.)
    """,
    re.VERBOSE,
)

_KIND_BY_GROUP = {
    "ws": TokenKind.WS,
    "ident": TokenKind.IDENT,
    "number": TokenKind.NUMBER,
    "string": TokenKind.STRING,
    "char": TokenKind.CHAR,
    "punct": TokenKind.PUNCT,
    "other": TokenKind.OTHER,
}


def tokenize(text: str) -> list[Token]:
    """Split one logical line (no newlines) into preprocessor tokens."""
    tokens: list[Token] = []
    for match in _TOKEN_RE.finditer(text):
        group = match.lastgroup
        assert group is not None
        tokens.append(Token(_KIND_BY_GROUP[group], match.group()))
    return tokens


def untokenize(tokens: list[Token]) -> str:
    """Concatenate token texts back into source text."""
    return "".join(token.text for token in tokens)


class CommentStripper:
    """Stateful comment remover that can span physical lines.

    Block comments opened on one line may close on a later one; the
    stripper carries that state so callers can feed lines one at a time.
    Comments are replaced with a single space (ISO C phase 3), and
    newlines inside block comments are preserved by the caller feeding
    per-line.
    """

    def __init__(self) -> None:
        self.in_block_comment = False

    def strip_line(self, line: str) -> str:
        """Strip comments from one physical line, updating state."""
        out: list[str] = []
        i = 0
        n = len(line)
        while i < n:
            if self.in_block_comment:
                end = line.find("*/", i)
                if end == -1:
                    return "".join(out)
                self.in_block_comment = False
                i = end + 2
                continue
            ch = line[i]
            if ch == "/" and i + 1 < n and line[i + 1] == "*":
                # ISO C replaces each comment with one space, emitted at
                # the position where the comment starts.
                self.in_block_comment = True
                out.append(" ")
                i += 2
                continue
            if ch == "/" and i + 1 < n and line[i + 1] == "/":
                break  # line comment: rest of line ignored
            if ch in "\"'":
                closing = _scan_literal(line, i, ch)
                out.append(line[i:closing])
                i = closing
                continue
            out.append(ch)
            i += 1
        return "".join(out)


def _scan_literal(line: str, start: int, quote: str) -> int:
    """Index one past the closing quote (or end of line if unterminated)."""
    i = start + 1
    n = len(line)
    while i < n:
        if line[i] == "\\" and i + 1 < n:
            i += 2
            continue
        if line[i] == quote:
            return i + 1
        i += 1
    return n


def strip_comments(text: str) -> str:
    """Strip comments from a whole text, preserving line structure."""
    stripper = CommentStripper()
    lines = text.split("\n")
    return "\n".join(stripper.strip_line(line) for line in lines)
