"""Preprocessing-phase lexing: comments, strings, and token splitting.

Two jobs live here:

1. :func:`strip_comments` — replace comments with spaces while respecting
   string and character literals, preserving newlines inside block
   comments so later phases keep correct line numbers.
2. :func:`tokenize` — split text into preprocessor tokens for macro
   expansion and ``#if`` evaluation. Characters that are not valid C
   tokens (for example JMake's mutation character) come through as
   single-character ``other`` tokens, which is exactly the pass-through
   behaviour a real preprocessor exhibits.

Both jobs sit on the hottest path of the whole system — every verdict
funnels through them thousands of times — so this module also carries
the first reuse level of the substrate fast path (DESIGN.md §8):

- :class:`Token` is a slotted plain class with a precomputed ``is_ws``
  flag instead of a frozen dataclass, cutting per-token allocation and
  attribute-access cost;
- identifier and punctuator tokens are interned process-wide, so the
  same ``CONFIG_FOO`` spelling is one shared object across every file,
  arch, and config;
- whole-line token streams are memoized (:func:`tokenize_shared`):
  kernel-style trees re-lex the same logical lines massively — macro
  bodies, repeated ``#if`` conditions, shared-header lines — and a
  repeat costs one dict probe instead of a regex scan;
- :meth:`CommentStripper.strip_line` short-circuits lines that cannot
  contain a comment or literal (the overwhelmingly common case).

All fast paths are exact (token streams are immutable and shared, the
strip short-circuit only fires when the slow loop would be an identity
copy) and can be force-disabled via :func:`repro.cpp.prepared.configure`
for differential testing.
"""

from __future__ import annotations

import re
from enum import Enum
from functools import lru_cache


class TokenKind(Enum):
    """Preprocessor token categories; OTHER = no valid C token."""
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    WS = "ws"
    OTHER = "other"


class Token:
    """One preprocessor token (kind + exact text).

    Slotted and immutable by convention: token objects are shared freely
    between cached token streams, so callers must never mutate them.
    ``is_ws`` is a precomputed attribute (not a property) because the
    expansion loops test it constantly.
    """

    __slots__ = ("kind", "text", "is_ws")

    def __init__(self, kind: TokenKind, text: str) -> None:
        self.kind = kind
        self.text = text
        self.is_ws = kind is TokenKind.WS

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Token) and self.kind is other.kind
                and self.text == other.text)

    def __hash__(self) -> int:
        return hash((self.kind, self.text))

    def __repr__(self) -> str:
        return f"Token(kind={self.kind!r}, text={self.text!r})"

    def __getstate__(self):
        return (self.kind, self.text)

    def __setstate__(self, state) -> None:
        self.kind, self.text = state
        self.is_ws = self.kind is TokenKind.WS


# Longest-match punctuation, ordered so multi-char operators win.
_PUNCTUATORS = [
    "...", "<<=", ">>=",
    "##", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "#", "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", "~", "!",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", ".",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>\.?[0-9](?:[0-9a-zA-Z_.]|[eEpP][+-])*)
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<char>'(?:[^'\\\n]|\\.)*')
  | (?P<punct>""" + "|".join(re.escape(p) for p in _PUNCTUATORS) + r""")
  | (?P<other>.)
    """,
    re.VERBOSE,
)

_KIND_BY_GROUP = {
    "ws": TokenKind.WS,
    "ident": TokenKind.IDENT,
    "number": TokenKind.NUMBER,
    "string": TokenKind.STRING,
    "char": TokenKind.CHAR,
    "punct": TokenKind.PUNCT,
    "other": TokenKind.OTHER,
}

# -- interning --------------------------------------------------------------

#: shared singletons for every punctuator and the single-space run
_PUNCT_TOKENS = {p: Token(TokenKind.PUNCT, p) for p in _PUNCTUATORS}
_WS_SPACE = Token(TokenKind.WS, " ")

#: bounded process-wide identifier intern table; past the cap new
#: spellings simply stop being interned (never evicted mid-run, so a
#: shared token is shared for the process lifetime)
_IDENT_INTERN_LIMIT = 32768
_IDENT_TOKENS: dict[str, Token] = {}

#: size bound of the per-line token-stream memo
_LINE_CACHE_SIZE = 65536

#: flipped by repro.cpp.prepared.configure for differential testing
_TOKEN_CACHE_ENABLED = True
_STRIP_FASTPATH_ENABLED = True


def set_token_cache_enabled(enabled: bool) -> None:
    """Enable/disable the shared per-line token-stream memo."""
    global _TOKEN_CACHE_ENABLED
    _TOKEN_CACHE_ENABLED = bool(enabled)
    _tokenize_cached.cache_clear()


def set_strip_fastpath_enabled(enabled: bool) -> None:
    """Enable/disable the comment-strip identity short-circuit."""
    global _STRIP_FASTPATH_ENABLED
    _STRIP_FASTPATH_ENABLED = bool(enabled)


def clear_token_caches() -> None:
    """Drop the line memo and the identifier intern table."""
    _tokenize_cached.cache_clear()
    _IDENT_TOKENS.clear()


def _tokenize_uncached(text: str) -> list[Token]:
    tokens: list[Token] = []
    append = tokens.append
    ident_tokens = _IDENT_TOKENS
    for match in _TOKEN_RE.finditer(text):
        group = match.lastgroup
        piece = match.group()
        if group == "ident":
            token = ident_tokens.get(piece)
            if token is None:
                token = Token(TokenKind.IDENT, piece)
                if len(ident_tokens) < _IDENT_INTERN_LIMIT:
                    ident_tokens[piece] = token
            append(token)
        elif group == "punct":
            append(_PUNCT_TOKENS[piece])
        elif group == "ws" and piece == " ":
            append(_WS_SPACE)
        else:
            append(Token(_KIND_BY_GROUP[group], piece))
    return tokens


@lru_cache(maxsize=_LINE_CACHE_SIZE)
def _tokenize_cached(text: str) -> tuple[Token, ...]:
    return tuple(_tokenize_uncached(text))


def tokenize(text: str) -> list[Token]:
    """Split one logical line (no newlines) into preprocessor tokens.

    Returns a fresh list the caller may mutate; the Token objects inside
    it are shared and must be treated as immutable.
    """
    if _TOKEN_CACHE_ENABLED:
        return list(_tokenize_cached(text))
    return _tokenize_uncached(text)


def tokenize_shared(text: str) -> tuple[Token, ...]:
    """The memoized token stream of one logical line, as a shared tuple.

    The hot-loop variant of :func:`tokenize`: no per-call list copy.
    Callers must not mutate the tuple or the tokens.
    """
    if _TOKEN_CACHE_ENABLED:
        return _tokenize_cached(text)
    return tuple(_tokenize_uncached(text))


def untokenize(tokens) -> str:
    """Concatenate token texts back into source text."""
    return "".join(token.text for token in tokens)


class CommentStripper:
    """Stateful comment remover that can span physical lines.

    Block comments opened on one line may close on a later one; the
    stripper carries that state so callers can feed lines one at a time.
    Comments are replaced with a single space (ISO C phase 3), and
    newlines inside block comments are preserved by the caller feeding
    per-line.
    """

    def __init__(self) -> None:
        self.in_block_comment = False

    def strip_line(self, line: str) -> str:
        """Strip comments from one physical line, updating state."""
        if _STRIP_FASTPATH_ENABLED and not self.in_block_comment \
                and "/" not in line and '"' not in line \
                and "'" not in line:
            # No slash means no comment can open, no quote means no
            # literal needs scanning: the slow loop below would copy the
            # line verbatim, so return it unchanged.
            return line
        out: list[str] = []
        i = 0
        n = len(line)
        while i < n:
            if self.in_block_comment:
                end = line.find("*/", i)
                if end == -1:
                    return "".join(out)
                self.in_block_comment = False
                i = end + 2
                continue
            ch = line[i]
            if ch == "/" and i + 1 < n and line[i + 1] == "*":
                # ISO C replaces each comment with one space, emitted at
                # the position where the comment starts.
                self.in_block_comment = True
                out.append(" ")
                i += 2
                continue
            if ch == "/" and i + 1 < n and line[i + 1] == "/":
                break  # line comment: rest of line ignored
            if ch in "\"'":
                closing = _scan_literal(line, i, ch)
                out.append(line[i:closing])
                i = closing
                continue
            out.append(ch)
            i += 1
        return "".join(out)


def _scan_literal(line: str, start: int, quote: str) -> int:
    """Index one past the closing quote (or end of line if unterminated)."""
    i = start + 1
    n = len(line)
    while i < n:
        if line[i] == "\\" and i + 1 < n:
            i += 2
            continue
        if line[i] == quote:
            return i + 1
        i += 1
    return n


def strip_comments(text: str) -> str:
    """Strip comments from a whole text, preserving line structure."""
    stripper = CommentStripper()
    lines = text.split("\n")
    return "\n".join(stripper.strip_line(line) for line in lines)
