"""Content-keyed prepared files and header-level replay (fast path L2/L3).

Three observations drive the substrate fast path (DESIGN.md §8):

1. Comment stripping, backslash splicing, and directive classification
   are *pure functions of file content* — they do not depend on the
   architecture, the configuration, or any macro state. Yet the
   preprocessor redoes them for every include of every translation
   unit. :class:`PreparedFile` performs that work once per distinct
   content and shares it process-wide: across the files of one TU,
   across the TUs of one batch (the ≤50-file groups the service's
   CrossRequestBatcher coalesces), and across requests in a warm
   service.

2. A *leaf* file — one whose prepared form contains no ``#include``
   directive — interacts with the rest of the build only through the
   macro table. If every macro name whose presence/definition it read
   still has the same definition, re-preprocessing it is guaranteed to
   produce byte-identical output and the same macro-table delta.
   :class:`HeaderReplayCache` memoizes exactly that: keyed by
   (path, content), validated by the recorded read set (which naturally
   captures the arch/config dependence via ``CONFIG_*`` and builtin
   reads), it replays the emitted text, the emitted-line set, and the
   ordered define/undef delta without touching the lexer at all.
   Guard-protected headers are the canonical win: the second inclusion
   in a TU and every inclusion in later TUs of a warm process resolve
   here.

3. Both caches are content-addressed, so they need *no invalidation
   protocol*: changed content simply probes a different key, and the
   bounded LRU keeps long service runs from growing without limit.

The module also owns the global fast-path switch. All reuse levels —
the lexer's token caches, the macro screen, the evaluator fast paths,
and the two caches here — can be force-disabled via :func:`configure`
or the ``JMAKE_CPP_FASTPATH`` environment variable, which is what the
byte-identity differential suite uses to compare both pipelines.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager

from repro.cpp import evaluator as _evaluator
from repro.cpp import lexer as _lexer
from repro.cpp import macro as _macro
from repro.cpp.lexer import CommentStripper
from repro.obs.metrics import MetricsRegistry
from repro.util.text import split_lines_keepends

#: bound on distinct file contents held prepared
_PREPARED_CACHE_SIZE = 4096
#: bounds on the header replay store
_REPLAY_CACHE_SIZE = 2048
_REPLAY_MAX_VARIANTS = 16


class PreparedLine:
    """One logical line, pre-stripped, pre-spliced, pre-classified.

    ``start``/``end`` are the 1-based physical line range the logical
    line spans (inclusive). For directive lines, ``directive`` is the
    keyword ("" for the null directive) and ``rest`` the pre-stripped
    text after it; for ordinary text lines both are None and ``blank``
    says whether the line is whitespace-only after stripping.
    """

    __slots__ = ("text", "start", "end", "directive", "rest", "blank")

    def __init__(self, text: str, start: int, end: int,
                 directive: str | None, rest: str | None,
                 blank: bool) -> None:
        self.text = text
        self.start = start
        self.end = end
        self.directive = directive
        self.rest = rest
        self.blank = blank

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = f"#{self.directive}" if self.directive is not None else "text"
        return (f"PreparedLine({kind} {self.start}..{self.end} "
                f"{self.text!r})")


class PreparedFile:
    """The prepared (content-only) form of one source file."""

    __slots__ = ("lines", "line_count", "leaf")

    def __init__(self, lines: tuple[PreparedLine, ...],
                 line_count: int) -> None:
        self.lines = lines
        self.line_count = line_count
        #: no #include directive anywhere -> replay-cache eligible
        self.leaf = all(line.directive != "include" for line in lines)


def splice_logical_line(lines: list[str], index: int) -> tuple[str, int]:
    """Join backslash-continued physical lines into one logical line.

    Returns ``(logical_text, next_index)``; the logical line spans
    physical lines ``index .. next_index - 1`` (0-based).
    """
    parts: list[str] = []
    while index < len(lines):
        raw = lines[index].rstrip("\n")
        trimmed = raw.rstrip(" \t")
        if trimmed.endswith("\\") and index + 1 < len(lines):
            parts.append(trimmed[:-1])
            index += 1
            continue
        parts.append(raw)
        index += 1
        break
    return "".join(parts), index


def directive_name(stripped_line: str) -> str | None:
    """The directive keyword, or None for ordinary text lines."""
    text = stripped_line.lstrip(" \t")
    if not text.startswith("#"):
        return None
    rest = text[1:].lstrip(" \t")
    name = ""
    for ch in rest:
        if ch.isalpha():
            name += ch
        else:
            break
    return name  # may be "" for a null directive "#"


def prepare_text(text: str) -> PreparedFile:
    """Strip, splice, and classify one file's content (pure function)."""
    lines = split_lines_keepends(text)
    stripper = CommentStripper()
    prepared: list[PreparedLine] = []
    index = 0
    count = len(lines)
    while index < count:
        start = index + 1
        logical, index = splice_logical_line(lines, index)
        stripped = stripper.strip_line(logical)
        directive = directive_name(stripped)
        if directive is None:
            prepared.append(PreparedLine(
                stripped, start, index, None, None,
                not stripped.strip()))
        else:
            body = stripped.strip()[1:].strip()
            rest = body[len(directive):].strip()
            prepared.append(PreparedLine(
                stripped, start, index, directive, rest, False))
    return PreparedFile(tuple(prepared), count)


#: the substrate's own metrics registry: every counter below is a
#: namespaced instrument (``substrate.prepared.*`` /
#: ``substrate.replay.*``) so the telemetry plane's snapshotter can
#: merge the substrate into service snapshots and sinks for free
_SUBSTRATE_METRICS = MetricsRegistry()

_COUNTER_FIELDS = ("hits", "misses", "stores", "evictions")


class _Counters:
    """Hit/miss/store/eviction counters for one cache.

    A thin view over bound :class:`~repro.obs.metrics.Counter`
    instruments: the hot paths keep their ``stats.hits += 1`` idiom
    (one attribute store on the pre-bound counter, no registry lookup)
    while the values live in a registry and flow through snapshots.
    Standalone caches (tests) get a private registry so they never
    pollute the process-wide ``substrate.*`` instruments.
    """

    __slots__ = ("_hits", "_misses", "_stores", "_evictions")

    def __init__(self, prefix: str = "substrate.cache",
                 registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        for name in _COUNTER_FIELDS:
            setattr(self, f"_{name}",
                    registry.counter(f"{prefix}.{name}"))

    def snapshot(self) -> dict:
        return {name: getattr(self, f"_{name}").value
                for name in _COUNTER_FIELDS}

    def reset(self) -> None:
        for name in _COUNTER_FIELDS:
            getattr(self, f"_{name}").value = 0


def _counter_property(name: str):
    def get(self):
        return getattr(self, f"_{name}").value

    def set(self, value):
        getattr(self, f"_{name}").value = value

    return property(get, set)


for _field in _COUNTER_FIELDS:
    setattr(_Counters, _field, _counter_property(_field))
del _field


#: content -> PreparedFile, LRU by access
_PREPARED: "OrderedDict[str, PreparedFile]" = OrderedDict()
_PREPARED_STATS = _Counters("substrate.prepared", _SUBSTRATE_METRICS)


def prepared_file(text: str) -> PreparedFile:
    """The shared PreparedFile for this content (process-wide LRU)."""
    cached = _PREPARED.get(text)
    if cached is not None:
        _PREPARED_STATS.hits += 1
        _PREPARED.move_to_end(text)
        return cached
    _PREPARED_STATS.misses += 1
    prepared = prepare_text(text)
    _PREPARED[text] = prepared
    _PREPARED_STATS.stores += 1
    while len(_PREPARED) > _PREPARED_CACHE_SIZE:
        _PREPARED.popitem(last=False)
        _PREPARED_STATS.evictions += 1
    return prepared


class HeaderReplay:
    """One cached expansion of a leaf file under one read valuation."""

    __slots__ = ("reads", "delta", "out_text", "emitted_ranges")

    def __init__(self, reads: dict, delta: list, out_text: str,
                 emitted_ranges: tuple) -> None:
        self.reads = reads
        self.delta = delta
        self.out_text = out_text
        self.emitted_ranges = emitted_ranges

    def matches(self, macros) -> bool:
        """True when every recorded read sees the same definition now."""
        lookup = macros.definition
        for name, recorded in self.reads.items():
            if lookup(name) != recorded:
                return False
        return True

    def apply(self, macros, emitted, path: str) -> None:
        """Replay the macro-table delta and the emitted-line set."""
        for op, payload in self.delta:
            if op == "define":
                macros.define(payload)
            else:
                macros.undef(payload)
        add = emitted.add
        for start, end in self.emitted_ranges:
            for physical in range(start, end + 1):
                add((path, physical))


class HeaderReplayCache:
    """(path, content) -> replay variants, probed most-recent first."""

    def __init__(self, max_entries: int = _REPLAY_CACHE_SIZE,
                 max_variants: int = _REPLAY_MAX_VARIANTS,
                 counters: "_Counters | None" = None) -> None:
        self.max_entries = max_entries
        self.max_variants = max_variants
        self._slots: "OrderedDict[tuple[str, str], list[HeaderReplay]]" \
            = OrderedDict()
        self.stats = counters if counters is not None \
            else _Counters("substrate.replay")

    def __len__(self) -> int:
        return sum(len(variants) for variants in self._slots.values())

    def probe(self, path: str, text: str, macros) -> HeaderReplay | None:
        """A replay valid under the current macro table, or None."""
        variants = self._slots.get((path, text))
        if variants:
            for replay in variants:
                if replay.matches(macros):
                    self.stats.hits += 1
                    self._slots.move_to_end((path, text))
                    return replay
        self.stats.misses += 1
        return None

    def store(self, path: str, text: str, recorder,
              out_text: str) -> None:
        """Cache one completed expansion from its read recorder."""
        key = (path, text)
        variants = self._slots.get(key)
        if variants is None:
            variants = []
            self._slots[key] = variants
        replay = HeaderReplay(
            reads=dict(recorder.reads),
            delta=list(recorder.delta),
            out_text=out_text,
            emitted_ranges=tuple(recorder.emitted_ranges))
        variants.insert(0, replay)
        self.stats.stores += 1
        while len(variants) > self.max_variants:
            variants.pop()
            self.stats.evictions += 1
        self._slots.move_to_end(key)
        while len(self._slots) > self.max_entries:
            _, evicted = self._slots.popitem(last=False)
            self.stats.evictions += len(evicted)

    def clear(self) -> None:
        self._slots.clear()


_HEADER_CACHE = HeaderReplayCache(
    counters=_Counters("substrate.replay", _SUBSTRATE_METRICS))


def header_cache() -> HeaderReplayCache:
    """The process-wide replay cache."""
    return _HEADER_CACHE


def metrics_registry() -> MetricsRegistry:
    """The substrate's process-wide ``substrate.*`` registry."""
    return _SUBSTRATE_METRICS


def collect_metrics() -> MetricsRegistry:
    """Snapshot-time collector for the telemetry snapshotter.

    Refreshes the occupancy gauges (counters update inline on the hot
    paths; entry counts are only consulted here) and returns the
    substrate registry so the Snapshotter merges it into each sample.
    """
    _SUBSTRATE_METRICS.gauge("substrate.prepared.entries").set(
        len(_PREPARED))
    _SUBSTRATE_METRICS.gauge("substrate.replay.entries").set(
        len(_HEADER_CACHE))
    return _SUBSTRATE_METRICS


# -- the global fast-path switch -------------------------------------------

#: optional callback fired when :func:`configure` flips the fast path
#: (the service installs one that emits ``substrate.fastpath_changed``)
_EVENT_HOOK = None


def set_event_hook(hook) -> None:
    """Install (or clear, with None) the fast-path change callback.

    ``hook(enabled: bool)`` is invoked after :func:`configure` changes
    the effective mode — not on redundant reconfigurations.
    """
    global _EVENT_HOOK
    _EVENT_HOOK = hook


def _env_default() -> bool:
    value = os.environ.get("JMAKE_CPP_FASTPATH", "1")
    return value.strip().lower() not in ("0", "false", "off", "no")


_ENABLED = _env_default()


def enabled() -> bool:
    """True when the substrate fast path is globally on."""
    return _ENABLED


def configure(enable: bool) -> None:
    """Switch every fast-path level on or off, clearing all caches.

    Off means the byte-identity *reference* pipeline: per-visit
    stripping/splicing, per-call tokenization, no expansion screen, no
    condition fast paths, no prepared/replay caches — exactly the
    pre-fast-path behaviour the differential suite compares against.
    """
    global _ENABLED
    changed = _ENABLED != bool(enable)
    _ENABLED = bool(enable)
    _lexer.set_token_cache_enabled(enable)
    _lexer.set_strip_fastpath_enabled(enable)
    _macro.set_expand_screen_enabled(enable)
    _evaluator.set_condition_fastpath_enabled(enable)
    clear_caches()
    if changed and _EVENT_HOOK is not None:
        _EVENT_HOOK(_ENABLED)


def clear_caches() -> None:
    """Drop every process-wide substrate cache (stats survive)."""
    _PREPARED.clear()
    _HEADER_CACHE.clear()
    _lexer.clear_token_caches()
    _evaluator._split_defined.cache_clear()


def reset_stats() -> None:
    """Zero the substrate counters (benchmark harness hook)."""
    _PREPARED_STATS.reset()
    _HEADER_CACHE.stats.reset()


@contextmanager
def fastpath_disabled():
    """Run a block on the reference pipeline, restoring the prior mode."""
    previous = _ENABLED
    configure(False)
    try:
        yield
    finally:
        configure(previous)


def stats_snapshot() -> dict:
    """Substrate fast-path counters (process-local)."""
    return {
        "enabled": _ENABLED,
        "prepared": _PREPARED_STATS.snapshot(),
        "header_replay": _HEADER_CACHE.stats.snapshot(),
        "prepared_entries": len(_PREPARED),
        "header_replay_entries": len(_HEADER_CACHE),
    }


if not _ENABLED:  # honour JMAKE_CPP_FASTPATH=0 from process start
    configure(False)


def render_stats() -> str:
    """Human-readable one-liner per cache for --cache-stats output."""
    snap = stats_snapshot()
    lines = [f"  fast path enabled: {snap['enabled']}"]
    for name in ("prepared", "header_replay"):
        counters = snap[name]
        total = counters["hits"] + counters["misses"]
        rate = counters["hits"] / total if total else 0.0
        lines.append(
            f"  {name:<14} hits={counters['hits']} "
            f"misses={counters['misses']} stores={counters['stores']} "
            f"evictions={counters['evictions']} hit_rate={rate:.1%}")
    return "\n".join(lines)
