"""C preprocessor substrate.

Implements the subset of ISO C preprocessing the Linux kernel build relies
on for ``make file.i``:

- comment stripping and backslash-newline splicing (:mod:`repro.cpp.lexer`)
- object- and function-like macros with argument substitution,
  stringification, and token pasting (:mod:`repro.cpp.macro`)
- full ``#if`` constant-expression evaluation with ``defined``
  (:mod:`repro.cpp.evaluator`)
- the driver producing ``.i`` text with gcc-style ``# line "file"``
  markers (:mod:`repro.cpp.preprocessor`)
- the substrate fast path: content-keyed prepared files, header-level
  replay, and the global switch gating every reuse level
  (:mod:`repro.cpp.prepared`)

The mutation mechanics of JMake (§III-A of the paper) are preprocessor
semantics: a mutation token inside a macro body must surface at *use*
sites; a token inside a string literal must survive expansion verbatim;
a token under an untaken conditional branch must vanish. This package
implements those semantics for real rather than approximating them.
"""

from repro.cpp import prepared
from repro.cpp.lexer import strip_comments, tokenize
from repro.cpp.macro import Macro, MacroTable
from repro.cpp.preprocessor import PreprocessResult, Preprocessor

__all__ = [
    "Macro",
    "MacroTable",
    "PreprocessResult",
    "Preprocessor",
    "prepared",
    "strip_comments",
    "tokenize",
]
