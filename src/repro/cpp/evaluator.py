"""``#if`` constant-expression evaluation.

The controlling expression is evaluated after ``defined`` handling and
macro expansion, with C semantics: unknown identifiers evaluate to 0,
integer arithmetic, the usual operator precedence including ``?:``.
Division by zero in an ``#if`` is a diagnostic in real compilers; we raise
:class:`PreprocessorError` so the build surfaces it the same way.

Grammar (precedence climbing):

    conditional: logical_or ("?" expr ":" conditional)?
    logical_or : logical_and ("||" logical_and)*
    ...
    unary      : ("!" | "~" | "-" | "+") unary | primary
    primary    : INT | IDENT | "(" expr ")"
"""

from __future__ import annotations

import re

from repro.cpp.lexer import Token, TokenKind, tokenize
from repro.cpp.macro import MacroTable
from repro.errors import PreprocessorError

_INT_RE = re.compile(r"^(0[xX][0-9a-fA-F]+|0[0-7]*|[1-9][0-9]*)[uUlL]*$")


def evaluate_condition(expression: str, macros: MacroTable, *,
                       file: str | None = None,
                       line: int | None = None) -> bool:
    """Evaluate an ``#if``/``#elif`` controlling expression."""
    resolved = _resolve_defined(expression, macros)
    expanded = macros.expand_text(resolved)
    tokens = [token for token in tokenize(expanded) if not token.is_ws]
    parser = _Parser(tokens, file=file, line=line)
    value = parser.parse()
    return value != 0


def _resolve_defined(expression: str, macros: MacroTable) -> str:
    """Replace ``defined X`` / ``defined(X)`` with 0 or 1 before expansion."""
    tokens = tokenize(expression)
    out: list[Token] = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token.kind is TokenKind.IDENT and token.text == "defined":
            j = i + 1
            while j < len(tokens) and tokens[j].is_ws:
                j += 1
            name: str | None = None
            if j < len(tokens) and tokens[j].text == "(":
                k = j + 1
                while k < len(tokens) and tokens[k].is_ws:
                    k += 1
                if k < len(tokens) and tokens[k].kind is TokenKind.IDENT:
                    name = tokens[k].text
                    k += 1
                    while k < len(tokens) and tokens[k].is_ws:
                        k += 1
                    if k < len(tokens) and tokens[k].text == ")":
                        i = k + 1
            elif j < len(tokens) and tokens[j].kind is TokenKind.IDENT:
                name = tokens[j].text
                i = j + 1
            if name is not None:
                out.append(Token(
                    TokenKind.NUMBER,
                    "1" if macros.is_defined(name) else "0"))
                continue
        out.append(token)
        i += 1
    return "".join(token.text for token in out)


class _Parser:
    def __init__(self, tokens: list[Token], *, file: str | None,
                 line: int | None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._file = file
        self._line = line

    def parse(self) -> int:
        """Evaluate the whole expression; error on trailing tokens."""
        if not self._tokens:
            self._fail("empty #if expression")
        value = self._conditional()
        if self._pos != len(self._tokens):
            self._fail(f"trailing tokens in #if expression at "
                       f"{self._peek_text()!r}")
        return value

    # -- helpers ---------------------------------------------------------

    def _fail(self, message: str) -> None:
        raise PreprocessorError(message, file=self._file, line=self._line)

    def _peek_text(self) -> str:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos].text
        return "<eof>"

    def _accept(self, text: str) -> bool:
        if self._pos < len(self._tokens) and \
                self._tokens[self._pos].text == text:
            self._pos += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        if not self._accept(text):
            self._fail(f"expected {text!r}, found {self._peek_text()!r}")

    # -- grammar ---------------------------------------------------------

    def _conditional(self) -> int:
        condition = self._logical_or()
        if self._accept("?"):
            then_value = self._conditional()
            self._expect(":")
            else_value = self._conditional()
            return then_value if condition else else_value
        return condition

    def _logical_or(self) -> int:
        value = self._logical_and()
        while self._accept("||"):
            rhs = self._logical_and()
            value = 1 if (value or rhs) else 0
        return value

    def _logical_and(self) -> int:
        value = self._bit_or()
        while self._accept("&&"):
            rhs = self._bit_or()
            value = 1 if (value and rhs) else 0
        return value

    def _bit_or(self) -> int:
        value = self._bit_xor()
        while self._accept("|"):
            value |= self._bit_xor()
        return value

    def _bit_xor(self) -> int:
        value = self._bit_and()
        while self._accept("^"):
            value ^= self._bit_and()
        return value

    def _bit_and(self) -> int:
        value = self._equality()
        while self._accept("&"):
            value &= self._equality()
        return value

    def _equality(self) -> int:
        value = self._relational()
        while True:
            if self._accept("=="):
                value = 1 if value == self._relational() else 0
            elif self._accept("!="):
                value = 1 if value != self._relational() else 0
            else:
                return value

    def _relational(self) -> int:
        value = self._shift()
        while True:
            if self._accept("<="):
                value = 1 if value <= self._shift() else 0
            elif self._accept(">="):
                value = 1 if value >= self._shift() else 0
            elif self._accept("<"):
                value = 1 if value < self._shift() else 0
            elif self._accept(">"):
                value = 1 if value > self._shift() else 0
            else:
                return value

    def _shift(self) -> int:
        value = self._additive()
        while True:
            if self._accept("<<"):
                value <<= self._additive()
            elif self._accept(">>"):
                value >>= self._additive()
            else:
                return value

    def _additive(self) -> int:
        value = self._multiplicative()
        while True:
            if self._accept("+"):
                value += self._multiplicative()
            elif self._accept("-"):
                value -= self._multiplicative()
            else:
                return value

    def _multiplicative(self) -> int:
        value = self._unary()
        while True:
            if self._accept("*"):
                value *= self._unary()
            elif self._accept("/"):
                divisor = self._unary()
                if divisor == 0:
                    self._fail("division by zero in #if expression")
                value = _trunc_div(value, divisor)
            elif self._accept("%"):
                divisor = self._unary()
                if divisor == 0:
                    self._fail("division by zero in #if expression")
                value = value - _trunc_div(value, divisor) * divisor
            else:
                return value

    def _unary(self) -> int:
        if self._accept("!"):
            return 0 if self._unary() else 1
        if self._accept("~"):
            return ~self._unary()
        if self._accept("-"):
            return -self._unary()
        if self._accept("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> int:
        if self._accept("("):
            value = self._conditional()
            self._expect(")")
            return value
        if self._pos >= len(self._tokens):
            self._fail("unexpected end of #if expression")
        token = self._tokens[self._pos]
        if token.kind is TokenKind.NUMBER:
            match = _INT_RE.match(token.text)
            if not match:
                self._fail(f"bad integer literal {token.text!r}")
            self._pos += 1
            digits = match.group(1)
            if digits.lower().startswith("0x"):
                return int(digits, 16)
            if digits.startswith("0") and len(digits) > 1:
                return int(digits, 8)
            return int(digits, 10)
        if token.kind is TokenKind.CHAR:
            self._pos += 1
            return _char_value(token.text)
        if token.kind is TokenKind.IDENT:
            self._pos += 1
            return 0  # undefined identifiers evaluate to 0 in #if
        self._fail(f"unexpected token {token.text!r} in #if expression")
        raise AssertionError("unreachable")


def _trunc_div(value: int, divisor: int) -> int:
    """Integer division truncating toward zero, as C requires."""
    quotient = abs(value) // abs(divisor)
    if (value < 0) != (divisor < 0):
        quotient = -quotient
    return quotient


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def _char_value(literal: str) -> int:
    inner = literal[1:-1]
    if inner.startswith("\\") and len(inner) >= 2:
        return _ESCAPES.get(inner[1], ord(inner[1]))
    if inner:
        return ord(inner[0])
    return 0
