"""``#if`` constant-expression evaluation.

The controlling expression is evaluated after ``defined`` handling and
macro expansion, with C semantics: unknown identifiers evaluate to 0,
integer arithmetic, the usual operator precedence including ``?:``.
Division by zero in an ``#if`` is a diagnostic in real compilers; we raise
:class:`PreprocessorError` so the build surfaces it the same way.

Grammar (precedence climbing):

    conditional: logical_or ("?" expr ":" conditional)?
    logical_or : logical_and ("||" logical_and)*
    ...
    unary      : ("!" | "~" | "-" | "+") unary | primary
    primary    : INT | IDENT | "(" expr ")"
"""

from __future__ import annotations

import re
from functools import lru_cache

from repro.cpp.lexer import TokenKind, tokenize, tokenize_shared
from repro.cpp.macro import MacroTable
from repro.errors import PreprocessorError

_INT_RE = re.compile(r"^(0[xX][0-9a-fA-F]+|0[0-7]*|[1-9][0-9]*)[uUlL]*$")

#: the dominant kernel condition shapes, resolvable with one dict probe:
#: ``defined(CONFIG_X)`` / ``defined CONFIG_X``, optionally negated
_DEFINED_ONLY_RE = re.compile(
    r"[ \t]*(!?)[ \t]*defined"
    r"(?:[ \t]*\([ \t]*([A-Za-z_][A-Za-z0-9_]*)[ \t]*\)"
    r"|[ \t]+([A-Za-z_][A-Za-z0-9_]*))[ \t]*$")

#: a bare identifier condition (``#if CONFIG_X``)
_IDENT_ONLY_RE = re.compile(r"[ \t]*([A-Za-z_][A-Za-z0-9_]*)[ \t]*$")

#: flipped by repro.cpp.prepared.configure for differential testing
_FASTPATH_ENABLED = True


def set_condition_fastpath_enabled(enabled: bool) -> None:
    """Enable/disable the condition fast paths and the defined-split
    memo."""
    global _FASTPATH_ENABLED
    _FASTPATH_ENABLED = bool(enabled)
    _split_defined.cache_clear()


def evaluate_condition(expression: str, macros: MacroTable, *,
                       file: str | None = None,
                       line: int | None = None) -> bool:
    """Evaluate an ``#if``/``#elif`` controlling expression."""
    if _FASTPATH_ENABLED:
        match = _DEFINED_ONLY_RE.match(expression)
        if match is not None:
            value = macros.is_defined(match.group(2) or match.group(3))
            return not value if match.group(1) else value
        match = _IDENT_ONLY_RE.match(expression)
        if match is not None:
            macro = macros.get(match.group(1))
            if macro is None:
                return False  # undefined identifiers evaluate to 0
            if macro.params is None and macro.body in ("0", "1"):
                return macro.body == "1"
            # non-trivial body: take the full expand/parse path below
        resolved = _resolve_defined(expression, macros)
    else:
        resolved = _resolve_defined_uncached(expression, macros)
    expanded = macros.expand_text(resolved)
    tokens = [token for token in tokenize_shared(expanded)
              if not token.is_ws]
    parser = _Parser(tokens, file=file, line=line)
    value = parser.parse()
    return value != 0


@lru_cache(maxsize=8192)
def _split_defined(expression: str) -> tuple[tuple[str, ...],
                                             tuple[str, ...]]:
    """Split a condition around its ``defined`` operators, memoized.

    Returns ``(pieces, names)`` such that interleaving ``pieces`` with
    the 0/1 value of each name reconstructs exactly what the uncached
    token walk produces: ``pieces[0] + v0 + pieces[1] + v1 + ...``.
    Conditions repeat massively across files and configs, so the walk
    runs once per distinct spelling.
    """
    tokens = tokenize_shared(expression)
    pieces: list[str] = []
    names: list[str] = []
    current: list[str] = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token.kind is TokenKind.IDENT and token.text == "defined":
            j = i + 1
            while j < len(tokens) and tokens[j].is_ws:
                j += 1
            name: str | None = None
            next_i = i
            if j < len(tokens) and tokens[j].text == "(":
                k = j + 1
                while k < len(tokens) and tokens[k].is_ws:
                    k += 1
                if k < len(tokens) and tokens[k].kind is TokenKind.IDENT:
                    name = tokens[k].text
                    k += 1
                    while k < len(tokens) and tokens[k].is_ws:
                        k += 1
                    if k < len(tokens) and tokens[k].text == ")":
                        next_i = k + 1
                    else:
                        name = None
            elif j < len(tokens) and tokens[j].kind is TokenKind.IDENT:
                name = tokens[j].text
                next_i = j + 1
            if name is not None:
                pieces.append("".join(current))
                current = []
                names.append(name)
                i = next_i
                continue
        current.append(token.text)
        i += 1
    pieces.append("".join(current))
    return tuple(pieces), tuple(names)


def _resolve_defined(expression: str, macros: MacroTable) -> str:
    """Replace ``defined X`` / ``defined(X)`` with 0 or 1 (memoized
    split)."""
    pieces, names = _split_defined(expression)
    if not names:
        return pieces[0]
    parts = [pieces[0]]
    for name, piece in zip(names, pieces[1:]):
        parts.append("1" if macros.is_defined(name) else "0")
        parts.append(piece)
    return "".join(parts)


def _resolve_defined_uncached(expression: str,
                              macros: MacroTable) -> str:
    """The original per-call token walk (differential reference path)."""
    tokens = tokenize(expression)
    out: list[str] = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token.kind is TokenKind.IDENT and token.text == "defined":
            j = i + 1
            while j < len(tokens) and tokens[j].is_ws:
                j += 1
            name: str | None = None
            if j < len(tokens) and tokens[j].text == "(":
                k = j + 1
                while k < len(tokens) and tokens[k].is_ws:
                    k += 1
                if k < len(tokens) and tokens[k].kind is TokenKind.IDENT:
                    name = tokens[k].text
                    k += 1
                    while k < len(tokens) and tokens[k].is_ws:
                        k += 1
                    if k < len(tokens) and tokens[k].text == ")":
                        i = k + 1
                    else:
                        # unbalanced "defined(NAME": not the operator;
                        # fall through so the parser reports it instead
                        # of this walk spinning forever
                        name = None
            elif j < len(tokens) and tokens[j].kind is TokenKind.IDENT:
                name = tokens[j].text
                i = j + 1
            if name is not None:
                out.append("1" if macros.is_defined(name) else "0")
                continue
        out.append(token.text)
        i += 1
    return "".join(out)


class _Parser:
    def __init__(self, tokens: list[Token], *, file: str | None,
                 line: int | None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._file = file
        self._line = line

    def parse(self) -> int:
        """Evaluate the whole expression; error on trailing tokens."""
        if not self._tokens:
            self._fail("empty #if expression")
        value = self._conditional()
        if self._pos != len(self._tokens):
            self._fail(f"trailing tokens in #if expression at "
                       f"{self._peek_text()!r}")
        return value

    # -- helpers ---------------------------------------------------------

    def _fail(self, message: str) -> None:
        raise PreprocessorError(message, file=self._file, line=self._line)

    def _peek_text(self) -> str:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos].text
        return "<eof>"

    def _accept(self, text: str) -> bool:
        if self._pos < len(self._tokens) and \
                self._tokens[self._pos].text == text:
            self._pos += 1
            return True
        return False

    def _expect(self, text: str) -> None:
        if not self._accept(text):
            self._fail(f"expected {text!r}, found {self._peek_text()!r}")

    # -- grammar ---------------------------------------------------------

    def _conditional(self) -> int:
        condition = self._logical_or()
        if self._accept("?"):
            then_value = self._conditional()
            self._expect(":")
            else_value = self._conditional()
            return then_value if condition else else_value
        return condition

    def _logical_or(self) -> int:
        value = self._logical_and()
        while self._accept("||"):
            rhs = self._logical_and()
            value = 1 if (value or rhs) else 0
        return value

    def _logical_and(self) -> int:
        value = self._bit_or()
        while self._accept("&&"):
            rhs = self._bit_or()
            value = 1 if (value and rhs) else 0
        return value

    def _bit_or(self) -> int:
        value = self._bit_xor()
        while self._accept("|"):
            value |= self._bit_xor()
        return value

    def _bit_xor(self) -> int:
        value = self._bit_and()
        while self._accept("^"):
            value ^= self._bit_and()
        return value

    def _bit_and(self) -> int:
        value = self._equality()
        while self._accept("&"):
            value &= self._equality()
        return value

    def _equality(self) -> int:
        value = self._relational()
        while True:
            if self._accept("=="):
                value = 1 if value == self._relational() else 0
            elif self._accept("!="):
                value = 1 if value != self._relational() else 0
            else:
                return value

    def _relational(self) -> int:
        value = self._shift()
        while True:
            if self._accept("<="):
                value = 1 if value <= self._shift() else 0
            elif self._accept(">="):
                value = 1 if value >= self._shift() else 0
            elif self._accept("<"):
                value = 1 if value < self._shift() else 0
            elif self._accept(">"):
                value = 1 if value > self._shift() else 0
            else:
                return value

    def _shift(self) -> int:
        value = self._additive()
        while True:
            if self._accept("<<"):
                value <<= self._additive()
            elif self._accept(">>"):
                value >>= self._additive()
            else:
                return value

    def _additive(self) -> int:
        value = self._multiplicative()
        while True:
            if self._accept("+"):
                value += self._multiplicative()
            elif self._accept("-"):
                value -= self._multiplicative()
            else:
                return value

    def _multiplicative(self) -> int:
        value = self._unary()
        while True:
            if self._accept("*"):
                value *= self._unary()
            elif self._accept("/"):
                divisor = self._unary()
                if divisor == 0:
                    self._fail("division by zero in #if expression")
                value = _trunc_div(value, divisor)
            elif self._accept("%"):
                divisor = self._unary()
                if divisor == 0:
                    self._fail("division by zero in #if expression")
                value = value - _trunc_div(value, divisor) * divisor
            else:
                return value

    def _unary(self) -> int:
        if self._accept("!"):
            return 0 if self._unary() else 1
        if self._accept("~"):
            return ~self._unary()
        if self._accept("-"):
            return -self._unary()
        if self._accept("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> int:
        if self._accept("("):
            value = self._conditional()
            self._expect(")")
            return value
        if self._pos >= len(self._tokens):
            self._fail("unexpected end of #if expression")
        token = self._tokens[self._pos]
        if token.kind is TokenKind.NUMBER:
            match = _INT_RE.match(token.text)
            if not match:
                self._fail(f"bad integer literal {token.text!r}")
            self._pos += 1
            digits = match.group(1)
            if digits.lower().startswith("0x"):
                return int(digits, 16)
            if digits.startswith("0") and len(digits) > 1:
                return int(digits, 8)
            return int(digits, 10)
        if token.kind is TokenKind.CHAR:
            self._pos += 1
            return _char_value(token.text)
        if token.kind is TokenKind.IDENT:
            self._pos += 1
            return 0  # undefined identifiers evaluate to 0 in #if
        self._fail(f"unexpected token {token.text!r} in #if expression")
        raise AssertionError("unreachable")


def _trunc_div(value: int, divisor: int) -> int:
    """Integer division truncating toward zero, as C requires."""
    quotient = abs(value) // abs(divisor)
    if (value < 0) != (divisor < 0):
        quotient = -quotient
    return quotient


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def _char_value(literal: str) -> int:
    inner = literal[1:-1]
    if inner.startswith("\\") and len(inner) >= 2:
        return _ESCAPES.get(inner[1], ord(inner[1]))
    if inner:
        return ord(inner[0])
    return 0
