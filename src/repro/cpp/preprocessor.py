"""The preprocessor driver: ``make file.i`` for the substrate.

Given a main file, a file provider (``path -> text | None``), include
search paths, and predefined macros (architecture builtins plus the
``CONFIG_*`` set derived from the active configuration), produce the
``.i`` text with gcc-style ``# <line> "<file>"`` markers.

Behaviour that JMake depends on (paper §III-A/D):

- directive lines (``#define`` and friends) are consumed, so a mutation
  token placed inside a macro *body* appears in the output only where the
  macro is *used*;
- untaken conditional branches emit nothing, so mutations under them
  vanish from the ``.i`` file;
- tokens inside string literals pass through expansion verbatim;
- characters that are not valid C (the mutation character) flow through
  untouched — the preprocessor does not reject them, only the compiler
  front end does.

Two equivalent pipelines live here (DESIGN.md §8). The fast path walks
the content-keyed :class:`~repro.cpp.prepared.PreparedFile` (stripping,
splicing, and directive classification done once per distinct content,
process-wide) and consults the header replay cache for leaf files whose
recorded macro reads still hold. The slow path is the original
per-visit loop, kept verbatim as the byte-identity reference the
differential suite compares against; both produce identical ``.i``
text, emitted-line sets, include lists, and missing-include probes.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Callable

from repro.cpp import prepared as _prepared
from repro.cpp.evaluator import evaluate_condition
from repro.cpp.lexer import CommentStripper, TokenKind, tokenize_shared
from repro.cpp.macro import Macro, MacroTable
from repro.errors import IncludeNotFoundError, PreprocessorError
from repro.util.text import split_lines_keepends

FileProvider = Callable[[str], "str | None"]

_MAX_INCLUDE_DEPTH = 40


@dataclass
class PreprocessResult:
    """Output of one preprocessing run."""

    main_file: str
    text: str
    included_files: list[str]
    macros: MacroTable
    #: (file, line) pairs of source lines that contributed output text.
    emitted_lines: set[tuple[str, int]] = field(default_factory=set)
    #: include candidates probed and found absent, in probe order; the
    #: build cache records these so that *creating* a file that would
    #: shadow an include search path invalidates dependent entries.
    missing_includes: list[str] = field(default_factory=list)

    def closure_paths(self) -> list[str]:
        """Main file plus transitive includes, deduplicated in order."""
        seen: set[str] = set()
        ordered: list[str] = []
        for path in [self.main_file, *self.included_files]:
            if path not in seen:
                seen.add(path)
                ordered.append(path)
        return ordered

    def contains(self, needle: str) -> bool:
        """True when the needle occurs in the .i text."""
        return needle in self.text

    def defined_macro_names(self) -> list[str]:
        """Names defined at end of preprocessing."""
        return self.macros.names()


@dataclass
class _CondState:
    """State of one open conditional group."""

    parent_active: bool
    taken: bool          # some branch already taken
    active: bool         # current branch emitting
    seen_else: bool = False


class Preprocessor:
    """Preprocess translation units against a virtual filesystem."""

    def __init__(self, provider: FileProvider,
                 include_paths: list[str] | None = None,
                 predefined: dict[str, str] | None = None,
                 fastpath: bool | None = None) -> None:
        self._provider = provider
        self._include_paths = list(include_paths or [])
        self._predefined = dict(predefined or {})
        #: None = follow the global switch; True/False pins this instance
        self._fastpath = fastpath
        self._fast_active = False
        #: include candidates probed and absent during the current run
        self._missing_probes: list[str] = []

    def preprocess(self, main_file: str) -> PreprocessResult:
        """Produce the .i result for one translation unit."""
        text = self._provider(main_file)
        if text is None:
            raise IncludeNotFoundError("no such file", file=main_file)
        self._fast_active = _prepared.enabled() \
            if self._fastpath is None else self._fastpath
        macros = MacroTable(self._predefined)
        out: list[str] = []
        included: list[str] = []
        emitted: set[tuple[str, int]] = set()
        self._missing_probes = []
        self._process_file(main_file, text, macros, out, included, emitted,
                           depth=0)
        return PreprocessResult(
            main_file=main_file,
            text="".join(out),
            included_files=included,
            macros=macros,
            emitted_lines=emitted,
            missing_includes=list(self._missing_probes),
        )

    # -- file processing --------------------------------------------------

    def _process_file(self, path: str, text: str, macros: MacroTable,
                      out: list[str], included: list[str],
                      emitted: set[tuple[str, int]], depth: int) -> None:
        if depth > _MAX_INCLUDE_DEPTH:
            raise PreprocessorError("include depth limit exceeded", file=path)
        if not self._fast_active:
            self._process_file_slow(path, text, macros, out, included,
                                    emitted, depth)
            return
        pfile = _prepared.prepared_file(text)
        recorder = None
        if pfile.leaf:
            replay = _prepared.header_cache().probe(path, text, macros)
            if replay is not None:
                out.append(replay.out_text)
                replay.apply(macros, emitted, path)
                return
            recorder = macros.begin_recording()
        mark = len(out)
        try:
            self._process_prepared(path, pfile, macros, out, included,
                                   emitted, depth, recorder)
        except BaseException:
            if recorder is not None:
                macros.end_recording()
            raise
        if recorder is not None:
            macros.end_recording()
            _prepared.header_cache().store(path, text, recorder,
                                           "".join(out[mark:]))

    def _process_prepared(self, path: str,
                          pfile: "_prepared.PreparedFile",
                          macros: MacroTable, out: list[str],
                          included: list[str],
                          emitted: set[tuple[str, int]], depth: int,
                          recorder) -> None:
        """The fast loop over a prepared (pre-stripped) file."""
        out.append(f'# 1 "{path}"\n')
        conditions: list[_CondState] = []
        pending_marker = False
        active = True
        expand_text = macros.expand_text
        out_append = out.append
        emitted_add = emitted.add
        for pline in pfile.lines:
            directive = pline.directive
            if directive is not None:
                pending_marker = self._handle_directive(
                    directive, pline.rest, path, pline.start, macros,
                    conditions, out, included, emitted, depth,
                    pending_marker)
                active = not conditions or _all_active(conditions)
                continue
            if not active:
                pending_marker = True
                continue
            if pline.blank:
                out_append("\n")
                continue
            if pending_marker:
                out_append(f'# {pline.start} "{path}"\n')
                pending_marker = False
            expanded = expand_text(pline.text)
            if "__LINE__" in expanded or "__FILE__" in expanded:
                # Positional builtins resolve at the use site, whether
                # written directly or produced by a macro expansion.
                expanded = _resolve_positional_builtins(
                    expanded, path, pline.start)
            out_append(expanded + "\n")
            start = pline.start
            end = pline.end
            if recorder is not None:
                recorder.emitted_ranges.append((start, end))
            for physical in range(start, end + 1):
                emitted_add((path, physical))
        if conditions:
            raise PreprocessorError(
                "unterminated conditional (missing #endif)",
                file=path, line=pfile.line_count)

    def _process_file_slow(self, path: str, text: str, macros: MacroTable,
                           out: list[str], included: list[str],
                           emitted: set[tuple[str, int]],
                           depth: int) -> None:
        """The original per-visit loop (differential reference path)."""
        out.append(f'# 1 "{path}"\n')
        lines = split_lines_keepends(text)
        stripper = CommentStripper()
        conditions: list[_CondState] = []
        index = 0
        pending_marker = False
        while index < len(lines):
            start_line = index + 1
            logical, index = self._splice(lines, index)
            stripped = stripper.strip_line(logical)
            directive = _directive_name(stripped)
            if directive is not None:
                body = stripped.strip()[1:].strip()  # drop '#'
                rest = body[len(directive):].strip()
                pending_marker = self._handle_directive(
                    directive, rest, path, start_line, macros,
                    conditions, out, included, emitted, depth,
                    pending_marker)
                continue
            if not _all_active(conditions):
                pending_marker = True
                continue
            if not stripped.strip():
                out.append("\n")
                continue
            if pending_marker:
                out.append(f'# {start_line} "{path}"\n')
                pending_marker = False
            text_line = stripped.rstrip("\n")
            expanded = macros.expand_text(text_line)
            if "__LINE__" in expanded or "__FILE__" in expanded:
                # Positional builtins resolve at the use site, whether
                # written directly or produced by a macro expansion.
                expanded = _resolve_positional_builtins(
                    expanded, path, start_line)
            out.append(expanded + "\n")
            for physical in range(start_line, index + 1):
                emitted.add((path, physical))
        if conditions:
            raise PreprocessorError(
                "unterminated conditional (missing #endif)",
                file=path, line=len(lines))

    @staticmethod
    def _splice(lines: list[str], index: int) -> tuple[str, int]:
        """Join backslash-continued physical lines into one logical line."""
        return _prepared.splice_logical_line(lines, index)

    # -- directives ---------------------------------------------------------

    def _handle_directive(self, keyword: str, rest: str, path: str,
                          line: int, macros: MacroTable,
                          conditions: list[_CondState], out: list[str],
                          included: list[str],
                          emitted: set[tuple[str, int]], depth: int,
                          pending_marker: bool) -> bool:
        active = _all_active(conditions)

        if keyword in ("ifdef", "ifndef"):
            symbol = rest.split()[0] if rest.split() else ""
            if not symbol:
                raise PreprocessorError(f"#{keyword} without symbol",
                                        file=path, line=line)
            value = macros.is_defined(symbol)
            if keyword == "ifndef":
                value = not value
            taken = active and value
            conditions.append(_CondState(
                parent_active=active, taken=taken, active=taken))
            return True
        if keyword == "if":
            value = active and evaluate_condition(rest, macros,
                                                  file=path, line=line)
            conditions.append(_CondState(
                parent_active=active, taken=value, active=value))
            return True
        if keyword == "elif":
            if not conditions:
                raise PreprocessorError("#elif without #if",
                                        file=path, line=line)
            state = conditions[-1]
            if state.seen_else:
                raise PreprocessorError("#elif after #else",
                                        file=path, line=line)
            if state.parent_active and not state.taken:
                value = evaluate_condition(rest, macros, file=path, line=line)
                state.active = value
                state.taken = value
            else:
                state.active = False
            return True
        if keyword == "else":
            if not conditions:
                raise PreprocessorError("#else without #if",
                                        file=path, line=line)
            state = conditions[-1]
            if state.seen_else:
                raise PreprocessorError("duplicate #else",
                                        file=path, line=line)
            state.seen_else = True
            state.active = state.parent_active and not state.taken
            state.taken = state.taken or state.active
            return True
        if keyword == "endif":
            if not conditions:
                raise PreprocessorError("#endif without #if",
                                        file=path, line=line)
            conditions.pop()
            return True

        if not active:
            return True

        if keyword == "define":
            macros.define(Macro.parse_define(rest, file=path, line=line))
            return True
        if keyword == "undef":
            symbol = rest.split()[0] if rest.split() else ""
            macros.undef(symbol)
            return True
        if keyword == "include":
            target, angled = _parse_include_target(rest, macros,
                                                   file=path, line=line)
            resolved = self._resolve_include(target, angled, path)
            text = self._provider(resolved) if resolved is not None else None
            if text is None:
                raise IncludeNotFoundError(
                    f"cannot find include {'<' if angled else chr(34)}"
                    f"{target}{'>' if angled else chr(34)}",
                    file=path, line=line)
            included.append(resolved)
            self._process_file(resolved, text, macros, out, included,
                               emitted, depth + 1)
            out.append(f'# {line + 1} "{path}"\n')
            return False
        if keyword == "error":
            raise PreprocessorError(f"#error {rest}", file=path, line=line)
        if keyword in ("warning", "pragma", "line", ""):
            return pending_marker
        raise PreprocessorError(f"unknown directive #{keyword}",
                                file=path, line=line)

    def _resolve_include(self, target: str, angled: bool,
                         including_file: str) -> str | None:
        candidates: list[str] = []
        if not angled:
            base = posixpath.dirname(including_file)
            candidates.append(posixpath.normpath(posixpath.join(base, target))
                              if base else target)
        for search in self._include_paths:
            candidates.append(posixpath.normpath(
                posixpath.join(search, target)))
        for candidate in candidates:
            if self._provider(candidate) is not None:
                return candidate
            self._missing_probes.append(candidate)
        return None


def _resolve_positional_builtins(line: str, path: str,
                                 lineno: int) -> str:
    """Substitute ``__LINE__``/``__FILE__`` as identifier tokens only
    (never inside string or character literals)."""
    if "__LINE__" not in line and "__FILE__" not in line:
        return line
    parts: list[str] = []
    for token in tokenize_shared(line):
        if token.kind is TokenKind.IDENT and token.text == "__LINE__":
            parts.append(str(lineno))
        elif token.kind is TokenKind.IDENT and token.text == "__FILE__":
            parts.append(f'"{path}"')
        else:
            parts.append(token.text)
    return "".join(parts)


def _all_active(conditions: list[_CondState]) -> bool:
    return all(state.active for state in conditions)


def _directive_name(stripped_line: str) -> str | None:
    """The directive keyword, or None for ordinary text lines."""
    return _prepared.directive_name(stripped_line)


def _parse_include_target(rest: str, macros: MacroTable, *,
                          file: str, line: int) -> tuple[str, bool]:
    text = rest.strip()
    if not (text.startswith('"') or text.startswith("<")):
        # Computed include: expand macros first (the kernel uses these
        # for asm-generic redirects).
        text = macros.expand_text(text).strip()
    if text.startswith('"'):
        closing = text.find('"', 1)
        if closing == -1:
            raise PreprocessorError("unterminated include filename",
                                    file=file, line=line)
        return text[1:closing], False
    if text.startswith("<"):
        closing = text.find(">", 1)
        if closing == -1:
            raise PreprocessorError("unterminated include filename",
                                    file=file, line=line)
        return text[1:closing], True
    raise PreprocessorError(f"bad include target {rest!r}",
                            file=file, line=line)
