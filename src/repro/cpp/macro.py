"""Macro definition, storage, and expansion.

Expansion follows the ISO C model closely enough for kernel-style code:

- object-like and function-like macros, including zero-argument ones;
- argument substitution with prior expansion of arguments (except as
  operands of ``#`` and ``##``);
- ``#`` stringification and ``##`` token pasting;
- recursion is cut with the standard "blue paint": a macro name is not
  re-expanded while its own expansion is in progress;
- text inside string/char literals is never expanded — this is what lets
  JMake's mutation payload survive macro rewriting verbatim (§III-A);
- ``__VA_ARGS__`` variadic macros (the kernel uses them in logging
  helpers).

Perf notes (DESIGN.md §8): :meth:`MacroTable.expand_text` screens the
line with a raw identifier scan first and returns it unchanged when no
identifier names a live macro — the overwhelmingly common case in
kernel-style code — skipping tokenize→expand→untokenize entirely. The
screen is conservative: any identifier-shaped substring that matches a
macro name sends the line down the full expansion path, so it can never
change output. The table also supports *read recording*
(:meth:`MacroTable.begin_recording`): every name whose presence or
definition influenced processing is captured, which is what makes the
header-level replay cache in :mod:`repro.cpp.prepared` sound.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache

from repro.cpp.lexer import (
    Token,
    TokenKind,
    tokenize,
    tokenize_shared,
    untokenize,
)
from repro.errors import MacroError

#: maximal identifier-shaped runs; a superset of the IDENT tokens the
#: tokenizer would produce, which is what makes the screen conservative
_IDENT_SCAN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: flipped by repro.cpp.prepared.configure for differential testing
_SCREEN_ENABLED = True


def set_expand_screen_enabled(enabled: bool) -> None:
    """Enable/disable the expand_text identifier screen."""
    global _SCREEN_ENABLED
    _SCREEN_ENABLED = bool(enabled)


@lru_cache(maxsize=16384)
def _predefined_macro(name: str, body: str) -> "Macro":
    """Shared object-like Macro for a predefined (name, body) pair.

    Every :class:`MacroTable` built from the same arch/config predefines
    reuses the same frozen Macro objects instead of re-allocating
    hundreds of them per translation unit.
    """
    return Macro(name=name, body=body)


class _ReadRecorder:
    """Captures one file's macro reads and writes for replay caching.

    ``reads`` maps each externally-read name to the definition observed
    at first read (None = absent); names the file itself (re)defined
    first are internal and never recorded. ``delta`` is the ordered
    define/undef log to replay, and ``emitted_ranges`` collects the
    (start, end) physical-line ranges the file emitted.
    """

    __slots__ = ("reads", "delta", "written", "emitted_ranges")

    def __init__(self) -> None:
        self.reads: dict[str, "Macro | None"] = {}
        self.delta: list[tuple[str, object]] = []
        self.written: set[str] = set()
        self.emitted_ranges: list[tuple[int, int]] = []

    def note(self, name: str, macro: "Macro | None") -> None:
        """Record one read (first observation wins; writes shadow)."""
        if name not in self.written and name not in self.reads:
            self.reads[name] = macro


@dataclass(frozen=True)
class Macro:
    """One ``#define``.

    ``params`` is ``None`` for object-like macros; an empty tuple means a
    function-like macro with zero parameters, which is a distinct thing
    (``#define F() x`` vs ``#define F x``).
    """

    name: str
    body: str
    params: tuple[str, ...] | None = None
    variadic: bool = False
    file: str | None = None
    line: int | None = None

    @property
    def is_function_like(self) -> bool:
        """True when the macro takes parameters."""
        return self.params is not None

    @classmethod
    def parse_define(cls, text: str, *, file: str | None = None,
                     line: int | None = None) -> "Macro":
        """Parse the text after ``#define`` on a spliced logical line."""
        stripped = text.strip()
        if not stripped:
            raise MacroError("empty #define", file=file, line=line)
        tokens = tokenize_shared(stripped)
        if not tokens or tokens[0].kind is not TokenKind.IDENT:
            raise MacroError(f"macro name expected in {stripped!r}",
                             file=file, line=line)
        name = tokens[0].text
        rest = tokens[1:]
        # Function-like only when "(" immediately follows the name.
        if rest and rest[0].text == "(" and not rest[0].is_ws:
            params, body_tokens = cls._parse_params(rest[1:], name,
                                                    file=file, line=line)
            body = untokenize(body_tokens).strip()
            variadic = params and params[-1] == "..."
            if variadic:
                params = params[:-1]
            return cls(name=name, body=body, params=tuple(params),
                       variadic=bool(variadic), file=file, line=line)
        body = untokenize(rest).strip()
        return cls(name=name, body=body, params=None, file=file, line=line)

    @staticmethod
    def _parse_params(tokens, name: str, *,
                      file: str | None, line: int | None):
        params: list[str] = []
        i = 0
        expecting_name = True
        while i < len(tokens):
            token = tokens[i]
            if token.is_ws:
                i += 1
                continue
            if token.text == ")":
                return params, tokens[i + 1:]
            if expecting_name:
                if token.kind is TokenKind.IDENT or token.text == "...":
                    params.append(token.text)
                    expecting_name = False
                else:
                    raise MacroError(
                        f"bad parameter list for macro {name}",
                        file=file, line=line)
            else:
                if token.text != ",":
                    raise MacroError(
                        f"bad parameter list for macro {name}",
                        file=file, line=line)
                expecting_name = True
            i += 1
        raise MacroError(f"unterminated parameter list for macro {name}",
                         file=file, line=line)


class MacroTable:
    """The set of live macro definitions during preprocessing."""

    def __init__(self, predefined: dict[str, str] | None = None) -> None:
        self._macros: dict[str, Macro] = {}
        self._recorder: _ReadRecorder | None = None
        if predefined:
            self._macros = {name: _predefined_macro(name, body)
                            for name, body in predefined.items()}

    def __getstate__(self):
        # Recorders are transient per-file state; never pickle them
        # (build-cache payloads embed MacroTables).
        return {"_macros": self._macros}

    def __setstate__(self, state) -> None:
        self._macros = state["_macros"]
        self._recorder = None

    # -- read recording (header replay support) --------------------------

    def begin_recording(self) -> _ReadRecorder:
        """Start capturing reads/writes; returns the live recorder."""
        recorder = _ReadRecorder()
        self._recorder = recorder
        return recorder

    def end_recording(self) -> None:
        """Stop capturing (the recorder keeps its collected state)."""
        self._recorder = None

    def definition(self, name: str) -> Macro | None:
        """The definition, or None — never recorded as a read."""
        return self._macros.get(name)

    def define(self, macro: Macro) -> None:
        """Install or replace a definition."""
        self._macros[macro.name] = macro
        recorder = self._recorder
        if recorder is not None:
            recorder.delta.append(("define", macro))
            recorder.written.add(macro.name)

    def undef(self, name: str) -> None:
        """Remove a definition (no-op when absent)."""
        self._macros.pop(name, None)
        recorder = self._recorder
        if recorder is not None:
            recorder.delta.append(("undef", name))
            recorder.written.add(name)

    def is_defined(self, name: str) -> bool:
        """True when the name has a live definition."""
        recorder = self._recorder
        if recorder is not None:
            recorder.note(name, self._macros.get(name))
        return name in self._macros

    def get(self, name: str) -> Macro | None:
        """The definition, or None."""
        macro = self._macros.get(name)
        recorder = self._recorder
        if recorder is not None:
            recorder.note(name, macro)
        return macro

    def names(self) -> list[str]:
        """Sorted names of all live definitions."""
        return sorted(self._macros)

    def snapshot(self) -> "MacroTable":
        """An independent copy of the current table."""
        clone = MacroTable()
        clone._macros = dict(self._macros)
        return clone

    # -- expansion -------------------------------------------------------

    def expand_text(self, text: str) -> str:
        """Fully macro-expand one logical line of non-directive text."""
        if _SCREEN_ENABLED and not self._mentions_macro(text):
            # No identifier in the line names a live macro: expansion is
            # the identity (tokenize/untokenize round-trips exactly).
            return text
        return untokenize(self._expand_tokens(tokenize_shared(text),
                                              frozenset()))

    def _mentions_macro(self, text: str) -> bool:
        """True when any identifier-shaped run names a live macro.

        The scan over raw text finds a superset of the IDENT tokens the
        tokenizer would produce (e.g. it also matches inside string
        literals), so a False is always safe while a True merely takes
        the full expansion path.
        """
        macros = self._macros
        recorder = self._recorder
        if recorder is None:
            for match in _IDENT_SCAN_RE.finditer(text):
                if match.group() in macros:
                    return True
            return False
        for match in _IDENT_SCAN_RE.finditer(text):
            name = match.group()
            macro = macros.get(name)
            recorder.note(name, macro)
            if macro is not None:
                return True
        return False

    def _expand_tokens(self, tokens,
                       hidden: frozenset[str]) -> list[Token]:
        out: list[Token] = []
        macros = self._macros
        recorder = self._recorder
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if token.kind is not TokenKind.IDENT:
                out.append(token)
                i += 1
                continue
            macro = macros.get(token.text)
            if recorder is not None:
                recorder.note(token.text, macro)
            if macro is None or token.text in hidden:
                out.append(token)
                i += 1
                continue
            if not macro.is_function_like:
                expansion = self._expand_tokens(
                    tokenize_shared(macro.body), hidden | {macro.name})
                out.extend(expansion)
                i += 1
                continue
            # Function-like: require "(" (skipping whitespace); otherwise
            # the name is ordinary text.
            j = i + 1
            while j < len(tokens) and tokens[j].is_ws:
                j += 1
            if j >= len(tokens) or tokens[j].text != "(":
                out.append(token)
                i += 1
                continue
            args, next_index = self._collect_args(tokens, j, macro)
            replaced = self._substitute(macro, args, hidden)
            out.extend(self._expand_tokens(replaced, hidden | {macro.name}))
            i = next_index
        return out

    def _collect_args(self, tokens, open_index: int,
                      macro: Macro) -> tuple[list[list[Token]], int]:
        """Collect comma-separated argument token lists at paren depth 1."""
        args: list[list[Token]] = [[]]
        depth = 0
        i = open_index
        while i < len(tokens):
            token = tokens[i]
            if token.text == "(":
                depth += 1
                if depth > 1:
                    args[-1].append(token)
            elif token.text == ")":
                depth -= 1
                if depth == 0:
                    i += 1
                    break
                args[-1].append(token)
            elif token.text == "," and depth == 1:
                if macro.variadic and len(args) > len(macro.params):
                    args[-1].append(token)  # extra commas go to __VA_ARGS__
                else:
                    args.append([])
            else:
                args[-1].append(token)
            i += 1
        else:
            raise MacroError(
                f"unterminated invocation of macro {macro.name}",
                file=macro.file, line=macro.line)
        # Trim leading/trailing whitespace of each argument.
        trimmed = [_trim_ws(arg) for arg in args]
        if macro.params is not None:
            expected = len(macro.params) + (1 if macro.variadic else 0)
            if len(trimmed) == 1 and not trimmed[0] and expected == 0:
                trimmed = []
            if not macro.variadic and len(trimmed) != len(macro.params):
                raise MacroError(
                    f"macro {macro.name} expects {len(macro.params)} "
                    f"arguments, got {len(trimmed)}",
                    file=macro.file, line=macro.line)
        return trimmed, i

    def _substitute(self, macro: Macro, args: list[list[Token]],
                    hidden: frozenset[str]) -> list[Token]:
        assert macro.params is not None
        by_name: dict[str, list[Token]] = {}
        for index, param in enumerate(macro.params):
            by_name[param] = args[index] if index < len(args) else []
        if macro.variadic:
            extra = args[len(macro.params):]
            va: list[Token] = []
            for index, arg in enumerate(extra):
                if index:
                    va.append(Token(TokenKind.PUNCT, ","))
                    va.append(Token(TokenKind.WS, " "))
                va.extend(arg)
            by_name["__VA_ARGS__"] = va

        body = tokenize_shared(macro.body)
        out: list[Token] = []
        i = 0
        while i < len(body):
            token = body[i]
            # Stringification: # param
            if token.text == "#" and token.kind is TokenKind.PUNCT:
                j = i + 1
                while j < len(body) and body[j].is_ws:
                    j += 1
                if (j < len(body) and body[j].kind is TokenKind.IDENT
                        and body[j].text in by_name):
                    out.append(_stringify(by_name[body[j].text]))
                    i = j + 1
                    continue
            # Token pasting: A ## B
            if token.text == "##":
                while out and out[-1].is_ws:
                    out.pop()
                j = i + 1
                while j < len(body) and body[j].is_ws:
                    j += 1
                if not out or j >= len(body):
                    raise MacroError(
                        f"'##' at boundary of macro {macro.name} body",
                        file=macro.file, line=macro.line)
                left = out.pop()
                right = body[j]
                right_tokens = (by_name[right.text]
                                if right.kind is TokenKind.IDENT
                                and right.text in by_name
                                else [right])
                left_tokens = (by_name[left.text]
                               if left.kind is TokenKind.IDENT
                               and left.text in by_name
                               else [left])
                out.extend(_paste(left_tokens, right_tokens))
                i = j + 1
                continue
            if token.kind is TokenKind.IDENT and token.text in by_name:
                # Arguments are macro-expanded before substitution unless
                # adjacent to # or ## (handled above).
                next_meaningful = _next_non_ws(body, i + 1)
                if next_meaningful is not None and next_meaningful.text == "##":
                    out.extend(by_name[token.text])
                else:
                    out.extend(self._expand_tokens(
                        by_name[token.text], hidden))
                i += 1
                continue
            out.append(token)
            i += 1
        return out


def _trim_ws(tokens):
    start = 0
    end = len(tokens)
    while start < end and tokens[start].is_ws:
        start += 1
    while end > start and tokens[end - 1].is_ws:
        end -= 1
    return tokens[start:end]


def _next_non_ws(tokens, index: int) -> Token | None:
    while index < len(tokens):
        if not tokens[index].is_ws:
            return tokens[index]
        index += 1
    return None


def _stringify(tokens: list[Token]) -> Token:
    inner = untokenize(_trim_ws(tokens))
    escaped = inner.replace("\\", "\\\\").replace('"', '\\"')
    return Token(TokenKind.STRING, f'"{escaped}"')


def _paste(left: list[Token], right: list[Token]) -> list[Token]:
    if not left:
        return list(right)
    if not right:
        return list(left)
    glue = left[-1].text + right[0].text
    pasted = tokenize(glue)
    return list(left[:-1]) + pasted + list(right[1:])
