"""Per-architecture shard workers.

Every architecture maps to exactly one shard (stable CRC32 hashing), so
all config/preprocess/certify units for that architecture execute
serially on the same worker. That serialization is the point: a shard
re-uses the shared BuildCache's allyesconfig state across *requests*
(the solved config and warm preprocess entries of request A are hits
for request B), instead of every request solving the same
configurations in a private cache.

Shards never touch verdict state. Each request keeps its own
BuildSystem/clock/injector/quarantine; the shard's own
:class:`~repro.faults.resilience.Quarantine` is an operational
aggregation — "which architectures are flaking across traffic" — fed
by :meth:`ShardPool.absorb_quarantine` after each request and never
read back by the pipeline.
"""

from __future__ import annotations

import asyncio
import zlib

from repro.faults.resilience import Quarantine
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER


class ArchShard:
    """One worker coroutine plus its bounded unit queue."""

    def __init__(self, index: int, *, queue_limit: int = 128,
                 metrics=None, tracer=None) -> None:
        self.index = index
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_limit)
        #: ops view of arch flakiness across requests (never verdicts)
        self.quarantine = Quarantine()
        self.units_run = 0
        self.batches_run = 0
        #: architectures this shard has executed units for
        self.archs_seen: set[str] = set()
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._task: "asyncio.Task | None" = None

    def start(self) -> None:
        """Spawn the worker task on the running loop."""
        self._task = asyncio.get_running_loop().create_task(
            self._worker(), name=f"shard-{self.index}")

    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            self._gauge_depth()
            try:
                job()
            finally:
                self.queue.task_done()
            # yield so request coroutines can consume results between
            # jobs (everything is cooperative and single-threaded)
            await asyncio.sleep(0)

    def _gauge_depth(self) -> None:
        self._metrics.gauge(
            f"service.shard.{self.index}.queue_depth").set(
                self.queue.qsize())

    async def enqueue(self, job) -> None:
        """Queue one job; awaits (backpressure) while the queue is full."""
        await self.queue.put(job)
        self._gauge_depth()

    async def submit(self, unit) -> object:
        """Run one work unit on this shard; returns its result."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def job() -> None:
            with self._tracer.span("service.unit", shard=self.index,
                                   stage=unit.stage, arch=unit.arch):
                try:
                    result = unit.run()
                except BaseException as error:  # thunks shouldn't raise
                    if not future.cancelled():
                        future.set_exception(error)
                    return
            self.units_run += 1
            if unit.arch:
                self.archs_seen.add(unit.arch)
            self._metrics.counter(
                f"service.shard.{self.index}.units").inc()
            if not future.cancelled():
                future.set_result(result)

        await self.enqueue(job)
        return await future

    async def stop(self) -> None:
        """Cancel the worker task and wait for it to die."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    def stats(self) -> dict:
        """Queue depth, units run, batches run, archs, quarantine."""
        return {
            "queue_depth": self.queue.qsize(),
            "units_run": self.units_run,
            "batches_run": self.batches_run,
            "archs": sorted(self.archs_seen),
            "quarantined": self.quarantine.archs(),
        }


def shard_index(arch: str, shard_count: int) -> int:
    """Stable arch → shard mapping (CRC32, not Python's salted hash)."""
    return zlib.crc32(arch.encode("utf-8")) % shard_count


class ShardPool:
    """The fixed set of shard workers one service runs."""

    def __init__(self, shard_count: int, *, queue_limit: int = 128,
                 metrics=None, tracer=None) -> None:
        if shard_count < 1:
            raise ValueError(
                f"shard_count must be a positive integer, "
                f"got {shard_count}")
        self.shards = [ArchShard(index, queue_limit=queue_limit,
                                 metrics=metrics, tracer=tracer)
                       for index in range(shard_count)]

    def shard_for(self, arch: str) -> ArchShard:
        """The shard owning one architecture."""
        return self.shards[shard_index(arch, len(self.shards))]

    def start(self) -> None:
        """Start every shard worker."""
        for shard in self.shards:
            shard.start()

    async def join(self) -> None:
        """Wait until every shard queue is fully processed."""
        for shard in self.shards:
            await shard.queue.join()

    async def stop(self) -> None:
        """Cancel every worker."""
        for shard in self.shards:
            await shard.stop()

    def absorb_quarantine(self, quarantine: Quarantine) -> None:
        """Fold a finished request's quarantine into the owning shards'
        operational views (routing each arch to its shard)."""
        for arch in quarantine.archs():
            self.shard_for(arch).quarantine.note(
                arch, quarantine.reason(arch))

    def stats(self) -> list[dict]:
        """Per-shard stats dicts, in shard order."""
        return [shard.stats() for shard in self.shards]
