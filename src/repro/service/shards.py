"""Per-architecture shard workers.

Every architecture maps to exactly one shard (stable CRC32 hashing), so
all config/preprocess/certify units for that architecture execute
serially on the same worker. That serialization is the point: a shard
re-uses the shared BuildCache's allyesconfig state across *requests*
(the solved config and warm preprocess entries of request A are hits
for request B), instead of every request solving the same
configurations in a private cache.

Shards never touch verdict state. Each request keeps its own
BuildSystem/clock/injector/quarantine; the shard's own
:class:`~repro.faults.resilience.Quarantine` is an operational
aggregation — "which architectures are flaking across traffic" — fed
by :meth:`ShardPool.absorb_quarantine` after each request and never
read back by the pipeline.

Supervision hooks (PR 5): every job pickup stamps a heartbeat and
records the *claimed* job before running it, so the
:class:`~repro.service.supervisor.ShardSupervisor` can tell a crashed
or hung worker from an idle one and requeue the claimed job without
losing it. The ``worker_crash``/``worker_hang`` fault kinds fire here,
keyed by (shard index, pickup sequence) — deterministic across runs,
independent of wall-clock time. A crash fires *before* the job runs,
so requeueing it is trivially idempotent (the unit never started).
When a shard's circuit breaker is open, :meth:`ArchShard.enqueue` runs
jobs inline instead of queueing them — the degraded-to-sequential
``run_units`` path.
"""

from __future__ import annotations

import asyncio
import zlib

from repro.errors import WorkerCrashError
from repro.faults.inject import NULL_INJECTOR
from repro.faults.plan import (
    KIND_WORKER_CRASH,
    KIND_WORKER_HANG,
    SITE_WORKER,
)
from repro.faults.resilience import Quarantine
from repro.obs.logcfg import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

_logger = get_logger("service.shards")


class ArchShard:
    """One worker coroutine plus its bounded unit queue."""

    def __init__(self, index: int, *, queue_limit: int = 128,
                 metrics=None, tracer=None, injector=None) -> None:
        self.index = index
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_limit)
        #: ops view of arch flakiness across requests (never verdicts)
        self.quarantine = Quarantine()
        self.units_run = 0
        self.batches_run = 0
        #: architectures this shard has executed units for
        self.archs_seen: set[str] = set()
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: service-level injector owning the ``worker`` site (process
        #: faults only; step-site faults stay with per-request injectors)
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._task: "asyncio.Task | None" = None
        # -- supervision state ------------------------------------------------
        #: job pickups over the shard's lifetime (fault-injection key)
        self.pickups = 0
        #: the job currently held by the worker (None when idle); the
        #: supervisor requeues this on crash/hang
        self.claimed = None
        #: loop time of the last worker heartbeat (pickup/completion)
        self.last_beat: float = 0.0
        #: True while an injected hang has the worker parked
        self.hung = False
        self.crashes = 0
        self.hangs = 0
        self.restarts = 0
        #: circuit breaker: open -> jobs run inline, worker bypassed
        self.breaker_open = False
        self.breaker_reason = ""
        #: jobs executed inline because the breaker was open
        self.inline_jobs = 0
        self._stall: "asyncio.Event | None" = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker task on the running loop."""
        self.hung = False
        self._stall = asyncio.Event()
        self.beat()
        self._task = asyncio.get_running_loop().create_task(
            self._worker(), name=f"shard-{self.index}")

    def beat(self) -> None:
        """Stamp the heartbeat the supervisor's deadline checks read."""
        self.last_beat = asyncio.get_running_loop().time()

    @property
    def task(self) -> "asyncio.Task | None":
        """The worker task (the supervisor inspects liveness on it)."""
        return self._task

    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            self.pickups += 1
            self.claimed = job
            self.beat()
            self._gauge_depth()
            spec = self.injector.fire(SITE_WORKER,
                                      arch=f"shard-{self.index}",
                                      path=f"pickup-{self.pickups}")
            if spec is not None and spec.kind == KIND_WORKER_CRASH:
                # die *before* the job runs: the claimed unit never
                # started, so the supervisor's requeue replays nothing
                self.crashes += 1
                self._metrics.counter(
                    f"service.shard.{self.index}.crashes").inc()
                raise WorkerCrashError(
                    f"shard {self.index} crashed at pickup "
                    f"{self.pickups}")
            if spec is not None and spec.kind == KIND_WORKER_HANG:
                # park holding the claimed job until the supervisor's
                # hang deadline kills this worker (the event is never
                # set on purpose)
                self.hung = True
                self.hangs += 1
                self._metrics.counter(
                    f"service.shard.{self.index}.hangs").inc()
                await self._stall.wait()
            job()
            self.claimed = None
            self.beat()
            self.queue.task_done()
            # yield so request coroutines can consume results between
            # jobs (everything is cooperative and single-threaded)
            await asyncio.sleep(0)

    def _gauge_depth(self) -> None:
        self._metrics.gauge(
            f"service.shard.{self.index}.queue_depth").set(
                self.queue.qsize())

    # -- job intake --------------------------------------------------------

    async def enqueue(self, job) -> None:
        """Queue one job; awaits (backpressure) while the queue is full.

        With the circuit breaker open the worker is gone for good:
        the job runs inline right here instead — same executions, same
        results, sequential instead of pipelined.
        """
        if self.breaker_open:
            self.inline_jobs += 1
            self._metrics.counter(
                f"service.shard.{self.index}.inline_jobs").inc()
            job()
            return
        await self.queue.put(job)
        self._gauge_depth()

    async def submit(self, unit, *, request_id: str | None = None
                     ) -> object:
        """Run one work unit on this shard; returns its result.

        ``request_id`` is stamped onto the queued job so the supervisor
        can correlate a crash/hang event with the request whose unit
        was claimed when the worker died.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def job() -> None:
            with self._tracer.span("service.unit", shard=self.index,
                                   stage=unit.stage, arch=unit.arch):
                try:
                    result = unit.run()
                except BaseException as error:  # thunks shouldn't raise
                    if not future.done():
                        future.set_exception(error)
                    return
            self.units_run += 1
            if unit.arch:
                self.archs_seen.add(unit.arch)
            self._metrics.counter(
                f"service.shard.{self.index}.units").inc()
            if not future.done():
                future.set_result(result)

        if request_id is not None:
            job.request_id = request_id
        await self.enqueue(job)
        return await future

    async def stop(self) -> None:
        """Cancel the worker task and wait for it to die."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except (asyncio.CancelledError, WorkerCrashError):
            pass
        self._task = None

    def stats(self) -> dict:
        """Queue depth, units run, supervision counters, breaker state."""
        return {
            "queue_depth": self.queue.qsize(),
            "units_run": self.units_run,
            "batches_run": self.batches_run,
            "archs": sorted(self.archs_seen),
            "quarantined": self.quarantine.archs(),
            "pickups": self.pickups,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "restarts": self.restarts,
            "breaker_open": self.breaker_open,
            "breaker_reason": self.breaker_reason,
            "inline_jobs": self.inline_jobs,
        }


def shard_index(arch: str, shard_count: int) -> int:
    """Stable arch → shard mapping (CRC32, not Python's salted hash)."""
    return zlib.crc32(arch.encode("utf-8")) % shard_count


class ShardPool:
    """The fixed set of shard workers one service runs."""

    def __init__(self, shard_count: int, *, queue_limit: int = 128,
                 metrics=None, tracer=None, injector=None) -> None:
        if shard_count < 1:
            raise ValueError(
                f"shard_count must be a positive integer, "
                f"got {shard_count}")
        self.shards = [ArchShard(index, queue_limit=queue_limit,
                                 metrics=metrics, tracer=tracer,
                                 injector=injector)
                       for index in range(shard_count)]

    def shard_for(self, arch: str) -> ArchShard:
        """The shard owning one architecture."""
        return self.shards[shard_index(arch, len(self.shards))]

    def start(self) -> None:
        """Start every shard worker."""
        for shard in self.shards:
            shard.start()

    async def join(self) -> None:
        """Wait until every shard queue is fully processed.

        Breaker-open shards are excluded: their queues were drained
        inline when the breaker opened and will never tick again.
        """
        for shard in self.shards:
            if not shard.breaker_open:
                await shard.queue.join()

    async def stop(self) -> None:
        """Cancel every worker."""
        for shard in self.shards:
            await shard.stop()

    def absorb_quarantine(self, quarantine: Quarantine) -> None:
        """Fold a finished request's quarantine into the owning shards'
        operational views (routing each arch to its shard)."""
        for arch in quarantine.archs():
            self.shard_for(arch).quarantine.note(
                arch, quarantine.reason(arch))

    def stats(self) -> list[dict]:
        """Per-shard stats dicts, in shard order."""
        return [shard.stats() for shard in self.shards]
