"""Cross-request coalescing of preprocess work units.

The paper batches up to 50 files per cpp invocation *within* one patch
(§III-D). A long-lived service can generalize that across patches:
preprocess units from different in-flight requests that target the
same (arch, config target) are packed, FIFO, into one shard job of up
to ``batch_limit`` files' occupancy, so the shard runs them
back-to-back with the arch's configuration state hot in the shared
BuildCache.

A group flushes when

- packing the next unit would exceed ``batch_limit`` occupancy, or
- occupancy reaches ``batch_limit`` exactly, or
- the batch window expires (``loop.call_soon`` when the window is 0 —
  i.e. "whatever arrived in this event-loop tick"), or
- the service drains.

Coalescing cannot perturb verdicts: each unit's thunk is still executed
exactly once, in FIFO order, and every request consumes its own
results in its own yield order.
"""

from __future__ import annotations

import asyncio

from repro.obs.events import NULL_EVENTS
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.service.shards import ShardPool


class CrossRequestBatcher:
    """Packs preprocess units from many requests into shard jobs."""

    def __init__(self, pool: ShardPool, *, batch_limit: int = 50,
                 batch_window: float = 0.0,
                 metrics=None, tracer=None, events=None) -> None:
        if batch_limit < 1:
            raise ValueError(
                f"batch_limit must be a positive integer, "
                f"got {batch_limit}")
        self._pool = pool
        self.batch_limit = batch_limit
        self.batch_window = batch_window
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: structured-event log (flushes are too hot to event on; the
        #: handle is here for drain-time anomalies and future policies)
        self._events = events if events is not None else NULL_EVENTS
        #: (arch, config_target) -> FIFO of (unit, future)
        self._pending: dict[tuple, list] = {}
        self._occupancy: dict[tuple, int] = {}
        self._handles: dict[tuple, object] = {}
        #: in-flight enqueue tasks (a flush must not block its caller)
        self._tasks: set = set()
        self.flushes = 0
        self.units_batched = 0

    @property
    def pending_units(self) -> int:
        """Units currently waiting in unflushed groups."""
        return sum(len(group) for group in self._pending.values())

    @property
    def pending_occupancy(self) -> int:
        """Total file occupancy currently waiting."""
        return sum(self._occupancy.values())

    async def submit(self, unit) -> object:
        """Queue one preprocess unit; resolves when its batch ran."""
        loop = asyncio.get_running_loop()
        key = (unit.arch, unit.config_target)
        if self._pending.get(key) and \
                self._occupancy.get(key, 0) + unit.occupancy \
                > self.batch_limit:
            # this unit would overflow the open group: flush it first
            self._flush(key)
        future = loop.create_future()
        self._pending.setdefault(key, []).append((unit, future))
        self._occupancy[key] = \
            self._occupancy.get(key, 0) + unit.occupancy
        self._metrics.gauge("service.batcher.pending_units").set(
            self.pending_units)
        self._metrics.gauge("service.batcher.pending_occupancy").set(
            self.pending_occupancy)
        if self._occupancy[key] >= self.batch_limit:
            self._flush(key)
        elif key not in self._handles:
            if self.batch_window <= 0:
                self._handles[key] = loop.call_soon(self._flush_cb, key)
            else:
                self._handles[key] = loop.call_later(
                    self.batch_window, self._flush_cb, key)
        return await future

    def _flush_cb(self, key: tuple) -> None:
        self._handles.pop(key, None)
        self._flush(key)

    def _flush(self, key: tuple) -> None:
        handle = self._handles.pop(key, None)
        if handle is not None:
            handle.cancel()
        group = self._pending.pop(key, [])
        occupancy = self._occupancy.pop(key, 0)
        if not group:
            return
        arch = key[0]
        shard = self._pool.shard_for(arch)
        tracer = self._tracer

        def job() -> None:
            with tracer.span("service.batch", arch=arch,
                             config=key[1], units=len(group),
                             occupancy=occupancy):
                for unit, future in group:
                    try:
                        result = unit.run()
                    except BaseException as error:
                        if not future.cancelled():
                            future.set_exception(error)
                        continue
                    if not future.cancelled():
                        future.set_result(result)
            shard.units_run += len(group)
            shard.batches_run += 1
            if arch:
                shard.archs_seen.add(arch)

        self.flushes += 1
        self.units_batched += len(group)
        self._metrics.counter("service.batch.flushes").inc()
        self._metrics.histogram("service.batch.occupancy").observe(
            occupancy)
        self._metrics.histogram("service.batch.units").observe(
            len(group))
        # enqueue from task context so a full shard queue exerts
        # backpressure without blocking the (possibly sync) flusher
        task = asyncio.get_running_loop().create_task(
            shard.enqueue(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def flush_all(self) -> None:
        """Flush every open group (drain path)."""
        for key in list(self._pending):
            self._flush(key)

    async def drain(self) -> None:
        """Flush everything and wait for the enqueues to land."""
        self.flush_all()
        while self._tasks:
            await asyncio.gather(*list(self._tasks))

    def stats(self) -> dict:
        """Batch counters for the service stats endpoint."""
        return {
            "flushes": self.flushes,
            "units_batched": self.units_batched,
            "pending_units": self.pending_units,
            "pending_occupancy": self.pending_occupancy,
            "mean_occupancy": (
                self._metrics.histogram(
                    "service.batch.occupancy").mean
                if self._metrics.enabled else None),
        }
