"""``jmake watch`` — continuous ingest over a commit stream.

The fleet-mode loop the ROADMAP asks for: pull unseen commits from a
stream, check them through the transport-backed
:class:`~repro.service.service.CheckService`, journal each verdict the
instant it exists, and fold the journal into the persistent
:class:`~repro.store.store.VerdictStore` batch by batch. Every piece
is the machinery earlier PRs built — the WAL/ledger (PR 5), the
sharded service (PR 4/8), the telemetry plane (PR 7) — composed into
a daemon whose one invariant is *a commit checked once is never
recomputed and never lost*:

- **never recomputed** — a commit is skipped when the ledger or the
  store already has it, so restarts, overlapping streams, and resumed
  crashes all converge on the same set of checks;
- **never lost** — verdicts are durable in the journal before the
  store sees them, and store ingest is one idempotent transaction per
  batch, so a kill at *any* point (chaos injects one via
  ``--chaos-kill-after``) resumes into a store byte-identical to an
  uninterrupted run's (:meth:`VerdictStore.canonical_dump` proves it).

Two stream shapes share one pull API (``next_commits``):
:class:`WindowSource` drains the corpus's §V evaluation window through
:meth:`Repository.commits_after`; :class:`SyntheticTrafficSource`
appends fresh deterministic traffic with the workload generator — the
"live fleet" case where new commits arrive while the daemon runs.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field

from repro.core.jmake import JMakeOptions
from repro.faults.chaos import CrashPoint
from repro.journal import VerdictLedger
from repro.obs.events import (
    EVENT_WATCH_BATCH,
    EVENT_WATCH_IDLE,
    EVENT_WATCH_STARTED,
    EVENT_WATCH_STOPPED,
    NULL_EVENTS,
)
from repro.obs.logcfg import get_logger
from repro.service.service import CheckService, ServiceConfig
from repro.store import VerdictStore
from repro.store.matview import JanitorViewCriteria
from repro.util.rng import DeterministicRng
from repro.workload.corpus import Corpus

_logger = get_logger("service.watch")


class WindowSource:
    """Streams the corpus's evaluation window (a fixed backlog)."""

    kind = "window"

    def __init__(self, corpus: Corpus) -> None:
        self.corpus = corpus
        self._cursor = corpus.TAG_EVAL_START

    def identity(self) -> dict:
        """Stream identity folded into the run's journal/store meta."""
        return {"source": self.kind}

    def next_commits(self, limit: int):
        """Up to ``limit`` checkable commits after the cursor."""
        commits = self.corpus.repository.commits_after(
            self._cursor, limit=limit)
        if commits:
            self._cursor = commits[-1].id
        return commits


class SyntheticTrafficSource:
    """Appends deterministic fresh traffic, then streams it.

    The generated commits are a pure function of (corpus spec, traffic
    count, traffic seed): a resumed daemon rebuilds the corpus from its
    seed, regenerates the *same* commit ids, and finds the ones it
    already checked in the journal — which is exactly what makes
    kill/resume over live traffic deterministic.
    """

    kind = "synthetic"

    def __init__(self, corpus: Corpus, traffic: int,
                 seed: str = "watch-traffic") -> None:
        if traffic < 1:
            raise ValueError(
                f"traffic must be a positive commit count, "
                f"got {traffic!r}")
        self.corpus = corpus
        self.traffic = traffic
        self.seed = seed
        self._cursor = corpus.repository.head().id
        self._generated = False

    def identity(self) -> dict:
        return {"source": self.kind, "traffic": self.traffic,
                "traffic_seed": self.seed}

    def _generate(self) -> None:
        from repro.workload.commits import CommitStreamGenerator
        rng = DeterministicRng(
            f"{self.corpus.spec.seed}-{self.seed}")
        generator = CommitStreamGenerator(
            self.corpus.tree, self.corpus.roster, rng)
        generator.generate(self.corpus.repository, self.traffic)
        self._generated = True

    def next_commits(self, limit: int):
        if not self._generated:
            self._generate()
        commits = self.corpus.repository.commits_after(
            self._cursor, limit=limit)
        if commits:
            self._cursor = commits[-1].id
        return commits


@dataclass
class WatchConfig:
    """Knobs for one watch run."""
    #: unseen commits checked (and then ingested) per batch
    batch_size: int = 8
    #: stop after this many batches (None -> drain the stream)
    max_batches: int | None = None
    #: cap on TOTAL commits checked across the run's lifetime, journal
    #: backlog included — a killed-and-resumed run converges on the
    #: same stream prefix as an uninterrupted ``limit=N`` run, which
    #: is what makes their canonical dumps byte-identical
    limit: int | None = None
    #: journal fsync discipline (tests turn it off for speed)
    fsync: bool = True
    #: ledger compaction interval (records per checkpoint)
    checkpoint_interval: int = 32
    #: chaos: die (SimulatedCrashError) after N durable fresh verdicts
    chaos_kill_after: int | None = None
    #: the check-service configuration (transport, shards, supervision)
    service: ServiceConfig | None = None
    #: build cache handed to the service (True -> fresh warm cache)
    cache: object = True
    #: long-lived mode: instead of exiting when the stream is empty,
    #: poll it until a stop condition fires
    follow: bool = False
    #: real seconds between idle polls in follow mode
    poll_interval_seconds: float = 0.5
    #: follow mode stops when this file appears (touch it to stop a
    #: daemon you cannot signal, e.g. across a container boundary)
    stop_file: str | None = None
    #: follow mode stops after this many real seconds with no new
    #: commits (None -> wait forever for a stop file or signal)
    idle_timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be positive, got {self.batch_size!r}")
        for name in ("max_batches", "limit", "chaos_kill_after"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(
                    f"{name} must be positive when set, got {value!r}")
        if self.poll_interval_seconds <= 0:
            raise ValueError(
                f"poll_interval_seconds must be positive, "
                f"got {self.poll_interval_seconds!r}")
        if self.idle_timeout_seconds is not None and \
                self.idle_timeout_seconds <= 0:
            raise ValueError(
                f"idle_timeout_seconds must be positive when set, "
                f"got {self.idle_timeout_seconds!r}")


@dataclass
class WatchResult:
    """What one watch run saw, checked, and landed."""
    #: unseen commits pulled from the stream this process
    commits_seen: int = 0
    #: commits checked fresh this process
    fresh: int = 0
    #: verdicts recovered from the journal at open (resume backlog)
    replayed: int = 0
    batches: int = 0
    #: records newly landed in the store (catch-up + batches)
    ingested: int = 0
    #: records the store already had (the idempotent-resume path)
    duplicates: int = 0
    store_stats: dict = field(default_factory=dict)
    journal_stats: dict = field(default_factory=dict)
    #: top of the §IV materialized view after the run
    janitors: list = field(default_factory=list)
    #: empty polls survived in follow mode
    idle_polls: int = 0
    #: why the loop ended: "drained", "max-batches", "stop-file",
    #: "signal", or "idle-timeout"
    stopped_by: str = "drained"


class WatchSession:
    """One watch daemon lifecycle over a corpus, journal, and store."""

    def __init__(self, corpus: Corpus, *, store, journal: str,
                 source=None, options: JMakeOptions | None = None,
                 config: WatchConfig | None = None,
                 metrics=None, events=None,
                 resume: bool = False) -> None:
        self.corpus = corpus
        self.options = options or JMakeOptions()
        self.config = config or WatchConfig()
        self.events = events if events is not None else NULL_EVENTS
        self.resume = resume
        self.source = source if source is not None \
            else WindowSource(corpus)
        if isinstance(store, VerdictStore):
            self.store = store
            self._owns_store = False
        else:
            self.store = VerdictStore(store, metrics=metrics,
                                      events=self.events)
            self._owns_store = True
        self.journal_path = journal
        self._backlog = 0
        #: set by :meth:`request_stop` (a signal handler, another
        #: thread) to end a follow loop at the next batch boundary
        self._stop_requested = False
        self._stop_reason = "signal"

    def request_stop(self, reason: str = "signal") -> None:
        """Ask a running follow loop to stop at the next boundary.

        Safe to call from a signal handler: it only flips a flag the
        loop polls between batches, so an in-flight batch finishes and
        lands durably before the session winds down.
        """
        self._stop_requested = True
        self._stop_reason = reason

    # -- identity --------------------------------------------------------------

    def meta(self) -> dict:
        """The run identity both the journal and the store bind."""
        spec = self.corpus.spec
        meta = {
            "mode": "watch",
            "corpus_seed": spec.seed,
            "history_commits": spec.history_commits,
            "eval_commits": spec.eval_commits,
            "use_configs": self.options.use_configs,
            "use_allmodconfig": self.options.use_allmodconfig,
        }
        meta.update(self.source.identity())
        return meta

    # -- the loop --------------------------------------------------------------

    def run(self) -> WatchResult:
        """Drain the stream: check unseen commits, ingest per batch.

        A :class:`~repro.errors.SimulatedCrashError` from the chaos
        kill propagates out *after* the dying verdict is durable in
        the journal — rerun with ``resume=True`` (same journal, same
        store) to pick up exactly where the crash left off.
        """
        config = self.config
        crash = CrashPoint(config.chaos_kill_after) \
            if config.chaos_kill_after else None
        ledger = VerdictLedger(
            self.journal_path, fsync=config.fsync,
            checkpoint_interval=config.checkpoint_interval,
            on_append=crash, fresh=not self.resume,
            events=self.events)
        try:
            meta = self.meta()
            ledger.bind_meta(meta)
            self.store.bind_meta(meta)
            self.events.emit(EVENT_WATCH_STARTED,
                             source=self.source.kind,
                             resume=self.resume,
                             backlog=len(ledger))
            result = WatchResult(replayed=ledger.recovered)
            # catch-up: whatever the journal holds that the store does
            # not is exactly the pre-crash window — land it first
            totals = self.store.ingest_ledger(ledger)
            # the replayed backlog counts against config.limit so a
            # resumed run stops at the same stream position as an
            # uninterrupted one
            self._backlog = len(ledger)
            service = CheckService(self.corpus, options=self.options,
                                   config=self._service_config(),
                                   cache=config.cache)
            idle_since: "float | None" = None
            while True:
                if self._stop_requested:
                    result.stopped_by = self._stop_reason
                    break
                if config.max_batches is not None and \
                        result.batches >= config.max_batches:
                    result.stopped_by = "max-batches"
                    break
                if config.stop_file is not None and \
                        os.path.exists(config.stop_file):
                    result.stopped_by = "stop-file"
                    break
                batch = self._next_unseen(ledger, result)
                if not batch:
                    limit_spent = config.limit is not None and \
                        self._backlog + result.commits_seen >= \
                        config.limit
                    if not config.follow or limit_spent:
                        result.stopped_by = "drained"
                        break
                    # follow mode: the stream is dry right now, not
                    # finished — wait for traffic or a stop condition
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if config.idle_timeout_seconds is not None and \
                            now - idle_since >= \
                            config.idle_timeout_seconds:
                        result.stopped_by = "idle-timeout"
                        break
                    result.idle_polls += 1
                    self.events.emit(EVENT_WATCH_IDLE,
                                     polls=result.idle_polls)
                    time.sleep(config.poll_interval_seconds)
                    continue
                idle_since = None
                result.commits_seen += len(batch)

                def on_result(check_result) -> None:
                    # v4 records carry author + attempts; the journal
                    # append is the durability point (and the chaos
                    # kill site)
                    ledger.emit(check_result.commit_id,
                                dict(check_result.record))

                service.check_commits([commit.id for commit in batch],
                                      on_result=on_result)
                result.fresh += len(batch)
                self.store.set_lag(max(0, len(ledger) - len(self.store)))
                ingest = self.store.ingest_ledger(ledger)
                totals = totals.merged(ingest)
                result.batches += 1
                self.events.emit(EVENT_WATCH_BATCH,
                                 batch=result.batches,
                                 commits=len(batch),
                                 ingested=ingest.ingested)
                _logger.info("watch batch #%d: %d commit(s) checked, "
                             "%d ingested", result.batches, len(batch),
                             ingest.ingested)
            result.ingested = totals.ingested
            result.duplicates = totals.duplicates
            result.store_stats = self.store.stats()
            result.journal_stats = ledger.stats()
            result.janitors = self.store.janitor_report(
                JanitorViewCriteria())
            self.events.emit(EVENT_WATCH_STOPPED,
                             batches=result.batches,
                             fresh=result.fresh,
                             ingested=result.ingested,
                             stopped_by=result.stopped_by)
            return result
        finally:
            ledger.close()
            if self._owns_store:
                self.store.close()

    # -- internals -------------------------------------------------------------

    def _service_config(self) -> ServiceConfig:
        config = self.config.service or ServiceConfig()
        if config.events is None and self.events is not NULL_EVENTS:
            config = dataclasses.replace(config, events=self.events)
        return config

    def _next_unseen(self, ledger, result: WatchResult):
        """Pull the next batch of commits not yet checked anywhere."""
        wanted = self.config.batch_size
        if self.config.limit is not None:
            budget = self.config.limit - self._backlog \
                - result.commits_seen
            wanted = min(wanted, budget)
            if wanted <= 0:
                return []
        batch = []
        while len(batch) < wanted:
            pulled = self.source.next_commits(wanted - len(batch))
            if not pulled:
                break
            batch.extend(
                commit for commit in pulled
                if commit.id not in ledger
                and not self.store.has(commit.id))
        return batch


def watch(corpus: Corpus, *, store, journal: str, source=None,
          options: JMakeOptions | None = None,
          config: WatchConfig | None = None,
          metrics=None, events=None,
          resume: bool = False) -> WatchResult:
    """One-shot watch run (the ``repro.api.watch`` entry point)."""
    session = WatchSession(corpus, store=store, journal=journal,
                           source=source, options=options,
                           config=config, metrics=metrics,
                           events=events, resume=resume)
    return session.run()


__all__ = [
    "SyntheticTrafficSource",
    "WatchConfig",
    "WatchResult",
    "WatchSession",
    "WindowSource",
    "watch",
]
