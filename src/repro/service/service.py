"""The persistent check service.

One :class:`CheckService` holds the long-lived substrate — the shared
BuildCache, the execution transport, and the service metrics registry —
while every submitted :class:`~repro.service.request.CheckRequest`
gets its own :class:`~repro.core.jmake.CheckSession` (own SimClock,
own FaultInjector scope, own BuildSystem and quarantine).

*Where* a request executes is the transport's business
(:mod:`repro.service.transport`): the default ``asyncio`` transport
drives the session's unit generator on this loop — request-local
stages inline, preprocess units through the cross-request batcher,
config/certify units on the owning arch shard — while the ``mp`` and
``socket`` transports ship whole commit assignments to warm worker
processes over the wire codec. Every check is a pure function of
(corpus, commit), so the differential suite pins all three transports
byte-identical to the sequential ``EvaluationRunner``.

Admission control: ``submit()`` awaits a bounded slot (backpressure),
``submit_nowait()`` raises :class:`~repro.errors.
ServiceOverloadedError` when no slot is free. After ``drain()`` begins,
new submissions raise :class:`~repro.errors.ServiceDrainingError`;
in-flight requests finish, the transport flushes its workers, and the
service stops.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field

from repro.buildcache.cache import BuildCache
from repro.core.jmake import CheckSession, JMakeOptions
from repro.cpp import prepared
from repro.errors import ServiceDrainingError, ServiceOverloadedError
from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import FaultPlan
from repro.faults.resilience import RetryPolicy
from repro.obs.events import (
    EVENT_QUARANTINE_TRIP,
    EVENT_SERVICE_DRAINED,
    EVENT_SERVICE_REJECTED,
    EVENT_SERVICE_STARTED,
    NULL_EVENTS,
)
from repro.obs.logcfg import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.service.request import CheckRequest, CheckResult
from repro.service.supervisor import SupervisorConfig
from repro.service.transport.base import (
    TRANSPORT_KINDS,
    create_transport,
    track_live,
    untrack_live,
)
from repro.service.transport.local import drive_units  # noqa: F401 — public API
from repro.workload.corpus import Corpus

#: start methods ``multiprocessing`` supports for remote transports
START_METHODS = ("fork", "spawn", "forkserver")

_logger = get_logger("service")

#: wall-clock request-latency buckets (real seconds — requests complete
#: in milliseconds on the synthetic substrate, so the sim-second
#: defaults would pile everything into the first bucket)
_WALL_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                         10.0, 30.0)


@dataclass
class ServiceConfig:
    """Tunables of one :class:`CheckService`."""

    #: shard workers; every architecture maps to exactly one shard
    shards: int = 2
    #: max file occupancy per coalesced preprocess invocation (§III-D)
    batch_limit: int = 50
    #: real seconds a batch group waits for co-batchable units
    #: (0 = whatever arrives in the same event-loop tick)
    batch_window_seconds: float = 0.0
    #: admission control: requests admitted concurrently
    max_pending_requests: int = 64
    #: bounded per-shard unit queue (put() backpressure beyond this)
    shard_queue_limit: int = 128
    #: fault plan applied per request (same semantics as sequential)
    fault_plan: "FaultPlan | None" = None
    retry_policy: "RetryPolicy | None" = None
    #: optional tracer for service-level spans (unit/batch execution)
    tracer: object = None
    #: optional structured-event log (:class:`repro.obs.events.
    #: EventLog`); None -> NULL_EVENTS, zero overhead
    events: object = None
    #: optional periodic metrics snapshotter (:class:`repro.obs.
    #: timeseries.Snapshotter`); started/stopped with the service when
    #: it carries an interval, sampled once at drain either way
    snapshotter: object = None
    #: run the shard supervisor (crash/hang detection, restarts,
    #: circuit breaking); off only for tests that want a bare pool
    supervise: bool = True
    #: supervisor tunables (None -> SupervisorConfig defaults; remote
    #: transports substitute a remote-scale hang deadline when unset)
    supervisor: "SupervisorConfig | None" = None
    #: execution backend: "asyncio" (in-process shard pool), "mp"
    #: (warm worker processes over pipes), or "socket" (warm workers
    #: over the CRC32-framed localhost protocol)
    transport: str = "asyncio"
    #: worker processes for remote transports (None -> ``shards``)
    jobs: "int | None" = None
    #: multiprocessing start method for remote transports; None reads
    #: JMAKE_START_METHOD from the environment (default "fork"), which
    #: is how CI runs the whole transport surface under ``spawn``
    start_method: "str | None" = None
    #: socket transport: "HOST:PORT" to listen on (None -> loopback
    #: with an ephemeral port, the local-spawn default)
    listen: "str | None" = None
    #: socket transport: shared secret for the HMAC challenge/response
    #: handshake; None generates a fresh key per coordinator (locally
    #: spawned workers inherit it, everything else is locked out)
    auth_key: "str | None" = None
    #: socket transport: spawn local worker processes (True) or wait
    #: for external ``jmake worker --connect`` processes (False)
    spawn_workers: bool = True
    #: socket transport: seconds between worker heartbeats (0 = off;
    #: reply waits then use the plain hang deadline)
    heartbeat_seconds: float = 0.0
    #: socket transport: lease length; a worker silent this long is
    #: declared dead even on an open socket. Must dominate the
    #: heartbeat interval when heartbeats are on.
    lease_seconds: float = 0.0
    #: socket transport: seconds a partitioned worker may dial back
    #: and rejoin without burning restart budget (0 = no grace)
    reconnect_grace_seconds: float = 0.0
    #: remote transports: ceiling on worker startup/registration
    #: (None -> the transport default, 120s)
    hello_timeout_seconds: "float | None" = None

    def __post_init__(self) -> None:
        from repro.api import validate_jobs
        self.shards = validate_jobs(self.shards, what="shards")
        if self.start_method is None:
            self.start_method = os.environ.get(
                "JMAKE_START_METHOD", "fork")
        if self.transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport {self.transport!r} "
                f"(known: {', '.join(TRANSPORT_KINDS)})")
        if self.jobs is not None:
            self.jobs = validate_jobs(self.jobs, what="jobs")
        if self.start_method not in START_METHODS:
            raise ValueError(
                f"unknown start method {self.start_method!r} "
                f"(known: {', '.join(START_METHODS)})")
        if self.batch_limit < 1:
            raise ValueError(
                f"batch_limit must be a positive integer, "
                f"got {self.batch_limit}")
        if self.max_pending_requests < 1:
            raise ValueError(
                f"max_pending_requests must be a positive integer, "
                f"got {self.max_pending_requests}")
        if self.shard_queue_limit < 1:
            raise ValueError(
                f"shard_queue_limit must be a positive integer, "
                f"got {self.shard_queue_limit}")
        if self.transport != "socket":
            if self.listen is not None:
                raise ValueError(
                    "listen requires the socket transport, "
                    f"not {self.transport!r}")
            if not self.spawn_workers:
                raise ValueError(
                    "spawn_workers=False requires the socket "
                    f"transport, not {self.transport!r}")
            if self.heartbeat_seconds:
                raise ValueError(
                    "heartbeat_seconds requires the socket "
                    f"transport, not {self.transport!r}")
        if not self.spawn_workers and not self.auth_key:
            raise ValueError(
                "spawn_workers=False requires an explicit auth_key "
                "(external workers must share the secret)")
        for name in ("heartbeat_seconds", "lease_seconds",
                     "reconnect_grace_seconds"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(
                    f"{name} cannot be negative, got {value!r}")
        if self.heartbeat_seconds > 0 and \
                self.lease_seconds < self.heartbeat_seconds:
            raise ValueError(
                "lease_seconds must be at least heartbeat_seconds "
                f"({self.lease_seconds!r} < "
                f"{self.heartbeat_seconds!r})")
        if self.hello_timeout_seconds is not None and \
                self.hello_timeout_seconds <= 0:
            raise ValueError(
                f"hello_timeout_seconds must be positive, "
                f"got {self.hello_timeout_seconds!r}")


class CheckService:
    """A long-lived, sharded, batching check service over one corpus."""

    def __init__(self, corpus: Corpus, *,
                 options: JMakeOptions | None = None,
                 config: ServiceConfig | None = None,
                 cache: "BuildCache | bool | None" = True) -> None:
        self.corpus = corpus
        self.options = options or JMakeOptions()
        self.config = config or ServiceConfig()
        if cache is False or cache is None:
            self.cache: "BuildCache | None" = None
        elif cache is True:
            self.cache = BuildCache()
        else:
            self.cache = cache
        #: service-wide metrics (scheduling + aggregated pipeline)
        self.metrics = MetricsRegistry()
        self.tracer = self.config.tracer \
            if self.config.tracer is not None else NULL_TRACER
        #: kept for callers that predate the transport refactor
        self._tracer = self.tracer
        #: structured operational events (crashes, rejections, trips)
        self.events = self.config.events \
            if self.config.events is not None else NULL_EVENTS
        #: periodic metric snapshots (None -> no time series)
        self.snapshotter = self.config.snapshotter
        #: injector pinned on the shared cache (cache-site faults are
        #: verdict-neutral; per-request injectors own the step sites)
        if self.cache is not None:
            pinned = FaultInjector(self.config.fault_plan) \
                if self.config.fault_plan else NULL_INJECTOR
            self.cache.pin_injector(pinned)
        #: the execution backend (built at start())
        self.transport = None
        self._pool = None
        self._batcher = None
        self._supervisor = None
        self._admission: "asyncio.Semaphore | None" = None
        self._requests: set = set()
        self._started = False
        self._draining = False
        self._request_seq = 0
        self.requests_completed = 0

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Create the transport and bring its workers up."""
        if self._started:
            return
        self.transport = create_transport(self, self.config.transport)
        await self.transport.start()
        track_live(self.transport)
        # back-compat views for the in-process backend (stats/tests
        # reach for the pool/batcher/supervisor directly)
        self._pool = getattr(self.transport, "pool", None)
        self._batcher = getattr(self.transport, "batcher", None)
        self._supervisor = getattr(self.transport, "supervisor", None)
        self._admission = asyncio.Semaphore(
            self.config.max_pending_requests)
        if self.snapshotter is not None and \
                self.snapshotter.interval_seconds is not None:
            self.snapshotter.start()
        self._started = True
        self._draining = False
        self.events.emit(EVENT_SERVICE_STARTED,
                         shards=self.config.shards,
                         batch_limit=self.config.batch_limit,
                         transport=self.config.transport,
                         supervised=self._supervisor is not None
                         or self.config.transport != "asyncio")
        _logger.info("service started: transport=%s shards=%d "
                     "batch_limit=%d", self.config.transport,
                     self.config.shards, self.config.batch_limit)

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, stop workers."""
        if not self._started:
            return
        self._draining = True
        # in-flight request coroutines first (they stop producing units)
        while self._requests:
            await asyncio.gather(*list(self._requests),
                                 return_exceptions=True)
        if self.transport is not None:
            await self.transport.drain()
            untrack_live(self.transport)
        if self.snapshotter is not None:
            # final sample: the drained state lands in the time series
            await self.snapshotter.stop(final_sample=True)
        self._started = False
        self.events.emit(EVENT_SERVICE_DRAINED,
                         requests_completed=self.requests_completed)
        _logger.info("service drained: requests=%d",
                     self.requests_completed)

    # -- submission ------------------------------------------------------------

    def _admit(self, request: CheckRequest) -> None:
        if self._draining or not self._started:
            raise ServiceDrainingError(
                "service is draining; request rejected")
        self._request_seq += 1
        if not request.request_id:
            request.request_id = f"req-{self._request_seq}"

    async def submit(self, request: CheckRequest) -> CheckResult:
        """Admit (awaiting a slot under load) and run one request."""
        self._admit(request)
        return await self._run_admitted(request)

    def submit_nowait(self, request: CheckRequest) -> "asyncio.Task":
        """Admit without waiting; raises ServiceOverloadedError when
        admission is full. Returns the request's task."""
        self._admit(request)
        if self._admission.locked():
            self.metrics.counter("service.rejected").inc()
            deepest = max(self._pool.shards,
                          key=lambda shard: shard.queue.qsize()) \
                if self._pool is not None else None
            self.events.emit(
                EVENT_SERVICE_REJECTED,
                request_id=request.request_id,
                queue_depth=len(self._requests),
                limit=self.config.max_pending_requests)
            raise ServiceOverloadedError(
                f"admission queue full "
                f"({self.config.max_pending_requests} in flight)",
                queue_depth=len(self._requests),
                limit=self.config.max_pending_requests,
                shard_id=deepest.index if deepest is not None else None)
        return asyncio.get_running_loop().create_task(
            self._run_admitted(request))

    async def _run_admitted(self, request: CheckRequest) -> CheckResult:
        # register before the semaphore wait so drain() sees requests
        # that were admitted but are still queued for a slot
        task = asyncio.current_task()
        self._requests.add(task)
        self.metrics.gauge("service.requests.in_flight").set(
            len(self._requests))
        try:
            async with self._admission:
                return await self._run_request(request)
        finally:
            self._requests.discard(task)
            self.metrics.gauge("service.requests.in_flight").set(
                len(self._requests))

    # -- execution -------------------------------------------------------------

    def _make_session(self, request: CheckRequest) -> CheckSession:
        return CheckSession.from_generated_tree(
            self.corpus.tree,
            options=request.options or self.options,
            cache=self.cache,
            metrics=self.metrics,
            fault_plan=self.config.fault_plan,
            retry_policy=self.config.retry_policy)

    async def _run_request(self, request: CheckRequest) -> CheckResult:
        wall_start = time.perf_counter()
        with self.tracer.span("service.request",
                              request=request.request_id,
                              commit=request.commit_id):
            outcome = await self.transport.run_request(request)
        report = outcome.report
        for arch, reason in outcome.quarantine.items():
            self.metrics.counter("service.quarantine.trips").inc()
            self.events.emit(EVENT_QUARANTINE_TRIP,
                             request_id=request.request_id,
                             commit=report.commit_id, arch=arch,
                             site=reason)
        self.requests_completed += 1
        self.metrics.counter("service.requests.completed").inc()
        self.metrics.histogram("service.request.sim_seconds").observe(
            report.elapsed_seconds)
        self.metrics.histogram(
            "service.request.wall_seconds",
            buckets=_WALL_LATENCY_BUCKETS).observe(
                time.perf_counter() - wall_start)
        if report.fault_reports:
            self.metrics.counter("service.requests.faulted").inc()
        return CheckResult(
            request_id=request.request_id,
            commit_id=report.commit_id,
            report=report,
            record=report.to_dict(),
            elapsed_sim_seconds=report.elapsed_seconds,
            stage_counts=outcome.stage_counts,
        )

    # -- conveniences ----------------------------------------------------------

    def check_commits(self, commit_ids, *,
                      options: JMakeOptions | None = None,
                      on_result=None) -> list[CheckResult]:
        """Synchronous wrapper: start, submit all, drain, return results
        in submission order.

        ``on_result`` fires per result, in submission order, as soon as
        it (and every earlier one) is available — the hook the resumable
        evaluation runner journals verdicts through. An exception from
        the callback aborts the run (that is how a simulated crash
        propagates); already-computed but not-yet-journaled results are
        lost, exactly as a real crash would lose them.
        """

        async def main() -> list[CheckResult]:
            await self.start()
            try:
                tasks = [
                    asyncio.ensure_future(self.submit(CheckRequest(
                        commit_id=commit_id, options=options)))
                    for commit_id in commit_ids]
                results = []
                for task in tasks:
                    result = await task
                    if on_result is not None:
                        on_result(result)
                    results.append(result)
                return results
            finally:
                await self.drain()

        return asyncio.run(main())

    def health(self) -> dict:
        """Live/ready/degraded, derived from supervisor + queue state.

        ``status`` is ``ok`` (started, everything healthy),
        ``degraded`` (serving, but a breaker is open or an arch is
        quarantined — capacity or coverage is reduced), ``draining``
        (refusing new work, finishing in-flight), or ``down`` (not
        started). ``ready`` is the load-balancer admission signal:
        True exactly when a new submit() would be accepted.
        """
        if self.transport is not None:
            breakers = self.transport.breaker_open_workers()
            quarantined = self.transport.quarantined_archs()
        else:
            breakers, quarantined = [], []
        if not self._started:
            status = "down"
        elif self._draining:
            status = "draining"
        elif breakers or quarantined:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "ready": self._started and not self._draining,
            "breaker_open_shards": breakers,
            "quarantined_archs": quarantined,
            "requests_in_flight": len(self._requests),
            "admission_free_slots":
                self.config.max_pending_requests - len(self._requests)
                if self._started else 0,
        }

    def stats(self) -> dict:
        """Scheduling telemetry: shards, batcher, admission, health."""
        return {
            "started": self._started,
            "draining": self._draining,
            "health": self.health(),
            "requests_completed": self.requests_completed,
            "requests_in_flight": len(self._requests),
            "transport": {
                "kind": self.config.transport,
                "jobs": self.config.jobs or self.config.shards,
                "start_method": self.config.start_method,
            },
            "shards": self.transport.shard_stats()
            if self.transport is not None else [],
            "batcher": self.transport.batcher_stats()
            if self.transport is not None else {},
            "supervisor": self.transport.supervisor_stats()
            if self.transport is not None else {},
            "events": self.events.stats(),
            "snapshots": self.snapshotter.stats()
            if self.snapshotter is not None else None,
            "cache": None if self.cache is None
            else self.cache.stats_snapshot().render(),
            # process-local view: forked shard workers keep their own
            # substrate counters, this reports the coordinator's
            "substrate": prepared.stats_snapshot(),
        }
