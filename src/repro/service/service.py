"""The persistent check service.

One :class:`CheckService` holds the long-lived substrate — the shared
BuildCache, the per-architecture shard pool, the cross-request batcher,
and the service metrics registry — while every submitted
:class:`~repro.service.request.CheckRequest` gets its own
:class:`~repro.core.jmake.CheckSession` (own SimClock, own
FaultInjector scope, own BuildSystem and quarantine). The request
coroutine drives the session's unit generator: request-local stages
(mutate, token-grep) run inline, preprocess units go through the
batcher, config/certify units go straight to the owning arch shard.

Because each request consumes every unit's result before yielding the
next, a request's clock charges and verdict are the same whether zero
or fifty other requests are in flight — the differential suite pins
service output byte-identical to the sequential ``EvaluationRunner``.

Admission control: ``submit()`` awaits a bounded slot (backpressure),
``submit_nowait()`` raises :class:`~repro.errors.
ServiceOverloadedError` when no slot is free. After ``drain()`` begins,
new submissions raise :class:`~repro.errors.ServiceDrainingError`;
in-flight requests finish, the batcher flushes, shard queues join, and
the workers stop.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.buildcache.cache import BuildCache
from repro.core.jmake import CheckSession, JMakeOptions
from repro.cpp import prepared
from repro.core.units import (
    STAGE_PREPROCESS,
    UnitDag,
    UnitGenerator,
)
from repro.errors import ServiceDrainingError, ServiceOverloadedError
from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import FaultPlan
from repro.faults.resilience import RetryPolicy
from repro.obs.events import (
    EVENT_QUARANTINE_TRIP,
    EVENT_SERVICE_DRAINED,
    EVENT_SERVICE_REJECTED,
    EVENT_SERVICE_STARTED,
    NULL_EVENTS,
)
from repro.obs.logcfg import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.service.batcher import CrossRequestBatcher
from repro.service.request import CheckRequest, CheckResult
from repro.service.shards import ShardPool
from repro.service.supervisor import ShardSupervisor, SupervisorConfig
from repro.workload.corpus import Corpus

_logger = get_logger("service")

#: wall-clock request-latency buckets (real seconds — requests complete
#: in milliseconds on the synthetic substrate, so the sim-second
#: defaults would pile everything into the first bucket)
_WALL_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                         10.0, 30.0)


@dataclass
class ServiceConfig:
    """Tunables of one :class:`CheckService`."""

    #: shard workers; every architecture maps to exactly one shard
    shards: int = 2
    #: max file occupancy per coalesced preprocess invocation (§III-D)
    batch_limit: int = 50
    #: real seconds a batch group waits for co-batchable units
    #: (0 = whatever arrives in the same event-loop tick)
    batch_window_seconds: float = 0.0
    #: admission control: requests admitted concurrently
    max_pending_requests: int = 64
    #: bounded per-shard unit queue (put() backpressure beyond this)
    shard_queue_limit: int = 128
    #: fault plan applied per request (same semantics as sequential)
    fault_plan: "FaultPlan | None" = None
    retry_policy: "RetryPolicy | None" = None
    #: optional tracer for service-level spans (unit/batch execution)
    tracer: object = None
    #: optional structured-event log (:class:`repro.obs.events.
    #: EventLog`); None -> NULL_EVENTS, zero overhead
    events: object = None
    #: optional periodic metrics snapshotter (:class:`repro.obs.
    #: timeseries.Snapshotter`); started/stopped with the service when
    #: it carries an interval, sampled once at drain either way
    snapshotter: object = None
    #: run the shard supervisor (crash/hang detection, restarts,
    #: circuit breaking); off only for tests that want a bare pool
    supervise: bool = True
    #: supervisor tunables (None -> SupervisorConfig defaults)
    supervisor: "SupervisorConfig | None" = None

    def __post_init__(self) -> None:
        from repro.api import validate_jobs
        self.shards = validate_jobs(self.shards, what="shards")
        if self.batch_limit < 1:
            raise ValueError(
                f"batch_limit must be a positive integer, "
                f"got {self.batch_limit}")
        if self.max_pending_requests < 1:
            raise ValueError(
                f"max_pending_requests must be a positive integer, "
                f"got {self.max_pending_requests}")
        if self.shard_queue_limit < 1:
            raise ValueError(
                f"shard_queue_limit must be a positive integer, "
                f"got {self.shard_queue_limit}")


async def drive_units(generator: UnitGenerator, execute) -> object:
    """Drive a unit generator, awaiting ``execute(unit)`` per unit."""
    try:
        unit = generator.send(None)
        while True:
            result = await execute(unit)
            unit = generator.send(result)
    except StopIteration as stop:
        return stop.value


class CheckService:
    """A long-lived, sharded, batching check service over one corpus."""

    def __init__(self, corpus: Corpus, *,
                 options: JMakeOptions | None = None,
                 config: ServiceConfig | None = None,
                 cache: "BuildCache | bool | None" = True) -> None:
        self.corpus = corpus
        self.options = options or JMakeOptions()
        self.config = config or ServiceConfig()
        if cache is False or cache is None:
            self.cache: "BuildCache | None" = None
        elif cache is True:
            self.cache = BuildCache()
        else:
            self.cache = cache
        #: service-wide metrics (scheduling + aggregated pipeline)
        self.metrics = MetricsRegistry()
        self._tracer = self.config.tracer \
            if self.config.tracer is not None else NULL_TRACER
        #: structured operational events (crashes, rejections, trips)
        self.events = self.config.events \
            if self.config.events is not None else NULL_EVENTS
        #: periodic metric snapshots (None -> no time series)
        self.snapshotter = self.config.snapshotter
        #: injector pinned on the shared cache (cache-site faults are
        #: verdict-neutral; per-request injectors own the step sites)
        if self.cache is not None:
            pinned = FaultInjector(self.config.fault_plan) \
                if self.config.fault_plan else NULL_INJECTOR
            self.cache.pin_injector(pinned)
        self._pool: "ShardPool | None" = None
        self._batcher: "CrossRequestBatcher | None" = None
        self._supervisor: "ShardSupervisor | None" = None
        self._admission: "asyncio.Semaphore | None" = None
        self._requests: set = set()
        self._started = False
        self._draining = False
        self._request_seq = 0
        self.requests_completed = 0

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Create the shard pool/batcher and start the workers."""
        if self._started:
            return
        # the worker-site injector is service-level (process faults are
        # about *this service's* workers, not any one request) and is
        # keyed by (shard, pickup sequence), so firing is deterministic
        # for a given submission order
        worker_injector = FaultInjector(self.config.fault_plan) \
            if self.config.fault_plan else NULL_INJECTOR
        self._pool = ShardPool(self.config.shards,
                               queue_limit=self.config.shard_queue_limit,
                               metrics=self.metrics,
                               tracer=self._tracer,
                               injector=worker_injector)
        if self.config.supervise:
            self._supervisor = ShardSupervisor(
                self._pool, config=self.config.supervisor,
                metrics=self.metrics, tracer=self._tracer,
                events=self.events)
        self._batcher = CrossRequestBatcher(
            self._pool,
            batch_limit=self.config.batch_limit,
            batch_window=self.config.batch_window_seconds,
            metrics=self.metrics,
            tracer=self._tracer,
            events=self.events)
        self._admission = asyncio.Semaphore(
            self.config.max_pending_requests)
        self._pool.start()
        if self._supervisor is not None:
            self._supervisor.start()
        if self.snapshotter is not None and \
                self.snapshotter.interval_seconds is not None:
            self.snapshotter.start()
        self._started = True
        self._draining = False
        self.events.emit(EVENT_SERVICE_STARTED,
                         shards=self.config.shards,
                         batch_limit=self.config.batch_limit,
                         supervised=self._supervisor is not None)
        _logger.info("service started: shards=%d batch_limit=%d "
                     "supervised=%s", self.config.shards,
                     self.config.batch_limit,
                     self._supervisor is not None)

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, stop workers."""
        if not self._started:
            return
        self._draining = True
        # in-flight request coroutines first (they stop producing units)
        while self._requests:
            await asyncio.gather(*list(self._requests),
                                 return_exceptions=True)
        if self._batcher is not None:
            await self._batcher.drain()
        if self._pool is not None:
            # the supervisor must outlive join(): a worker that crashes
            # during the drain still needs its claimed job requeued for
            # the queues to ever empty
            await self._pool.join()
        if self._supervisor is not None:
            await self._supervisor.stop()
        if self._pool is not None:
            await self._pool.stop()
        if self.snapshotter is not None:
            # final sample: the drained state lands in the time series
            await self.snapshotter.stop(final_sample=True)
        self._started = False
        self.events.emit(EVENT_SERVICE_DRAINED,
                         requests_completed=self.requests_completed)
        _logger.info("service drained: requests=%d",
                     self.requests_completed)

    # -- submission ------------------------------------------------------------

    def _admit(self, request: CheckRequest) -> None:
        if self._draining or not self._started:
            raise ServiceDrainingError(
                "service is draining; request rejected")
        self._request_seq += 1
        if not request.request_id:
            request.request_id = f"req-{self._request_seq}"

    async def submit(self, request: CheckRequest) -> CheckResult:
        """Admit (awaiting a slot under load) and run one request."""
        self._admit(request)
        return await self._run_admitted(request)

    def submit_nowait(self, request: CheckRequest) -> "asyncio.Task":
        """Admit without waiting; raises ServiceOverloadedError when
        admission is full. Returns the request's task."""
        self._admit(request)
        if self._admission.locked():
            self.metrics.counter("service.rejected").inc()
            deepest = max(self._pool.shards,
                          key=lambda shard: shard.queue.qsize()) \
                if self._pool is not None else None
            self.events.emit(
                EVENT_SERVICE_REJECTED,
                request_id=request.request_id,
                queue_depth=len(self._requests),
                limit=self.config.max_pending_requests)
            raise ServiceOverloadedError(
                f"admission queue full "
                f"({self.config.max_pending_requests} in flight)",
                queue_depth=len(self._requests),
                limit=self.config.max_pending_requests,
                shard_id=deepest.index if deepest is not None else None)
        return asyncio.get_running_loop().create_task(
            self._run_admitted(request))

    async def _run_admitted(self, request: CheckRequest) -> CheckResult:
        # register before the semaphore wait so drain() sees requests
        # that were admitted but are still queued for a slot
        task = asyncio.current_task()
        self._requests.add(task)
        self.metrics.gauge("service.requests.in_flight").set(
            len(self._requests))
        try:
            async with self._admission:
                return await self._run_request(request)
        finally:
            self._requests.discard(task)
            self.metrics.gauge("service.requests.in_flight").set(
                len(self._requests))

    # -- execution -------------------------------------------------------------

    def _make_session(self, request: CheckRequest) -> CheckSession:
        return CheckSession.from_generated_tree(
            self.corpus.tree,
            options=request.options or self.options,
            cache=self.cache,
            metrics=self.metrics,
            fault_plan=self.config.fault_plan,
            retry_policy=self.config.retry_policy)

    async def _run_request(self, request: CheckRequest) -> CheckResult:
        session = self._make_session(request)
        dag = UnitDag(request_id=request.request_id)
        repository = self.corpus.repository
        commit = repository.resolve(request.commit_id)
        wall_start = time.perf_counter()
        with self._tracer.span("service.request",
                               request=request.request_id,
                               commit=commit.id):
            generator = session.iter_check_commit(repository, commit,
                                                  dag=dag)
            report = await drive_units(
                generator,
                lambda unit: self._execute_unit(unit,
                                                request.request_id))
        if session.last_build is not None and self._pool is not None:
            quarantine = session.last_build.quarantine
            self._pool.absorb_quarantine(quarantine)
            for arch in quarantine.archs():
                self.metrics.counter("service.quarantine.trips").inc()
                self.events.emit(EVENT_QUARANTINE_TRIP,
                                 request_id=request.request_id,
                                 commit=commit.id, arch=arch,
                                 site=quarantine.reason(arch))
        self.requests_completed += 1
        self.metrics.counter("service.requests.completed").inc()
        self.metrics.histogram("service.request.sim_seconds").observe(
            report.elapsed_seconds)
        self.metrics.histogram(
            "service.request.wall_seconds",
            buckets=_WALL_LATENCY_BUCKETS).observe(
                time.perf_counter() - wall_start)
        if report.fault_reports:
            self.metrics.counter("service.requests.faulted").inc()
        return CheckResult(
            request_id=request.request_id,
            commit_id=commit.id,
            report=report,
            record=report.to_dict(),
            elapsed_sim_seconds=report.elapsed_seconds,
            stage_counts=dag.stage_counts(),
        )

    async def _execute_unit(self, unit,
                            request_id: str | None = None) -> object:
        if unit.arch is None:
            # request-local stage (mutate, token-grep): run inline
            self.metrics.counter("service.units.local").inc()
            return unit.run()
        if unit.stage == STAGE_PREPROCESS:
            return await self._batcher.submit(unit)
        return await self._pool.shard_for(unit.arch).submit(
            unit, request_id=request_id)

    # -- conveniences ----------------------------------------------------------

    def check_commits(self, commit_ids, *,
                      options: JMakeOptions | None = None,
                      on_result=None) -> list[CheckResult]:
        """Synchronous wrapper: start, submit all, drain, return results
        in submission order.

        ``on_result`` fires per result, in submission order, as soon as
        it (and every earlier one) is available — the hook the resumable
        evaluation runner journals verdicts through. An exception from
        the callback aborts the run (that is how a simulated crash
        propagates); already-computed but not-yet-journaled results are
        lost, exactly as a real crash would lose them.
        """

        async def main() -> list[CheckResult]:
            await self.start()
            try:
                tasks = [
                    asyncio.ensure_future(self.submit(CheckRequest(
                        commit_id=commit_id, options=options)))
                    for commit_id in commit_ids]
                results = []
                for task in tasks:
                    result = await task
                    if on_result is not None:
                        on_result(result)
                    results.append(result)
                return results
            finally:
                await self.drain()

        return asyncio.run(main())

    def health(self) -> dict:
        """Live/ready/degraded, derived from supervisor + queue state.

        ``status`` is ``ok`` (started, everything healthy),
        ``degraded`` (serving, but a breaker is open or an arch is
        quarantined — capacity or coverage is reduced), ``draining``
        (refusing new work, finishing in-flight), or ``down`` (not
        started). ``ready`` is the load-balancer admission signal:
        True exactly when a new submit() would be accepted.
        """
        breakers = [shard.index for shard in self._pool.shards
                    if shard.breaker_open] if self._pool else []
        quarantined = sorted({
            arch for shard in (self._pool.shards if self._pool else [])
            for arch in shard.quarantine.archs()})
        if not self._started:
            status = "down"
        elif self._draining:
            status = "draining"
        elif breakers or quarantined:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "ready": self._started and not self._draining,
            "breaker_open_shards": breakers,
            "quarantined_archs": quarantined,
            "requests_in_flight": len(self._requests),
            "admission_free_slots":
                self.config.max_pending_requests - len(self._requests)
                if self._started else 0,
        }

    def stats(self) -> dict:
        """Scheduling telemetry: shards, batcher, admission, health."""
        return {
            "started": self._started,
            "draining": self._draining,
            "health": self.health(),
            "requests_completed": self.requests_completed,
            "requests_in_flight": len(self._requests),
            "shards": self._pool.stats() if self._pool else [],
            "batcher": self._batcher.stats() if self._batcher else {},
            "supervisor": self._supervisor.stats()
            if self._supervisor else {},
            "events": self.events.stats(),
            "snapshots": self.snapshotter.stats()
            if self.snapshotter is not None else None,
            "cache": None if self.cache is None
            else self.cache.stats_snapshot().render(),
            # process-local view: forked shard workers keep their own
            # substrate counters, this reports the coordinator's
            "substrate": prepared.stats_snapshot(),
        }
