"""The sharded, cross-request-batching check service.

Import the public names from :mod:`repro.api`; this package is the
implementation. See DESIGN.md §6 for the architecture.
"""

from repro.service.batcher import CrossRequestBatcher
from repro.service.request import CheckRequest, CheckResult
from repro.service.service import (
    START_METHODS,
    CheckService,
    ServiceConfig,
    drive_units,
)
from repro.service.shards import ArchShard, ShardPool, shard_index
from repro.service.supervisor import ShardSupervisor, SupervisorConfig
from repro.service.transport import (
    TRANSPORT_KINDS,
    Transport,
    TransportOutcome,
    create_transport,
    live_transports,
)

__all__ = [
    "ArchShard",
    "CheckRequest",
    "CheckResult",
    "CheckService",
    "CrossRequestBatcher",
    "START_METHODS",
    "ServiceConfig",
    "ShardPool",
    "ShardSupervisor",
    "SupervisorConfig",
    "TRANSPORT_KINDS",
    "Transport",
    "TransportOutcome",
    "create_transport",
    "drive_units",
    "live_transports",
    "shard_index",
]

#: watch-daemon names that briefly lived on this package during the
#: fleet-mode sweep; the supported import surface is ``repro.api``.
#: (``watch`` itself is absent: that name is the submodule, which
#: Python binds on the package at import time, shadowing __getattr__.)
_DEPRECATED_WATCH_NAMES = (
    "SyntheticTrafficSource",
    "WatchConfig",
    "WatchResult",
    "WatchSession",
    "WindowSource",
)


def __getattr__(name: str):
    """Deprecated access to the watch types via ``repro.service``.

    Mirrors the PR-4 ``JMake``/``EvaluationRunner`` pattern: the old
    spelling keeps working, warns once per call site, and returns the
    canonical object — so ``repro.service.WatchSession is
    repro.api.WatchSession`` holds.
    """
    if name in _DEPRECATED_WATCH_NAMES:
        import warnings

        from repro.service import watch as _watch_module
        warnings.warn(
            f"repro.service.{name} is deprecated; import {name} from "
            f"repro.api (the stable facade)",
            DeprecationWarning, stacklevel=2)
        return getattr(_watch_module, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
