"""The sharded, cross-request-batching check service.

Import the public names from :mod:`repro.api`; this package is the
implementation. See DESIGN.md §6 for the architecture.
"""

from repro.service.batcher import CrossRequestBatcher
from repro.service.request import CheckRequest, CheckResult
from repro.service.service import (
    START_METHODS,
    CheckService,
    ServiceConfig,
    drive_units,
)
from repro.service.shards import ArchShard, ShardPool, shard_index
from repro.service.supervisor import ShardSupervisor, SupervisorConfig
from repro.service.transport import (
    TRANSPORT_KINDS,
    Transport,
    TransportOutcome,
    create_transport,
    live_transports,
)

__all__ = [
    "ArchShard",
    "CheckRequest",
    "CheckResult",
    "CheckService",
    "CrossRequestBatcher",
    "START_METHODS",
    "ServiceConfig",
    "ShardPool",
    "ShardSupervisor",
    "SupervisorConfig",
    "TRANSPORT_KINDS",
    "Transport",
    "TransportOutcome",
    "create_transport",
    "drive_units",
    "live_transports",
    "shard_index",
]
