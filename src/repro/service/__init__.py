"""The sharded, cross-request-batching check service.

Import the public names from :mod:`repro.api`; this package is the
implementation. See DESIGN.md §6 for the architecture.
"""

from repro.service.batcher import CrossRequestBatcher
from repro.service.request import CheckRequest, CheckResult
from repro.service.service import CheckService, ServiceConfig, drive_units
from repro.service.shards import ArchShard, ShardPool, shard_index
from repro.service.supervisor import ShardSupervisor, SupervisorConfig

__all__ = [
    "ArchShard",
    "CheckRequest",
    "CheckResult",
    "CheckService",
    "CrossRequestBatcher",
    "ServiceConfig",
    "ShardPool",
    "ShardSupervisor",
    "SupervisorConfig",
    "drive_units",
    "shard_index",
]
