"""Request/result dataclasses of the check service.

These are part of the stable ``repro.api`` surface: a
:class:`CheckRequest` names a commit (plus per-request option
overrides), a :class:`CheckResult` carries the verdict-bearing
:class:`~repro.core.report.PatchReport`, its canonical serialized
record (with ``schema_version``), and scheduling telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.jmake import JMakeOptions
from repro.core.report import PatchReport


@dataclass
class CheckRequest:
    """One unit of service work: check a commit of the corpus."""

    #: the commit to check (any ref ``Repository.resolve`` accepts)
    commit_id: str
    #: per-request tunables; None uses the service's defaults
    options: JMakeOptions | None = None
    #: caller-chosen correlation id; assigned by the service if empty
    request_id: str = ""


@dataclass
class CheckResult:
    """The outcome of one :class:`CheckRequest`."""

    request_id: str
    commit_id: str
    #: the full verdict-bearing report (byte-identical to what the
    #: sequential ``EvaluationRunner`` path produces for this commit)
    report: PatchReport
    #: the canonical JSON-ready record (``schema_version`` included)
    record: dict = field(default_factory=dict)
    #: simulated seconds the check charged to its own clock
    elapsed_sim_seconds: float = 0.0
    #: units executed per stage for this request's DAG
    stage_counts: dict[str, int] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        """The report's verdict line."""
        return self.report.verdict
