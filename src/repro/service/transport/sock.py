"""The socket transport: warm workers over localhost TCP.

The coordinator listens on an ephemeral ``127.0.0.1`` port; each
worker process dials back, announces itself with a HELLO frame, and
then serves assignments over the stream. Unlike pipes, TCP gives no
message boundaries — the parent side reassembles frames with the
wire codec's :class:`~repro.service.transport.wire.FrameDecoder`, the
exact layer the hypothesis property suite attacks with truncation and
bit flips. A dropped connection (the ``socket_drop`` chaos kind, a
peer reset, a half-close) reads as EOF and is handled as a worker
crash — supervision is transport-uniform by construction.

Worker lifecycle still uses ``multiprocessing.Process`` (so fork and
spawn start methods both work); only the data plane is the socket.
"""

from __future__ import annotations

import asyncio
import multiprocessing

from repro.service.transport import wire
from repro.service.transport.remote import RemoteTransport, WorkerSlot
from repro.service.transport.worker import socket_worker_main


class SockParentChannel:
    """Async frame transport over an accepted worker connection."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = wire.FrameDecoder()

    async def send(self, frame: bytes) -> None:
        self._writer.write(frame)
        await self._writer.drain()

    async def recv_message(self) -> "tuple[int, dict] | None":
        while True:
            for message in self._decoder:
                return message
            try:
                chunk = await self._reader.read(65536)
            except (ConnectionError, OSError):
                return None
            if not chunk:
                return None
            self._decoder.feed(chunk)

    def close(self) -> None:
        try:
            self._writer.close()
        except (RuntimeError, OSError):
            pass


class SocketTransport(RemoteTransport):
    """Warm workers dialing back over the CRC32-framed protocol."""

    kind = "socket"

    def __init__(self, service) -> None:
        super().__init__(service)
        self._server: "asyncio.AbstractServer | None" = None
        self._host = "127.0.0.1"
        self._port = 0

    async def start(self) -> None:
        if self._server is None:
            self._server = await asyncio.start_server(
                self._on_connect, self._host, 0)
            self._port = self._server.sockets[0].getsockname()[1]
        await super().start()

    async def drain(self) -> None:
        await super().drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _spawn(self, slot: WorkerSlot) -> None:
        # a fresh rendezvous future per process generation: a stale
        # connection from a killed predecessor can never satisfy it
        slot._connected = asyncio.get_running_loop().create_future()
        context = multiprocessing.get_context(self.start_method)
        process = context.Process(
            target=socket_worker_main,
            args=(self._host, self._port, self._worker_init(slot)),
            name=f"jmake-socket-worker-{slot.index}",
            daemon=True)
        process.start()
        slot.process = process
        slot.pid = process.pid
        slot.channel = None

    async def _connect(self, slot: WorkerSlot) -> None:
        slot.channel = await slot._connected

    async def _on_connect(self, reader, writer) -> None:
        """Accept a worker, read its HELLO, hand the channel to the
        owning slot."""
        channel = SockParentChannel(reader, writer)
        message = await channel.recv_message()
        if message is None or message[0] != wire.MSG_HELLO:
            channel.close()
            return
        worker_id = message[1].get("worker_id", -1)
        if not 0 <= worker_id < len(self.slots):
            channel.close()
            return
        slot = self.slots[worker_id]
        rendezvous = getattr(slot, "_connected", None)
        if rendezvous is None or rendezvous.done():
            # a connection nobody is waiting for (stale predecessor)
            channel.close()
            return
        rendezvous.set_result(channel)
