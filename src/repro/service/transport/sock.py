"""The socket transport: warm workers over TCP, local or cross-host.

The coordinator listens on a configured (or ephemeral ``127.0.0.1``)
address; each worker process dials back, passes the shared-key HMAC
challenge/response handshake, and then serves assignments over the
stream. Unlike pipes, TCP gives no message boundaries — the parent
side reassembles frames with the wire codec's
:class:`~repro.service.transport.wire.FrameDecoder`, the exact layer
the hypothesis property suite attacks with truncation and bit flips.
A dropped connection (the ``socket_drop``/``net_partition`` chaos
kinds, a peer reset, a half-close) reads as EOF and is handled as a
worker crash — supervision is transport-uniform by construction —
except that a ``reconnect_grace_seconds`` window lets a partitioned
worker dial back and resume under a fresh lease epoch without burning
restart budget.

Two fleet shapes share this one transport:

- **local spawn** (the default): worker lifecycle uses
  ``multiprocessing.Process`` exactly as before; only the data plane
  is the socket. The spawned child runs the same
  :class:`~repro.service.transport.client.WorkerClient` session state
  machine an external worker does.
- **cross-host** (``spawn_workers=False`` + ``listen`` + a shared
  ``auth_key``): the coordinator spawns nothing and waits for
  ``jmake worker --connect HOST:PORT`` processes to claim its slots.
  Those workers rebuild the corpus deterministically from the shipped
  :class:`CorpusSpec` and are fingerprint-checked before serving.

Every accepted connection — local or remote — is challenged first and
never sees a WORK frame unless its HELLO carries the right HMAC.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import secrets

from repro.obs.events import (
    EVENT_AUTH_REJECTED,
    EVENT_WORKER_REGISTERED,
)
from repro.obs.logcfg import get_logger
from repro.service.transport import wire
from repro.service.transport.remote import RemoteTransport, WorkerSlot
from repro.service.transport.worker import socket_worker_main

_logger = get_logger("service.transport")

#: ceiling on one connection's CHALLENGE->HELLO exchange; a peer that
#: connects and goes silent must not pin the acceptor forever
HANDSHAKE_TIMEOUT_SECONDS = 10.0


class SockParentChannel:
    """Async frame transport over an accepted worker connection."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = wire.FrameDecoder()

    async def send(self, frame: bytes) -> None:
        self._writer.write(frame)
        await self._writer.drain()

    async def recv_message(self) -> "tuple[int, dict] | None":
        while True:
            for message in self._decoder:
                return message
            try:
                chunk = await self._reader.read(65536)
            except (ConnectionError, OSError):
                return None
            if not chunk:
                return None
            self._decoder.feed(chunk)

    def close(self) -> None:
        try:
            self._writer.close()
        except (RuntimeError, OSError):
            pass


def parse_listen(listen: "str | None") -> tuple[str, int]:
    """``"HOST:PORT"`` -> (host, port); None means loopback-ephemeral."""
    if not listen:
        return "127.0.0.1", 0
    host, sep, port_text = listen.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"listen address must be HOST:PORT, got {listen!r}")
    try:
        port = int(port_text)
    except ValueError as error:
        raise ValueError(
            f"listen address must be HOST:PORT, got {listen!r}") \
            from error
    if not 0 <= port < 65536:
        raise ValueError(f"listen port out of range: {port}")
    return host, port


class SocketTransport(RemoteTransport):
    """Warm workers dialing back over the CRC32-framed protocol."""

    kind = "socket"

    def __init__(self, service) -> None:
        super().__init__(service)
        config = service.config
        self._server: "asyncio.AbstractServer | None" = None
        self._host, self._port = parse_listen(
            getattr(config, "listen", None))
        #: the fleet's shared secret; generated fresh per coordinator
        #: when not configured, which still authenticates the locally
        #: spawned workers (they inherit it via WorkerInit) while
        #: locking out everything else
        self.auth_key = getattr(config, "auth_key", None) \
            or secrets.token_hex(16)
        self.spawn_workers = bool(
            getattr(config, "spawn_workers", True))
        self.reconnect_grace = float(
            getattr(config, "reconnect_grace_seconds", 0.0) or 0.0)
        #: the corpus head commit id every worker must match
        self._fingerprint = ""

    def address(self) -> "tuple[str, int] | None":
        """The bound (host, port) once listening (None before)."""
        if self._server is None:
            return None
        return self._host, self._port

    async def start(self) -> None:
        if self._server is None:
            self._server = await asyncio.start_server(
                self._on_connect, self._host, self._port)
            self._port = self._server.sockets[0].getsockname()[1]
            self._fingerprint = \
                self.service.corpus.repository.head().id
        await super().start()

    async def drain(self) -> None:
        await super().drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _worker_init(self, slot: WorkerSlot):
        init = super()._worker_init(slot)
        init.auth_key = self.auth_key
        return init

    def _spawn(self, slot: WorkerSlot) -> None:
        # a fresh rendezvous future per process generation: a stale
        # connection from a killed predecessor can never satisfy it
        slot._connected = asyncio.get_running_loop().create_future()
        slot._handshaking = False
        if not self.spawn_workers:
            # cross-host fleet: the slot waits for an external
            # `jmake worker --connect` to claim it
            slot.process = None
            slot.pid = None
            slot.channel = None
            return
        context = multiprocessing.get_context(self.start_method)
        process = context.Process(
            target=socket_worker_main,
            args=(self._host or "127.0.0.1", self._port,
                  self._worker_init(slot)),
            name=f"jmake-socket-worker-{slot.index}",
            daemon=True)
        process.start()
        slot.process = process
        slot.pid = process.pid
        slot.channel = None

    async def _connect(self, slot: WorkerSlot) -> None:
        slot.channel = await slot._connected

    # -- the authenticated accept path ---------------------------------

    def _slot_for(self, worker_id: int) -> "WorkerSlot | None":
        """The slot this HELLO may claim (None when nothing waits).

        A non-negative ``worker_id`` targets its own armed slot (the
        spawned-local and rejoin cases); ``-1`` claims the first armed
        slot nobody else is mid-handshake on (the cross-host case).
        The ``_handshaking`` flag is set synchronously by the caller —
        no await between check and set — so two racing accepts cannot
        claim the same slot.
        """
        if worker_id >= 0:
            if worker_id >= len(self.slots):
                return None
            slot = self.slots[worker_id]
            rendezvous = getattr(slot, "_connected", None)
            if rendezvous is None or rendezvous.done() or \
                    getattr(slot, "_handshaking", False):
                return None
            return slot
        for slot in self.slots:
            rendezvous = getattr(slot, "_connected", None)
            if rendezvous is not None and not rendezvous.done() and \
                    not getattr(slot, "_handshaking", False):
                return slot
        return None

    async def _reject(self, channel, reason: str, kind: str) -> None:
        try:
            await channel.send(wire.encode_frame(
                wire.MSG_ERROR, wire.error_message(0, reason, kind)))
        except (OSError, ConnectionError):
            pass
        channel.close()

    async def _on_connect(self, reader, writer) -> None:
        """Challenge a dialing peer; hand verified channels to slots."""
        channel = SockParentChannel(reader, writer)
        try:
            await asyncio.wait_for(self._handshake(channel),
                                   timeout=HANDSHAKE_TIMEOUT_SECONDS)
        except asyncio.TimeoutError:
            channel.close()
        except (OSError, ConnectionError):
            channel.close()

    async def _handshake(self, channel: SockParentChannel) -> None:
        nonce = secrets.token_hex(16)
        await channel.send(wire.encode_frame(
            wire.MSG_CHALLENGE, wire.challenge_message(nonce)))
        message = await channel.recv_message()
        if message is None or message[0] != wire.MSG_HELLO:
            channel.close()
            return
        payload = message[1]
        if not wire.verify_auth(self.auth_key, nonce,
                                payload.get("auth", "")):
            self.auth_rejected += 1
            self.service.metrics.counter(
                "service.transport.auth_rejected").inc()
            _logger.warning(
                "socket worker pid %s failed the auth handshake; "
                "rejected", payload.get("pid"))
            self.service.events.emit(
                EVENT_AUTH_REJECTED, pid=payload.get("pid"),
                worker=payload.get("worker_id"))
            await self._reject(channel, "auth handshake failed",
                               "AuthError")
            return
        worker_id = payload.get("worker_id", -1)
        slot = self._slot_for(worker_id)
        if slot is None:
            # authenticated but nothing to do: every slot is taken,
            # broken, or mid-handshake. Retryable from the client's
            # side — a rejoining worker may simply be early.
            await self._reject(channel, "no free worker slot",
                               "TransportError")
            return
        slot._handshaking = True
        try:
            # a fresh epoch fences every frame of any previous session
            slot.lease_epoch += 1
            corpus_payload = None
            spec = getattr(self.service.corpus, "spec", None)
            if spec is not None and \
                    getattr(spec, "tree_spec", None) is None:
                corpus_payload = wire.corpus_spec_to_wire(spec)
            await channel.send(wire.encode_frame(
                wire.MSG_WELCOME, wire.welcome_message(
                    slot.index, slot.lease_epoch, self._fingerprint,
                    self.heartbeat_seconds, self.lease_seconds,
                    corpus=corpus_payload,
                    options=wire.options_to_wire(self.service.options),
                    use_cache=self.service.cache is not None,
                    fault_plan=wire.fault_plan_to_wire(
                        self.service.config.fault_plan),
                    retry_policy=wire.retry_policy_to_wire(
                        self.service.config.retry_policy))))
            slot.pid = payload.get("pid") or slot.pid
            self.service.events.emit(
                EVENT_WORKER_REGISTERED, worker=slot.index,
                pid=slot.pid, lease=slot.lease_epoch,
                external=slot.process is None)
            rendezvous = getattr(slot, "_connected", None)
            if rendezvous is not None and not rendezvous.done():
                rendezvous.set_result(channel)
            else:  # pragma: no cover - defensive: raced a teardown
                channel.close()
        finally:
            slot._handshaking = False

    # -- partition grace ------------------------------------------------

    async def _try_rejoin(self, slot: WorkerSlot) -> bool:
        """Give a partitioned worker ``reconnect_grace`` to dial back.

        For spawned-local slots the child process must still be alive
        (a dead child is a real crash and takes the restart path); a
        cross-host slot has no process to check, so the grace window
        alone decides.
        """
        if self.reconnect_grace <= 0:
            return False
        if slot.channel is not None:
            slot.channel.close()
            slot.channel = None
        if self.spawn_workers:
            process = slot.process
            if process is None:
                return False
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, process.join, 0.05)
            if not process.is_alive():
                return False
        slot._connected = asyncio.get_running_loop().create_future()
        slot._handshaking = False
        try:
            await asyncio.wait_for(self._connect(slot),
                                   timeout=self.reconnect_grace)
        except asyncio.TimeoutError:
            return False
        return True
