"""Shared coordinator logic for process-backed transports.

:class:`RemoteTransport` owns everything the mp and socket transports
have in common: warm worker slots, wire-frame dispatch, uniform
supervision, and telemetry relay. Subclasses only provide the channel
plumbing (:meth:`_spawn` / :meth:`_connect`).

Supervision is deliberately the same state machine as the in-process
:class:`~repro.service.supervisor.ShardSupervisor` — a dead child
process or a dropped socket is just another shard crash:

- **crash** — the channel reaches EOF while an assignment is claimed
  (child killed, pipe closed, socket reset);
- **hang** — no reply lands within the hang deadline (the remote
  default is :data:`REMOTE_HANG_DEADLINE_SECONDS`; an explicitly
  configured ``SupervisorConfig`` wins);
- recovery is requeue-then-restart under the same exponential-backoff
  restart budget, and an exhausted budget opens the slot's circuit
  breaker. When *every* slot is broken, an inline drain loop runs the
  remaining assignments in the coordinator process — degraded to
  sequential, but never losing results.

Requeue is idempotent for the same reason it is in-process: chaos kills
fire *before* the assignment runs, and every check is a pure function
of (corpus, commit), so re-executing a lost assignment reproduces the
byte-identical verdict. Exactly-once delivery of verdicts is the
journal ledger's dedup layer, unchanged.

The worker-site fault injector runs on the coordinator, keyed by
(worker slot, lifetime pickup sequence) — the exact key discipline of
:class:`~repro.service.shards.ArchShard` — so chaos schedules are
deterministic for a fixed dispatch order and survive worker restarts
(a fresh child process does not reset the slot's pickup counter).
"""

from __future__ import annotations

import asyncio

from repro.errors import TransportError
from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import SITE_WORKER
from repro.obs.events import (
    EVENT_LEASE_EXPIRED,
    EVENT_LEASE_FENCED,
    EVENT_SHARD_BREAKER_OPEN,
    EVENT_SHARD_CRASH,
    EVENT_SHARD_HANG,
    EVENT_SHARD_INLINE_DRAIN,
    EVENT_SHARD_RESTART,
    EVENT_VERDICT_ACCEPTED,
    EVENT_WORKER_EXIT,
    EVENT_WORKER_REJOINED,
    EVENT_WORKER_REQUEUE,
    EVENT_WORKER_SPAWNED,
)
from repro.obs.logcfg import get_logger
from repro.obs.timeseries import registry_from_dict
from repro.core.units import UnitDag, run_units
from repro.service.supervisor import SupervisorConfig
from repro.service.transport import wire
from repro.service.transport.base import Transport, TransportOutcome
from repro.service.transport.worker import WorkerInit

_logger = get_logger("service.transport")

#: default hang deadline for *remote* assignments. The in-process
#: supervisor can use 0.2s because its single-threaded loop makes a
#: held claim unobservable unless the worker is parked on an await;
#: a remote worker is doing real wall-clock work, so the deadline must
#: dominate a legitimately slow commit. An explicitly configured
#: SupervisorConfig overrides this.
REMOTE_HANG_DEADLINE_SECONDS = 30.0

#: generous ceiling on worker startup (corpus unpickle + cache prime)
HELLO_TIMEOUT_SECONDS = 120.0


class WorkerSlot:
    """One worker position: process + channel + supervision state."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.channel = None
        self.pid: "int | None" = None
        #: assignment pickups over the slot's lifetime — the fault-
        #: injection key; deliberately NOT reset on restart, so a
        #: respawned process cannot re-draw its predecessor's faults
        self.pickups = 0
        self.assignments_done = 0
        self.crashes = 0
        self.hangs = 0
        self.restarts = 0
        self.breaker_open = False
        self.breaker_reason = ""
        self.claimed = None
        #: fencing token: bumped on every registration, echoed by
        #: every verdict; a frame carrying an older epoch is from a
        #: session whose work was already requeued and is discarded
        self.lease_epoch = 0
        #: event-loop time of the last heartbeat under the current
        #: lease epoch (dispatch start counts as an implicit beat)
        self.last_heartbeat = 0.0
        #: stale-epoch verdicts fenced off this slot
        self.fenced = 0
        #: reconnects accepted within the grace window (no restart
        #: budget burned — the process never died)
        self.rejoins = 0
        self._task: "asyncio.Task | None" = None

    def stats(self) -> dict:
        return {
            "worker": self.index,
            "pid": self.pid,
            "alive": self.process is not None
            and self.process.is_alive(),
            "assignments": self.assignments_done,
            "pickups": self.pickups,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "restarts": self.restarts,
            "breaker_open": self.breaker_open,
            "breaker_reason": self.breaker_reason,
            "lease_epoch": self.lease_epoch,
            "fenced": self.fenced,
            "rejoins": self.rejoins,
        }


class _Assignment:
    """One queued request plus its completion future."""

    __slots__ = ("seq", "request", "future", "attempts")

    def __init__(self, seq: int, request, future) -> None:
        self.seq = seq
        self.request = request
        self.future = future
        self.attempts = 0


class RemoteTransport(Transport):
    """Warm worker processes behind wire-frame dispatch."""

    kind = "remote"

    def __init__(self, service) -> None:
        self.service = service
        config = service.config
        self.jobs = config.jobs if config.jobs else config.shards
        self.start_method = config.start_method
        self.supervisor_config = config.supervisor or SupervisorConfig(
            hang_deadline_seconds=REMOTE_HANG_DEADLINE_SECONDS)
        self.slots = [WorkerSlot(index) for index in range(self.jobs)]
        self._pending: "asyncio.Queue[_Assignment]" = None
        self._seq = 0
        self._started = False
        self._injector = FaultInjector(config.fault_plan) \
            if config.fault_plan else NULL_INJECTOR
        self._inline_task: "asyncio.Task | None" = None
        self.inline_jobs = 0
        #: seconds between worker heartbeats (0 = heartbeats off and
        #: the plain hang deadline governs reply waits)
        self.heartbeat_seconds = float(
            getattr(config, "heartbeat_seconds", 0.0) or 0.0)
        #: lease length: a worker whose last beat is older than this
        #: is declared dead even if its socket still looks open
        self.lease_seconds = float(
            getattr(config, "lease_seconds", 0.0) or 0.0)
        self.hello_timeout = float(
            getattr(config, "hello_timeout_seconds", None)
            or HELLO_TIMEOUT_SECONDS)
        # -- supervisor-shaped counters ------------------------------------
        self.crashes_detected = 0
        self.hangs_detected = 0
        self.restarts = 0
        self.requeued_jobs = 0
        self.breakers_opened = 0
        self.rejoins = 0
        self.fenced_replies = 0
        self.auth_rejected = 0
        #: ops view of arch flakiness across requests (never verdicts)
        self._quarantined: dict[str, str] = {}

    # -- channel plumbing (subclass responsibility) ------------------------

    def _spawn(self, slot: WorkerSlot) -> None:
        """Start the slot's worker process (and channel, if eager)."""
        raise NotImplementedError

    async def _connect(self, slot: WorkerSlot) -> None:
        """Wait until ``slot.channel`` is ready (HELLO consumed)."""
        raise NotImplementedError

    def _worker_init(self, slot: WorkerSlot) -> WorkerInit:
        service = self.service
        return WorkerInit(
            worker_id=slot.index,
            start_method=self.start_method,
            corpus=service.corpus,
            options=service.options,
            fault_plan=service.config.fault_plan,
            retry_policy=service.config.retry_policy,
            use_cache=service.cache is not None)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        self._pending = asyncio.Queue()
        loop = asyncio.get_running_loop()
        for slot in self.slots:
            self._spawn(slot)
            self.service.events.emit(
                EVENT_WORKER_SPAWNED, worker=slot.index,
                transport=self.kind,
                start_method=self.start_method)
            slot._task = loop.create_task(
                self._slot_loop(slot),
                name=f"transport-{self.kind}-worker-{slot.index}")
        self._started = True

    async def drain(self) -> None:
        if not self._started:
            return
        # every admitted request has resolved by the time the service
        # calls transport drain, so the slots are idle: stop the loops,
        # then ask the children to exit cleanly
        for slot in self.slots:
            if slot._task is not None:
                slot._task.cancel()
        await asyncio.gather(
            *[slot._task for slot in self.slots
              if slot._task is not None],
            return_exceptions=True)
        if self._inline_task is not None:
            self._inline_task.cancel()
            try:
                await self._inline_task
            except asyncio.CancelledError:
                pass
            self._inline_task = None
        for slot in self.slots:
            await self._shutdown_slot(slot)
        self._started = False

    async def _shutdown_slot(self, slot: WorkerSlot) -> None:
        if slot.channel is not None:
            try:
                await slot.channel.send(wire.encode_frame(
                    wire.MSG_SHUTDOWN, wire.shutdown_message()))
            except (OSError, TransportError):
                pass
        await self._reap(slot, graceful=True)

    async def _reap(self, slot: WorkerSlot, *,
                    graceful: bool = False) -> None:
        """Close the channel, join (or kill) the worker process."""
        if slot.channel is not None:
            slot.channel.close()
            slot.channel = None
        process = slot.process
        slot.process = None
        if process is None:
            return
        loop = asyncio.get_running_loop()
        if graceful:
            await loop.run_in_executor(None, process.join, 5.0)
        if process.is_alive():
            process.kill()
            await loop.run_in_executor(None, process.join, 5.0)
        self.service.events.emit(
            EVENT_WORKER_EXIT, worker=slot.index,
            transport=self.kind, exitcode=process.exitcode)
        process.close()

    # -- execution ---------------------------------------------------------

    async def run_request(self, request) -> TransportOutcome:
        self._seq += 1
        future = asyncio.get_running_loop().create_future()
        assignment = _Assignment(self._seq, request, future)
        self._pending.put_nowait(assignment)
        return await future

    async def _slot_loop(self, slot: WorkerSlot) -> None:
        try:
            await self._connect_or_recover(slot)
            while not slot.breaker_open:
                assignment = await self._pending.get()
                await self._dispatch(slot, assignment)
        except asyncio.CancelledError:
            raise

    async def _connect_or_recover(self, slot: WorkerSlot) -> None:
        """Wait for the slot's worker to say HELLO; a worker that dies
        while starting burns restart budget like any other crash."""
        while not slot.breaker_open:
            try:
                await asyncio.wait_for(self._connect(slot),
                                       timeout=self.hello_timeout)
                return
            except (asyncio.TimeoutError, TransportError, OSError):
                # no rejoin here: we just failed to connect, so a
                # grace-window wait would only recurse into itself
                await self._handle_loss(slot, None, cause="crash",
                                        allow_rejoin=False)

    async def _dispatch(self, slot: WorkerSlot,
                        assignment: _Assignment) -> None:
        if assignment.future.cancelled():
            return
        slot.pickups += 1
        slot.claimed = assignment
        spec = self._injector.fire(SITE_WORKER,
                                   arch=f"worker-{slot.index}",
                                   path=f"pickup-{slot.pickups}")
        chaos = spec.kind if spec is not None else None
        request = assignment.request
        frame = wire.encode_frame(wire.MSG_WORK, wire.work_message(
            assignment.seq, request.request_id, request.commit_id,
            options=request.options, chaos=chaos,
            lease=slot.lease_epoch))
        deadline = self.supervisor_config.hang_deadline_seconds
        try:
            await slot.channel.send(frame)
            reply = await self._await_reply(slot, assignment.seq)
        except asyncio.TimeoutError:
            self.hangs_detected += 1
            slot.hangs += 1
            self.service.metrics.counter(
                "service.supervisor.hangs_detected").inc()
            _logger.warning(
                "%s worker %d hung past the %.3fs deadline; killing "
                "and recovering", self.kind, slot.index, deadline)
            self.service.events.emit(
                EVENT_SHARD_HANG, request_id=request.request_id,
                shard=slot.index, deadline_seconds=deadline,
                pickups=slot.pickups)
            await self._handle_loss(slot, assignment, cause="hang")
            return
        except (OSError, TransportError):
            reply = None
        if reply is None:
            self.crashes_detected += 1
            slot.crashes += 1
            self.service.metrics.counter(
                "service.supervisor.crashes_detected").inc()
            _logger.warning(
                "%s worker %d lost mid-assignment; recovering",
                self.kind, slot.index)
            self.service.events.emit(
                EVENT_SHARD_CRASH, request_id=request.request_id,
                shard=slot.index, error="WorkerLostError",
                pickups=slot.pickups)
            await self._handle_loss(slot, assignment, cause="crash")
            return
        slot.claimed = None
        msg_type, payload = reply
        if msg_type == wire.MSG_ERROR:
            if not assignment.future.done():
                assignment.future.set_exception(TransportError(
                    f"worker {slot.index} failed assignment "
                    f"{assignment.seq}: [{payload['kind']}] "
                    f"{payload['error']}"))
            return
        slot.assignments_done += 1
        self.service.events.emit(
            EVENT_VERDICT_ACCEPTED, request_id=request.request_id,
            worker=slot.index, commit=request.commit_id,
            lease=slot.lease_epoch, seq=assignment.seq)
        outcome = self._absorb_verdict(payload, slot.index)
        if not assignment.future.done():
            assignment.future.set_result(outcome)

    async def _await_reply(self, slot: WorkerSlot,
                           seq: int) -> "tuple[int, dict] | None":
        """Wait for the reply under the slot's liveness regime.

        Without heartbeats this is the classic hang deadline: a fixed
        window from dispatch. With heartbeats on, the window *slides*:
        the reply may take arbitrarily long as long as the worker keeps
        beating within ``lease_seconds`` — which is how a ``net_slow``
        worker survives while a ``net_half_open`` one (open socket,
        total silence) is reclaimed the moment its lease lapses.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        slot.last_heartbeat = start  # dispatch is an implicit beat
        task = loop.create_task(self._read_reply(slot, seq))
        lease_mode = self.heartbeat_seconds > 0 and \
            self.lease_seconds > 0
        try:
            while True:
                if lease_mode:
                    horizon = slot.last_heartbeat + self.lease_seconds
                else:
                    horizon = start + \
                        self.supervisor_config.hang_deadline_seconds
                remaining = horizon - loop.time()
                if remaining <= 0:
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass
                    if lease_mode:
                        self.service.events.emit(
                            EVENT_LEASE_EXPIRED, worker=slot.index,
                            lease=slot.lease_epoch,
                            lease_seconds=self.lease_seconds)
                    raise asyncio.TimeoutError
                done, _ = await asyncio.wait({task}, timeout=remaining)
                if done:
                    return task.result()
        except asyncio.CancelledError:
            task.cancel()
            raise

    async def _read_reply(self, slot: WorkerSlot,
                          seq: int) -> "tuple[int, dict] | None":
        """The worker's VERDICT/ERROR for ``seq`` (None on EOF).

        One assignment is in flight per worker and channels are never
        reused across processes, so a mismatched seq can only be a
        protocol bug — surfaced, not skipped. A VERDICT carrying a
        stale lease epoch is the exception: that is a fenced reply
        from a session whose work was already requeued, discarded so
        it can never double-apply.
        """
        while True:
            message = await slot.channel.recv_message()
            if message is None:
                return None
            msg_type, payload = message
            if msg_type == wire.MSG_HELLO:
                continue  # late duplicate announcement; harmless
            if msg_type == wire.MSG_HEARTBEAT:
                if payload.get("lease") == slot.lease_epoch:
                    slot.last_heartbeat = \
                        asyncio.get_running_loop().time()
                continue
            if msg_type not in (wire.MSG_VERDICT, wire.MSG_ERROR):
                continue
            if msg_type == wire.MSG_VERDICT and \
                    payload.get("lease", slot.lease_epoch) != \
                    slot.lease_epoch:
                self.fenced_replies += 1
                slot.fenced += 1
                self.service.metrics.counter(
                    "service.transport.fenced_replies").inc()
                _logger.warning(
                    "%s worker %d sent a verdict under stale lease "
                    "%r (current %d); fenced", self.kind, slot.index,
                    payload.get("lease"), slot.lease_epoch)
                self.service.events.emit(
                    EVENT_LEASE_FENCED,
                    request_id=payload.get("request_id"),
                    worker=slot.index,
                    stale_lease=payload.get("lease"),
                    lease=slot.lease_epoch)
                continue
            if payload.get("seq") != seq:
                raise TransportError(
                    f"worker {slot.index} answered seq "
                    f"{payload.get('seq')!r} while {seq} was in "
                    f"flight")
            return msg_type, payload

    def _absorb_verdict(self, payload: dict,
                        worker_id: int) -> TransportOutcome:
        """Rebuild the report and fold worker telemetry into the
        service's obs plane."""
        report = wire.report_from_wire(payload["report"])
        metrics = payload.get("metrics") or {}
        if metrics:
            self.service.metrics.merge(registry_from_dict(metrics))
        for event in payload.get("events") or []:
            attrs = dict(event.get("attrs") or {})
            attrs.setdefault("worker", worker_id)
            self.service.events.emit(
                event["kind"], request_id=event.get("request_id"),
                **attrs)
        quarantine = dict(payload.get("quarantine") or {})
        self._quarantined.update(quarantine)
        return TransportOutcome(
            report=report,
            stage_counts=dict(payload.get("stage_counts") or {}),
            quarantine=quarantine,
            worker_id=worker_id)

    # -- recovery ----------------------------------------------------------

    def _requeue(self, slot: WorkerSlot, assignment: _Assignment,
                 cause: str) -> None:
        """Put lost work back on the queue (idempotent: pure re-run)."""
        assignment.attempts += 1
        self.requeued_jobs += 1
        self.service.metrics.counter(
            "service.supervisor.requeued_jobs").inc()
        self.service.events.emit(
            EVENT_WORKER_REQUEUE,
            request_id=assignment.request.request_id,
            worker=slot.index, cause=cause,
            attempts=assignment.attempts)
        self._pending.put_nowait(assignment)

    async def _try_rejoin(self, slot: WorkerSlot) -> bool:
        """Wait for a partitioned worker to reconnect in grace.

        The base transport has no reconnect story (a dead pipe means a
        dead child); the socket transport overrides this to re-arm the
        slot's rendezvous and wait out its configured grace window.
        """
        return False

    async def _handle_loss(self, slot: WorkerSlot,
                           assignment: "_Assignment | None",
                           cause: str, *,
                           allow_rejoin: bool = True) -> None:
        """Rejoin-or-requeue-then-restart, or open the breaker.

        A crashed *connection* is given one chance to be a partition:
        if the worker process dials back within the transport's grace
        window it re-registers under a fresh lease epoch and no
        restart budget is burned (the process never died). Everything
        else takes the reap/restart/breaker path unchanged.
        """
        slot.claimed = None
        if allow_rejoin and cause == "crash" and \
                await self._try_rejoin(slot):
            self.rejoins += 1
            slot.rejoins += 1
            self.service.metrics.counter(
                "service.transport.rejoins").inc()
            _logger.info("%s worker %d rejoined within grace "
                         "(lease epoch %d)", self.kind, slot.index,
                         slot.lease_epoch)
            self.service.events.emit(
                EVENT_WORKER_REJOINED, worker=slot.index,
                lease=slot.lease_epoch, rejoins=slot.rejoins)
            if assignment is not None:
                self._requeue(slot, assignment, cause)
            return
        await self._reap(slot)
        if assignment is not None:
            self._requeue(slot, assignment, cause)
        if slot.restarts >= self.supervisor_config.\
                max_restarts_per_shard:
            self._open_breaker(slot)
            return
        slot.restarts += 1
        self.restarts += 1
        self.service.metrics.counter(
            "service.supervisor.restarts").inc()
        delay = self.supervisor_config.backoff_seconds(slot.restarts)
        _logger.info("restarting %s worker %d (restart %d/%d, "
                     "backoff %.3fs)", self.kind, slot.index,
                     slot.restarts,
                     self.supervisor_config.max_restarts_per_shard,
                     delay)
        self.service.events.emit(
            EVENT_SHARD_RESTART, shard=slot.index,
            restart=slot.restarts,
            budget=self.supervisor_config.max_restarts_per_shard,
            backoff_seconds=delay)
        if delay > 0:
            await asyncio.sleep(delay)
        self._spawn(slot)
        self.service.events.emit(
            EVENT_WORKER_SPAWNED, worker=slot.index,
            transport=self.kind, start_method=self.start_method,
            restart=slot.restarts)
        await self._connect_or_recover(slot)

    def _open_breaker(self, slot: WorkerSlot) -> None:
        slot.breaker_open = True
        slot.breaker_reason = (
            f"restart budget exhausted "
            f"({self.supervisor_config.max_restarts_per_shard} "
            f"restart(s))")
        self.breakers_opened += 1
        self.service.metrics.counter(
            "service.supervisor.breakers_opened").inc()
        _logger.error("%s worker %d circuit breaker OPEN (%s)",
                      self.kind, slot.index, slot.breaker_reason)
        self.service.events.emit(
            EVENT_SHARD_BREAKER_OPEN, shard=slot.index,
            reason=slot.breaker_reason)
        if all(other.breaker_open for other in self.slots) and \
                self._inline_task is None:
            # no workers left anywhere: degrade to running assignments
            # in the coordinator process — sequential, but complete
            self._inline_task = asyncio.get_running_loop().create_task(
                self._inline_loop(), name=f"transport-{self.kind}-"
                f"inline-drain")

    async def _inline_loop(self) -> None:
        while True:
            assignment = await self._pending.get()
            if assignment.future.cancelled():
                continue
            self.inline_jobs += 1
            self.service.events.emit(
                EVENT_SHARD_INLINE_DRAIN, shard=-1, jobs=1)
            try:
                outcome = self._run_inline(assignment)
            except Exception as error:  # noqa: BLE001
                if not assignment.future.done():
                    assignment.future.set_exception(error)
                continue
            if not assignment.future.done():
                assignment.future.set_result(outcome)

    def _run_inline(self, assignment: _Assignment) -> TransportOutcome:
        """Degraded path: the coordinator checks the commit itself."""
        service = self.service
        request = assignment.request
        session = service._make_session(request)
        dag = UnitDag(request_id=request.request_id)
        repository = service.corpus.repository
        commit = repository.resolve(request.commit_id)
        report = run_units(
            session.iter_check_commit(repository, commit, dag=dag))
        quarantine: dict[str, str] = {}
        if session.last_build is not None:
            request_quarantine = session.last_build.quarantine
            quarantine = {arch: request_quarantine.reason(arch)
                          for arch in request_quarantine.archs()}
        self._quarantined.update(quarantine)
        return TransportOutcome(report=report,
                                stage_counts=dag.stage_counts(),
                                quarantine=quarantine,
                                worker_id=-1)

    # -- telemetry ---------------------------------------------------------

    def shard_stats(self) -> list:
        return [slot.stats() for slot in self.slots]

    def supervisor_stats(self) -> dict:
        return {
            "crashes_detected": self.crashes_detected,
            "hangs_detected": self.hangs_detected,
            "restarts": self.restarts,
            "requeued_jobs": self.requeued_jobs,
            "breakers_opened": self.breakers_opened,
            "breaker_open_shards": [slot.index for slot in self.slots
                                    if slot.breaker_open],
            "rejoins": self.rejoins,
            "fenced_replies": self.fenced_replies,
            "auth_rejected": self.auth_rejected,
        }

    def breaker_open_workers(self) -> list:
        return [slot.index for slot in self.slots
                if slot.breaker_open]

    def quarantined_archs(self) -> list:
        return sorted(self._quarantined)
