"""The shard-transport wire codec: frames and messages.

Remote shard workers (:mod:`repro.service.transport.mp` pipes,
:mod:`repro.service.transport.sock` sockets) exchange length-prefixed,
CRC32-checked frames whose payload is the same canonical JSON the
write-ahead journal speaks (sorted keys, tight separators, ``allow_nan
=False``), so a verdict crossing the wire and a verdict landing in the
journal are literally the same bytes discipline. Frame layout::

    offset  size  field
    0       4     magic  b"JMK1"
    4       1     wire version (1)
    5       1     message type code
    6       4     payload length, big-endian
    10      4     CRC32 over version, type, length and payload (BE)
    14      N     payload: canonical JSON

The CRC deliberately covers the version, type, and length bytes in
addition to the payload: a single bit flipped *anywhere* after the
magic is a checksum mismatch, so a frame can never silently decode as
a different message type than the one sent.

Damage is never silent: a frame that ends early raises
:class:`~repro.errors.FrameTruncatedError` (the streaming decoder
treats that as "wait for more bytes"), a bad magic/version/CRC/JSON
raises :class:`~repro.errors.FrameCorruptError`, a declared length
above :data:`MAX_FRAME_BYTES` raises
:class:`~repro.errors.FrameTooLargeError`, and a well-framed payload
with the wrong shape raises :class:`~repro.errors.WireSchemaError` —
mirroring the journal's torn-tail/interior-damage split.

Verdict payloads reuse the :data:`SCHEMA_VERSION` canonical record
(:meth:`repro.core.report.PatchReport.to_dict`) plus a lossless
``detail`` block (attempts, mutations, durations, fault reports) so the
coordinator can rebuild the *full* :class:`PatchReport` — the
evaluation runner derives its per-attempt records from it, and the
differential suite pins the rebuilt report's canonical form
byte-identical to a local run. Work units cross the wire as inert
descriptors only (:meth:`repro.core.units.WorkUnit.describe`): thunks
are closures over session state and never leave their process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import json
import struct
import zlib

from repro.core.jmake import JMakeOptions
from repro.core.mutation import Mutation
from repro.core.report import (
    SCHEMA_VERSION,
    ArchAttempt,
    FileReport,
    FileStatus,
    PatchReport,
)
from repro.core.units import WorkUnit
from repro.errors import (
    FrameCorruptError,
    FrameTooLargeError,
    FrameTruncatedError,
    WireSchemaError,
)
from repro.faults.inject import FaultReport

#: first bytes of every frame; a stream that does not start with them
#: is not (or no longer) speaking this protocol
MAGIC = b"JMK1"
#: bumped on incompatible frame-layout changes
WIRE_VERSION = 1
#: refuse frames that declare more than this much payload — a corrupt
#: length field must not stall the stream waiting for gigabytes
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: magic | version | type | length | crc32
_HEADER = struct.Struct(">4sBBII")
HEADER_BYTES = _HEADER.size

# -- message type codes -----------------------------------------------------

#: worker -> coordinator, once, after warm preload finished
MSG_HELLO = 1
#: coordinator -> worker: check one commit
MSG_WORK = 2
#: worker -> coordinator: the finished commit's full verdict
MSG_VERDICT = 3
#: worker -> coordinator: the assignment failed in a structured way
MSG_ERROR = 4
#: coordinator -> worker: drain and exit cleanly
MSG_SHUTDOWN = 5
#: coordinator -> worker, first frame on accept: authenticate against
#: this nonce (shared-key HMAC challenge/response)
MSG_CHALLENGE = 6
#: coordinator -> worker: handshake accepted; carries the lease epoch,
#: the corpus fingerprint, and (for external workers) the CorpusSpec
#: to rebuild deterministically instead of pickling
MSG_WELCOME = 7
#: worker -> coordinator: liveness beacon under the current lease
MSG_HEARTBEAT = 8

MESSAGE_TYPES = (MSG_HELLO, MSG_WORK, MSG_VERDICT, MSG_ERROR,
                 MSG_SHUTDOWN, MSG_CHALLENGE, MSG_WELCOME,
                 MSG_HEARTBEAT)

#: required payload fields per message type (schema validation runs on
#: both encode and decode: a malformed message must fail loudly at the
#: sender, not poison the peer)
_MESSAGE_FIELDS = {
    MSG_HELLO: ("worker_id", "pid", "start_method"),
    MSG_WORK: ("seq", "request_id", "commit_id", "options", "chaos",
               "lease"),
    MSG_VERDICT: ("seq", "request_id", "commit_id", "report",
                  "stage_counts", "quarantine", "metrics", "events",
                  "worker_id", "lease"),
    MSG_ERROR: ("seq", "error", "kind"),
    MSG_SHUTDOWN: (),
    MSG_CHALLENGE: ("nonce",),
    MSG_WELCOME: ("worker_id", "lease", "fingerprint",
                  "heartbeat_seconds", "lease_seconds"),
    MSG_HEARTBEAT: ("worker_id", "lease"),
}


def _frame_crc(msg_type: int, length: int, body: bytes) -> int:
    """CRC32 over (version, type, length, payload) — see the module
    docstring for why the header fields are covered."""
    seed = zlib.crc32(struct.pack(">BBI", WIRE_VERSION, msg_type,
                                  length))
    return zlib.crc32(body, seed)


def encode_payload(payload: dict) -> bytes:
    """Canonical JSON bytes (the journal's exact discipline)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


def encode_frame(msg_type: int, payload: dict) -> bytes:
    """One complete frame for a validated message."""
    validate_message(msg_type, payload)
    body = encode_payload(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"refusing to encode a {len(body)}-byte payload "
            f"(limit {MAX_FRAME_BYTES})",
            declared=len(body), limit=MAX_FRAME_BYTES)
    return _HEADER.pack(MAGIC, WIRE_VERSION, msg_type, len(body),
                        _frame_crc(msg_type, len(body), body)) + body


def decode_frame(data: bytes, offset: int = 0) -> tuple[int, dict, int]:
    """Decode one frame at ``offset``; returns (type, payload, end).

    Raises :class:`FrameTruncatedError` when the buffer ends inside the
    frame, :class:`FrameTooLargeError` on an oversized declared length,
    :class:`FrameCorruptError` on bad magic/version/CRC/JSON, and
    :class:`WireSchemaError` when the payload fails message validation.
    """
    view = memoryview(data)
    if offset + HEADER_BYTES > len(view):
        raise FrameTruncatedError(
            f"frame header truncated at offset {offset}: need "
            f"{HEADER_BYTES} bytes, have {len(view) - offset}",
            needed=HEADER_BYTES, have=len(view) - offset)
    magic, version, msg_type, length, crc = _HEADER.unpack_from(
        view, offset)
    if magic != MAGIC:
        raise FrameCorruptError(
            f"bad frame magic {bytes(magic)!r} at offset {offset}",
            offset=offset)
    if version != WIRE_VERSION:
        raise FrameCorruptError(
            f"unknown wire version {version} at offset {offset} "
            f"(this build speaks {WIRE_VERSION})", offset=offset)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame at offset {offset} declares {length} payload "
            f"bytes (limit {MAX_FRAME_BYTES})",
            declared=length, limit=MAX_FRAME_BYTES)
    start = offset + HEADER_BYTES
    end = start + length
    if end > len(view):
        raise FrameTruncatedError(
            f"frame payload truncated at offset {offset}: need "
            f"{length} bytes, have {len(view) - start}",
            needed=length, have=len(view) - start)
    body = bytes(view[start:end])
    if _frame_crc(msg_type, length, body) != crc:
        raise FrameCorruptError(
            f"frame CRC mismatch at offset {offset}", offset=offset)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameCorruptError(
            f"frame payload at offset {offset} is not valid JSON: "
            f"{error}", offset=offset) from error
    if not isinstance(payload, dict):
        raise FrameCorruptError(
            f"frame payload at offset {offset} is not an object",
            offset=offset)
    validate_message(msg_type, payload)
    return msg_type, payload, end


def validate_message(msg_type: int, payload: dict) -> None:
    """Typed schema check: unknown types and missing fields raise."""
    fields = _MESSAGE_FIELDS.get(msg_type)
    if fields is None:
        raise WireSchemaError(
            f"unknown message type {msg_type!r} (known: "
            f"{', '.join(str(code) for code in MESSAGE_TYPES)})")
    missing = [name for name in fields if name not in payload]
    if missing:
        raise WireSchemaError(
            f"message type {msg_type} missing required field(s) "
            f"{', '.join(missing)}")


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed whatever chunks arrive; iterate to pop complete ``(type,
    payload)`` messages. A partial frame simply waits for more bytes;
    structural damage raises immediately (there is no way to resync a
    corrupted stream, and pretending otherwise would drop messages
    silently).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: absolute bytes consumed off the front of the stream (error
        #: offsets stay meaningful across compactions)
        self._consumed = 0

    def feed(self, data: bytes) -> None:
        """Append raw bytes received from the peer."""
        self._buffer.extend(data)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet decoded into messages."""
        return len(self._buffer)

    def __iter__(self):
        return self

    def __next__(self) -> tuple[int, dict]:
        try:
            msg_type, payload, end = decode_frame(
                bytes(self._buffer))
        except FrameTruncatedError:
            raise StopIteration
        except (FrameCorruptError, FrameTooLargeError) as error:
            # rebase the reported offset onto the whole stream
            if isinstance(error, FrameCorruptError):
                error.offset += self._consumed
            raise
        del self._buffer[:end]
        self._consumed += end
        return msg_type, payload


# -- message constructors ---------------------------------------------------

def hello_message(worker_id: int, pid: int, start_method: str, *,
                  tree_id: str = "", auth: str = "") -> dict:
    """The worker's ready announcement.

    ``worker_id`` is the slot the worker was spawned for, or ``-1``
    for an external ``jmake worker --connect`` joining whatever slot
    is free. ``auth`` is the HMAC response to the coordinator's
    CHALLENGE nonce (:func:`auth_token`); local pipe workers leave it
    empty because pipes need no authentication.
    """
    return {"worker_id": worker_id, "pid": pid,
            "start_method": start_method, "tree_id": tree_id,
            "auth": auth}


def work_message(seq: int, request_id: str, commit_id: str, *,
                 options: "JMakeOptions | None" = None,
                 chaos: str | None = None, lease: int = 0) -> dict:
    """One commit assignment. ``chaos`` carries the coordinator's
    worker-site fault decision for this pickup (the draw happens on the
    coordinator, keyed by worker slot + pickup sequence, so the chaos
    schedule survives worker restarts; the *effect* happens in the
    child, where detection paths are real). ``lease`` is the fencing
    token: the verdict must echo it or be discarded as stale."""
    return {"seq": seq, "request_id": request_id,
            "commit_id": commit_id,
            "options": options_to_wire(options),
            "chaos": chaos,
            "lease": lease}


def verdict_message(seq: int, request_id: str, commit_id: str, *,
                    report: PatchReport, stage_counts: dict,
                    quarantine: dict, metrics: dict, events: list,
                    worker_id: int, units: list | None = None,
                    lease: int = 0) -> dict:
    """One finished assignment: full verdict + telemetry to merge.

    ``lease`` echoes the WORK frame's fencing token; a coordinator
    receiving a verdict under a stale lease epoch discards it (the
    assignment was already requeued when the lease was revoked).
    """
    return {"seq": seq, "request_id": request_id,
            "commit_id": commit_id,
            "report": report_to_wire(report),
            "stage_counts": dict(stage_counts),
            "quarantine": dict(quarantine),
            "metrics": metrics,
            "events": list(events),
            "worker_id": worker_id,
            "units": list(units or []),
            "lease": lease}


def error_message(seq: int, error: str, kind: str) -> dict:
    """A structured per-assignment failure (the worker stays up)."""
    return {"seq": seq, "error": error, "kind": kind}


def shutdown_message() -> dict:
    """Drain-and-exit control message."""
    return {}


def challenge_message(nonce: str) -> dict:
    """The coordinator's auth challenge (first frame after accept)."""
    return {"nonce": nonce}


def welcome_message(worker_id: int, lease: int, fingerprint: str,
                    heartbeat_seconds: float, lease_seconds: float, *,
                    corpus: dict | None = None,
                    options: dict | None = None,
                    use_cache: bool = True,
                    fault_plan: dict | None = None,
                    retry_policy: dict | None = None) -> dict:
    """Handshake acceptance: slot assignment + session parameters.

    ``fingerprint`` is the coordinator corpus's head commit id — the
    worker verifies its own (rebuilt) corpus against it before serving.
    ``corpus`` is the deterministic :class:`CorpusSpec` payload an
    external worker rebuilds locally (None when the worker already has
    a corpus, e.g. a locally spawned process).
    """
    return {"worker_id": worker_id, "lease": lease,
            "fingerprint": fingerprint,
            "heartbeat_seconds": heartbeat_seconds,
            "lease_seconds": lease_seconds,
            "corpus": corpus, "options": options,
            "use_cache": use_cache, "fault_plan": fault_plan,
            "retry_policy": retry_policy}


def heartbeat_message(worker_id: int, lease: int) -> dict:
    """A liveness beacon under the worker's current lease epoch."""
    return {"worker_id": worker_id, "lease": lease}


# -- shared-key authentication ----------------------------------------------

def auth_token(key: str, nonce: str) -> str:
    """The HMAC-SHA256 response to a CHALLENGE nonce.

    Keyed by the fleet's shared secret; comparing with
    ``hmac.compare_digest`` on the coordinator makes the check
    constant-time. The nonce is fresh per connection, so a captured
    token never replays.
    """
    return hmac.new(key.encode("utf-8"), nonce.encode("utf-8"),
                    hashlib.sha256).hexdigest()


def verify_auth(key: str, nonce: str, offered: str) -> bool:
    """Constant-time check of a HELLO's ``auth`` field."""
    return hmac.compare_digest(auth_token(key, nonce),
                               str(offered or ""))


# -- JMakeOptions codec -----------------------------------------------------

def options_to_wire(options: "JMakeOptions | None") -> dict | None:
    """JSON-ready options (None passes through: worker defaults)."""
    if options is None:
        return None
    return dataclasses.asdict(options)


def options_from_wire(payload: dict | None) -> "JMakeOptions | None":
    """Rebuild options; unknown fields raise :class:`WireSchemaError`."""
    if payload is None:
        return None
    known = {field.name for field in dataclasses.fields(JMakeOptions)}
    unknown = set(payload) - known
    if unknown:
        raise WireSchemaError(
            f"unknown JMakeOptions field(s) on the wire: "
            f"{', '.join(sorted(unknown))}")
    return JMakeOptions(**payload)


# -- CorpusSpec codec -------------------------------------------------------

def corpus_spec_to_wire(spec) -> dict:
    """The corpus *recipe* (never the corpus): seed + scale knobs.

    A worker on another host rebuilds the corpus deterministically from
    this, which is both smaller and safer than pickling — nothing
    executable crosses the wire. Specs carrying an explicit
    ``tree_spec`` object are refused: only the pure-scalar recipe is
    guaranteed to reproduce byte-identically from a JSON round trip.
    """
    if getattr(spec, "tree_spec", None) is not None:
        raise WireSchemaError(
            "cannot ship a CorpusSpec with an explicit tree_spec over "
            "the wire; only the scalar (seed, counts) recipe rebuilds "
            "deterministically")
    return {"seed": spec.seed,
            "history_commits": spec.history_commits,
            "eval_commits": spec.eval_commits,
            "regular_developers": spec.regular_developers}


def corpus_spec_from_wire(payload: dict):
    """Rebuild the spec; unknown fields raise :class:`WireSchemaError`."""
    from repro.workload.corpus import CorpusSpec
    if not isinstance(payload, dict):
        raise WireSchemaError(
            f"corpus spec payload must be an object, "
            f"got {type(payload).__name__}")
    known = {"seed", "history_commits", "eval_commits",
             "regular_developers"}
    unknown = set(payload) - known
    if unknown:
        raise WireSchemaError(
            f"unknown CorpusSpec field(s) on the wire: "
            f"{', '.join(sorted(unknown))}")
    missing = known - set(payload)
    if missing:
        raise WireSchemaError(
            f"corpus spec payload missing field(s): "
            f"{', '.join(sorted(missing))}")
    return CorpusSpec(**payload)


# -- RetryPolicy codec ------------------------------------------------------

def retry_policy_to_wire(policy) -> dict | None:
    """JSON-ready retry policy (None passes through)."""
    if policy is None:
        return None
    return dataclasses.asdict(policy)


def retry_policy_from_wire(payload: dict | None):
    """Rebuild a retry policy; unknown fields raise."""
    from repro.faults.resilience import RetryPolicy
    if payload is None:
        return None
    known = {field.name for field in dataclasses.fields(RetryPolicy)}
    unknown = set(payload) - known
    if unknown:
        raise WireSchemaError(
            f"unknown RetryPolicy field(s) on the wire: "
            f"{', '.join(sorted(unknown))}")
    return RetryPolicy(**payload)


# -- FaultPlan codec --------------------------------------------------------

def fault_plan_to_wire(plan) -> dict | None:
    """JSON-ready fault plan (the ``--fault-plan`` format)."""
    if plan is None:
        return None
    return plan.to_dict()


def fault_plan_from_wire(payload: dict | None):
    """Rebuild a fault plan; malformed plans raise."""
    from repro.errors import FaultPlanError
    from repro.faults.plan import FaultPlan
    if payload is None:
        return None
    try:
        return FaultPlan.from_dict(payload)
    except FaultPlanError as error:
        raise WireSchemaError(
            f"malformed fault plan on the wire: {error}") from error


# -- WorkUnit descriptor codec ----------------------------------------------

_UNIT_FIELDS = ("stage", "arch", "config_target", "paths", "deps",
                "unit_id")


def unit_to_wire(unit: WorkUnit) -> dict:
    """The unit's inert descriptor (no thunk crosses the wire)."""
    return unit.describe()


def unit_from_wire(payload: dict) -> WorkUnit:
    """Rebuild a descriptor unit; missing fields raise."""
    missing = [name for name in _UNIT_FIELDS if name not in payload]
    if missing:
        raise WireSchemaError(
            f"work-unit descriptor missing field(s) "
            f"{', '.join(missing)}")
    return WorkUnit.from_description(payload)


# -- PatchReport codec ------------------------------------------------------

def _attempt_to_wire(attempt: ArchAttempt) -> dict:
    return {"arch": attempt.arch,
            "config_target": attempt.config_target,
            "i_ok": attempt.i_ok,
            "tokens_found": sorted(attempt.tokens_found),
            "o_ok": attempt.o_ok,
            "error": attempt.error}


def _attempt_from_wire(payload: dict) -> ArchAttempt:
    return ArchAttempt(arch=payload["arch"],
                       config_target=payload["config_target"],
                       i_ok=payload["i_ok"],
                       tokens_found=set(payload["tokens_found"]),
                       o_ok=payload["o_ok"],
                       error=payload["error"])


def _file_to_wire(path: str, report: FileReport) -> dict:
    return {
        "path": path,
        "status": report.status.value,
        "mutations": [dataclasses.asdict(mutation)
                      for mutation in report.mutations],
        "missing_tokens": sorted(report.missing_tokens),
        "attempts": [_attempt_to_wire(attempt)
                     for attempt in report.attempts],
        "useful_archs": list(report.useful_archs),
        "comment_lines": list(report.comment_lines),
        "macro_hints": list(report.macro_hints),
        "advisories": list(report.advisories),
        "candidate_compilations": report.candidate_compilations,
    }


def _file_from_wire(payload: dict) -> FileReport:
    try:
        status = FileStatus(payload["status"])
    except ValueError as error:
        raise WireSchemaError(
            f"unknown file status {payload['status']!r}") from error
    return FileReport(
        path=payload["path"],
        status=status,
        mutations=[Mutation(**mutation)
                   for mutation in payload["mutations"]],
        missing_tokens=set(payload["missing_tokens"]),
        attempts=[_attempt_from_wire(attempt)
                  for attempt in payload["attempts"]],
        useful_archs=list(payload["useful_archs"]),
        comment_lines=list(payload["comment_lines"]),
        macro_hints=list(payload["macro_hints"]),
        advisories=list(payload["advisories"]),
        candidate_compilations=payload["candidate_compilations"],
    )


def report_to_wire(report: PatchReport) -> dict:
    """Canonical :data:`SCHEMA_VERSION` record plus the lossless detail.

    The ``record`` half is exactly :meth:`PatchReport.to_dict` — what
    dashboards and the journal consume; the ``detail`` half carries
    everything ``to_dict`` drops (per-attempt results, mutations,
    durations, fault reports) so the receiver rebuilds a full report.
    Files are a *list* in insertion order: record iteration order is
    part of the canonical-byte contract, and JSON objects with sorted
    keys would destroy it.
    """
    return {
        "record": report.to_dict(),
        "detail": {
            "elapsed_seconds": report.elapsed_seconds,
            "author_name": report.author_name,
            "author_email": report.author_email,
            "invocation_counts": dict(report.invocation_counts),
            "invocation_durations": {
                kind: list(durations)
                for kind, durations in
                report.invocation_durations.items()},
            "quarantined_archs": list(report.quarantined_archs),
            "fault_reports": [fault.to_dict()
                              for fault in report.fault_reports],
            "files": [_file_to_wire(path, file_report)
                      for path, file_report in
                      report.file_reports.items()],
        },
    }


def report_from_wire(payload: dict) -> PatchReport:
    """Rebuild the full :class:`PatchReport` and prove losslessness.

    The rebuilt report's ``to_dict()`` must equal the shipped canonical
    record — ``certified``/``verdict`` are *derived* on the rebuilt
    state, so the equality is a real end-to-end check of the codec, not
    a tautology. A mismatch raises :class:`WireSchemaError` instead of
    silently handing back a subtly different verdict.
    """
    record = payload.get("record")
    detail = payload.get("detail")
    if not isinstance(record, dict) or not isinstance(detail, dict):
        raise WireSchemaError(
            "verdict payload needs 'record' and 'detail' objects")
    version = record.get("schema_version")
    if version != SCHEMA_VERSION:
        raise WireSchemaError(
            f"cannot decode verdict with schema_version={version!r} "
            f"(this codec speaks {SCHEMA_VERSION})")
    report = PatchReport(
        commit_id=record.get("commit"),
        elapsed_seconds=detail["elapsed_seconds"],
        author_name=detail.get("author_name"),
        author_email=detail.get("author_email"),
        invocation_counts=dict(detail["invocation_counts"]),
        invocation_durations={
            kind: list(durations)
            for kind, durations in
            detail["invocation_durations"].items()},
        quarantined_archs=list(detail["quarantined_archs"]),
        fault_reports=[FaultReport(**fault)
                       for fault in detail["fault_reports"]],
    )
    for file_payload in detail["files"]:
        file_report = _file_from_wire(file_payload)
        report.file_reports[file_report.path] = file_report
    rebuilt = report.to_dict()
    if rebuilt != record:
        raise WireSchemaError(
            f"verdict for {record.get('commit')!r} did not survive "
            f"the wire: rebuilt canonical record differs from the "
            f"shipped one")
    return report
