"""The connected worker: ``jmake worker --connect HOST:PORT``.

This is the client half of the fleet protocol — a standalone process
that dials a coordinator, authenticates with the shared-key HMAC
challenge/response, rebuilds the corpus deterministically from the
shipped :class:`~repro.workload.corpus.CorpusSpec`, and serves WORK
frames under a lease until told to stop. It is also what the socket
transport's *locally spawned* workers run, so there is exactly one
session state machine regardless of where the worker lives.

The session protocol, from the client's side::

    connect ──> CHALLENGE(nonce) ──> HELLO(auth=HMAC(key, nonce))
        ├── ERROR(kind=AuthError)  -> permanent failure, never retried
        └── WELCOME(worker_id, lease, fingerprint, corpus?, ...)
              -> rebuild/verify corpus, start heartbeats, serve WORK

Hostile-network hardening lives in :meth:`WorkerClient.run`: any
connection loss outside the permanent-failure cases re-enters the dial
loop with jittered exponential backoff (deterministic per (seed,
worker, attempt), so chaos schedules replay). A reconnecting worker
re-registers from scratch and receives a **fresh lease epoch**; any
verdict it might still hold from the previous session carries the old
epoch and is fenced off by the coordinator, which is what makes
requeue-after-partition idempotent instead of duplicating verdicts.

Chaos semantics here are the *network* ones (richer than the pipe
worker's): ``net_partition`` severs the socket but keeps the process
alive to reconnect, ``net_slow`` delays the verdict while heartbeats
keep the lease warm, ``net_half_open`` goes silent on an open socket
so only lease expiry can reclaim the assignment.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    AuthError,
    CorpusMismatchError,
    TransportError,
)
from repro.faults.plan import (
    KIND_NET_HALF_OPEN,
    KIND_NET_PARTITION,
    KIND_NET_SLOW,
    KIND_SOCKET_DROP,
    KIND_WORKER_CRASH,
    KIND_WORKER_HANG,
    KIND_WORKER_KILL,
    unit_draw,
)
from repro.obs.events import EVENT_WORKER_RECONNECT
from repro.service.transport import wire
from repro.service.transport.worker import (
    EXIT_CHAOS_DROP,
    EXIT_CHAOS_KILL,
    NET_SLOW_SECONDS,
    SocketChildChannel,
    WorkerInit,
    WorkerRuntime,
)


@dataclass(frozen=True)
class ReconnectPolicy:
    """Client-side dial/retry behavior under a hostile network.

    Backoff for attempt *n* is ``min(max, base * factor**n)`` scaled by
    a deterministic jitter in ``[0.5, 1.5)`` drawn from (seed, worker,
    attempt) — desynchronized enough that a healed partition does not
    produce a thundering herd, deterministic enough that chaos suites
    replay byte-identically. The attempt counter resets on every
    successful registration, so ``max_attempts`` bounds *consecutive*
    failures, not lifetime reconnects.
    """

    max_attempts: int = 8
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 2.0
    seed: str = "worker-reconnect"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be positive, got {self.max_attempts!r}")
        if self.backoff_base_seconds < 0:
            raise ValueError(
                f"backoff_base_seconds cannot be negative, "
                f"got {self.backoff_base_seconds!r}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be at least 1, "
                f"got {self.backoff_factor!r}")
        if self.backoff_max_seconds < self.backoff_base_seconds:
            raise ValueError("backoff_max_seconds cannot be below "
                             "backoff_base_seconds")

    def backoff_seconds(self, worker_id: int, attempt: int) -> float:
        """Jittered deterministic delay before retry ``attempt``."""
        ceiling = min(self.backoff_max_seconds,
                      self.backoff_base_seconds
                      * self.backoff_factor ** attempt)
        jitter = 0.5 + unit_draw(self.seed, worker_id, attempt)
        return ceiling * jitter


class _HeartbeatThread:
    """Daemon thread beating the worker's lease on a shared channel."""

    def __init__(self, channel, worker_id: int, lease: int,
                 interval: float) -> None:
        self._channel = channel
        self._frame = wire.encode_frame(
            wire.MSG_HEARTBEAT, wire.heartbeat_message(worker_id, lease))
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"jmake-heartbeat-{worker_id}",
            daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._channel.send(self._frame)
            except OSError:
                return  # connection gone; the serve loop handles it

    def stop(self) -> None:
        self._stop.set()


class WorkerClient:
    """One worker session: dial, authenticate, rebuild, serve, retry.

    ``worker_id`` of ``-1`` asks the coordinator for any free slot (the
    cross-host case); a spawned local worker passes its slot index so
    it lands where the transport armed its rendezvous. ``corpus`` may
    be supplied directly (spawned workers inherit it under ``fork``);
    otherwise it is rebuilt from the WELCOME's shipped spec and
    verified against the coordinator's fingerprint.

    ``hard_exit`` controls the fatal chaos kinds: real worker processes
    die with ``os._exit`` (the production signal supervision must
    detect), while in-thread test clients set it False and stop the
    session loop instead so they cannot take pytest down with them.
    """

    def __init__(self, host: str, port: int, *, auth_key: str,
                 worker_id: int = -1, corpus: object = None,
                 options: object = None, fault_plan: object = None,
                 retry_policy: object = None, use_cache: bool = True,
                 start_method: str = "fork",
                 reconnect: ReconnectPolicy | None = None,
                 hard_exit: bool = True) -> None:
        self.host = host
        self.port = port
        self.auth_key = auth_key
        self.worker_id = worker_id
        self.corpus = corpus
        self.options = options
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.use_cache = use_cache
        self.start_method = start_method
        self.reconnect = reconnect or ReconnectPolicy()
        self.hard_exit = hard_exit
        #: current lease epoch (set by each WELCOME)
        self.lease = 0
        #: assignments served over the client's lifetime
        self.assignments = 0
        #: completed reconnect cycles (registrations after the first)
        self.reconnects = 0
        #: event dicts buffered for the next verdict frame
        self._pending_events: list[dict] = []
        self._runtime: WorkerRuntime | None = None
        self._stopped = False

    # -- session establishment ----------------------------------------

    def _handshake(self, channel) -> dict:
        """CHALLENGE -> HELLO -> WELCOME; returns the WELCOME payload.

        Raises :class:`AuthError` on a typed rejection (permanent) and
        :class:`TransportError` on anything else (retryable).
        """
        message = channel.recv_message()
        if message is None:
            raise TransportError("connection closed before CHALLENGE")
        msg_type, payload = message
        if msg_type != wire.MSG_CHALLENGE:
            raise TransportError(
                f"expected CHALLENGE, got message type {msg_type}")
        token = wire.auth_token(self.auth_key, payload["nonce"])
        tree_id = ""
        if self.corpus is not None:
            tree_id = getattr(self.corpus.tree, "id", "")
        channel.send(wire.encode_frame(wire.MSG_HELLO, wire.hello_message(
            self.worker_id, os.getpid(), self.start_method,
            tree_id=tree_id, auth=token)))
        message = channel.recv_message()
        if message is None:
            raise TransportError("connection closed before WELCOME")
        msg_type, payload = message
        if msg_type == wire.MSG_ERROR:
            if payload.get("kind") == "AuthError":
                raise AuthError(payload.get("error", "handshake rejected"))
            raise TransportError(
                payload.get("error", "handshake rejected"))
        if msg_type != wire.MSG_WELCOME:
            raise TransportError(
                f"expected WELCOME, got message type {msg_type}")
        return payload

    def _establish_runtime(self, welcome: dict) -> None:
        """Build (once) and fingerprint-verify the warm substrate."""
        if self._runtime is None:
            corpus = self.corpus
            if corpus is None:
                spec_payload = welcome.get("corpus")
                if spec_payload is None:
                    raise TransportError(
                        "coordinator shipped no corpus spec and this "
                        "worker has no local corpus")
                from repro.workload.corpus import build_corpus
                spec = wire.corpus_spec_from_wire(spec_payload)
                corpus = build_corpus(spec)
            fingerprint = welcome.get("fingerprint", "")
            actual = corpus.repository.head().id
            if fingerprint and actual != fingerprint:
                raise CorpusMismatchError(
                    f"rebuilt corpus head {actual} does not match the "
                    f"coordinator fingerprint {fingerprint}",
                    expected=fingerprint, actual=actual)
            options = self.options
            if options is None:
                options = wire.options_from_wire(welcome.get("options"))
            fault_plan = self.fault_plan
            if fault_plan is None:
                fault_plan = wire.fault_plan_from_wire(
                    welcome.get("fault_plan"))
            retry_policy = self.retry_policy
            if retry_policy is None:
                retry_policy = wire.retry_policy_from_wire(
                    welcome.get("retry_policy"))
            self.corpus = corpus
            self._runtime = WorkerRuntime(WorkerInit(
                worker_id=welcome["worker_id"],
                start_method=self.start_method,
                corpus=corpus, options=options,
                fault_plan=fault_plan, retry_policy=retry_policy,
                use_cache=bool(welcome.get("use_cache", self.use_cache)),
                auth_key=self.auth_key))
        self._runtime.init.worker_id = welcome["worker_id"]
        self.lease = welcome["lease"]

    # -- the serve loop -----------------------------------------------

    def _die(self, code: int) -> str:
        """Fatal chaos: real processes exit, test threads stop."""
        if self.hard_exit:
            os._exit(code)
        self._stopped = True
        return "died"

    def _serve(self, channel, welcome: dict) -> str:
        """Serve WORK frames until the session ends.

        Returns ``"shutdown"`` (clean stop), ``"lost"`` (reconnect),
        ``"partition"`` (chaos-severed link, reconnect), or ``"died"``
        (soft-fatal chaos with ``hard_exit`` off).
        """
        runtime = self._runtime
        assert runtime is not None
        heartbeat = None
        interval = float(welcome.get("heartbeat_seconds") or 0.0)
        if interval > 0:
            heartbeat = _HeartbeatThread(
                channel, welcome["worker_id"], self.lease, interval)
            heartbeat.start()
        try:
            while True:
                message = channel.recv_message()
                if message is None:
                    return "lost"
                msg_type, payload = message
                if msg_type == wire.MSG_SHUTDOWN:
                    return "shutdown"
                if msg_type != wire.MSG_WORK:
                    continue
                chaos = payload.get("chaos")
                if chaos in (KIND_WORKER_KILL, KIND_WORKER_CRASH):
                    return self._die(EXIT_CHAOS_KILL)
                if chaos == KIND_SOCKET_DROP:
                    channel.close()
                    return self._die(EXIT_CHAOS_DROP)
                if chaos == KIND_NET_PARTITION:
                    # the link dies, the process survives: stop beating,
                    # sever the socket, and re-dial from the outer loop
                    if heartbeat is not None:
                        heartbeat.stop()
                        heartbeat = None
                    channel.close()
                    return "partition"
                if chaos == KIND_NET_HALF_OPEN:
                    # the socket stays open but we go silent — no
                    # heartbeats, no verdict; only the coordinator's
                    # lease expiry can reclaim the assignment
                    if heartbeat is not None:
                        heartbeat.stop()
                        heartbeat = None
                    if self.hard_exit:
                        time.sleep(3600)
                    self._stopped = True
                    return "died"
                if chaos == KIND_WORKER_HANG:
                    if self.hard_exit:
                        time.sleep(3600)
                    self._stopped = True
                    return "died"
                if chaos == KIND_NET_SLOW:
                    time.sleep(NET_SLOW_SECONDS)
                if self._pending_events:
                    runtime.events.extend(self._pending_events)
                    self._pending_events = []
                try:
                    verdict = runtime.check(payload)
                except Exception as error:  # noqa: BLE001 — stay up
                    channel.send(wire.encode_frame(
                        wire.MSG_ERROR, wire.error_message(
                            payload["seq"], str(error),
                            type(error).__name__)))
                    continue
                verdict["lease"] = self.lease
                channel.send(wire.encode_frame(wire.MSG_VERDICT,
                                               verdict))
                self.assignments += 1
        finally:
            if heartbeat is not None:
                heartbeat.stop()

    # -- the dial loop ------------------------------------------------

    def run(self) -> dict:
        """Dial, serve, reconnect until shutdown; returns session stats.

        Raises :class:`AuthError` / :class:`CorpusMismatchError` on the
        permanent failures and :class:`TransportError` once consecutive
        dial attempts exhaust the reconnect budget.
        """
        attempt = 0
        registered_before = False
        while not self._stopped:
            channel = None
            try:
                channel = SocketChildChannel(self.host, self.port)
                welcome = self._handshake(channel)
                self._establish_runtime(welcome)
            except (AuthError, CorpusMismatchError):
                if channel is not None:
                    channel.close()
                raise
            except (TransportError, OSError) as error:
                if channel is not None:
                    channel.close()
                attempt += 1
                if attempt >= self.reconnect.max_attempts:
                    raise TransportError(
                        f"gave up connecting to {self.host}:{self.port} "
                        f"after {attempt} attempt(s): {error}") from error
                time.sleep(self.reconnect.backoff_seconds(
                    self.worker_id, attempt))
                continue
            attempt = 0
            if registered_before:
                self.reconnects += 1
                self._pending_events.append({
                    "kind": EVENT_WORKER_RECONNECT,
                    "worker": welcome["worker_id"],
                    "lease": self.lease,
                    "reconnects": self.reconnects,
                })
            registered_before = True
            try:
                outcome = self._serve(channel, welcome)
            finally:
                channel.close()
            if outcome == "shutdown" or self._stopped:
                break
        granted = self._runtime.init.worker_id \
            if self._runtime is not None else self.worker_id
        return {"worker_id": granted,
                "assignments": self.assignments,
                "reconnects": self.reconnects,
                "lease": self.lease}

    def stop(self) -> None:
        """Ask the dial loop to stop before its next connection."""
        self._stopped = True
