"""Transport abstraction: how a check service executes requests.

A transport owns the execution substrate behind one
:class:`~repro.service.service.CheckService` — worker tasks, worker
processes, or socket peers — behind a uniform request-granularity
interface. The service keeps admission control, accounting, and the
public API; the transport decides *where* the pipeline runs:

- ``asyncio`` (:mod:`.local`): the in-process shard pool + cross-
  request batcher + ShardSupervisor, exactly the pre-transport
  behavior;
- ``mp`` (:mod:`.mp`): a pool of warm worker processes fed over
  ``multiprocessing`` pipes with wire-codec frames;
- ``socket`` (:mod:`.sock`): the same warm workers connected back over
  a localhost TCP socket speaking the length-prefixed CRC32 protocol.

Request granularity is deliberate: unit thunks are closures over
session state and cannot cross a process boundary, but every check is
a pure function of (corpus, commit) — the invariant the differential
suite enforces — so shipping whole commit assignments preserves
byte-identical verdicts regardless of where they execute.

The module also keeps a registry of live transports
(:func:`live_transports`) so the test suite's leak check can assert
that every test drained its service — an undrained remote transport
means orphaned worker processes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

#: the vocabulary ``ServiceConfig.transport`` accepts
TRANSPORT_KINDS = ("asyncio", "mp", "socket")

#: every started-but-not-drained transport, for the test-suite leak
#: check (weak so forgotten services still get collected eventually)
_LIVE: "weakref.WeakSet" = weakref.WeakSet()


def track_live(transport) -> None:
    """Register a started transport (called from ``start()``)."""
    _LIVE.add(transport)


def untrack_live(transport) -> None:
    """Deregister a drained transport (called from ``drain()``)."""
    _LIVE.discard(transport)


def live_transports() -> list:
    """Transports started but never drained (should be empty between
    tests; the conftest leak check asserts on it)."""
    return list(_LIVE)


@dataclass
class TransportOutcome:
    """What one executed request hands back to the service.

    ``quarantine`` maps quarantined architecture -> trip reason for the
    finished request (the service emits quarantine events and ops
    telemetry from it — remote transports have no ``session.last_build``
    to inspect). ``worker_id`` is the executing worker slot (-1 for
    in-process execution).
    """

    report: object
    stage_counts: dict = field(default_factory=dict)
    quarantine: dict = field(default_factory=dict)
    worker_id: int = -1


class Transport:
    """Interface every transport implements (duck-typed; this base
    documents the contract and provides neutral defaults)."""

    #: one of :data:`TRANSPORT_KINDS`
    kind = "abstract"

    async def start(self) -> None:
        """Bring up workers; idempotent."""
        raise NotImplementedError

    async def run_request(self, request) -> TransportOutcome:
        """Execute one admitted request to a finished verdict."""
        raise NotImplementedError

    async def drain(self) -> None:
        """Finish in-flight work and stop workers; idempotent."""
        raise NotImplementedError

    def address(self) -> "tuple[str, int] | None":
        """(host, port) a networked transport listens on, else None."""
        return None

    # -- telemetry hooks the service's stats()/health() read ---------------

    def shard_stats(self) -> list:
        """Per-worker stats dicts, in worker order."""
        return []

    def batcher_stats(self) -> dict:
        """Cross-request batcher stats ({} when not applicable)."""
        return {}

    def supervisor_stats(self) -> dict:
        """Supervision counters in the ShardSupervisor stats shape."""
        return {}

    def breaker_open_workers(self) -> list:
        """Indices of workers whose circuit breaker is open."""
        return []

    def quarantined_archs(self) -> list:
        """Architectures quarantined in the transport's ops view."""
        return []


def create_transport(service, kind: str):
    """Build the transport ``kind`` for one service (not started)."""
    if kind == "asyncio":
        from repro.service.transport.local import AsyncioTransport
        return AsyncioTransport(service)
    if kind == "mp":
        from repro.service.transport.mp import MpTransport
        return MpTransport(service)
    if kind == "socket":
        from repro.service.transport.sock import SocketTransport
        return SocketTransport(service)
    raise ValueError(
        f"unknown transport {kind!r} "
        f"(known: {', '.join(TRANSPORT_KINDS)})")
