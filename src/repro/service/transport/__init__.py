"""Shard transports: interchangeable execution backends for the
check service. See :mod:`repro.service.transport.base` for the
contract and :mod:`repro.service.transport.wire` for the protocol."""

from repro.service.transport.base import (
    TRANSPORT_KINDS,
    Transport,
    TransportOutcome,
    create_transport,
    live_transports,
)

__all__ = [
    "TRANSPORT_KINDS",
    "Transport",
    "TransportOutcome",
    "create_transport",
    "live_transports",
    "wire",
]
