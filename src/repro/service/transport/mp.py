"""The multiprocessing transport: warm workers over pipes.

Each worker slot is a ``multiprocessing.Process`` (``fork`` or
``spawn`` start method, per ``ServiceConfig.start_method``) connected
by a duplex pipe. Wire-codec frames ride ``send_bytes``/``recv_bytes``
— the pipe gives message boundaries for free, but the payload is the
same CRC32-framed canonical JSON the socket transport streams, so both
transports exercise one codec.

Blocking pipe I/O is bridged onto the event loop with executor
threads. A thread parked in ``recv_bytes`` past a hang deadline is
unblocked when the coordinator kills the worker (the child's pipe end
closes, the read EOFs); channels are never reused across processes, so
a stale read can never steal a fresh worker's frame.
"""

from __future__ import annotations

import asyncio
import multiprocessing

from repro.errors import TransportError
from repro.service.transport import wire
from repro.service.transport.remote import RemoteTransport, WorkerSlot
from repro.service.transport.worker import pipe_worker_main


class MpParentChannel:
    """Async frame transport over the parent end of a duplex pipe."""

    def __init__(self, conn) -> None:
        self._conn = conn

    async def send(self, frame: bytes) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._conn.send_bytes, frame)

    def _recv_blocking(self) -> "bytes | None":
        try:
            return self._conn.recv_bytes()
        except (EOFError, OSError):
            return None

    async def recv_message(self) -> "tuple[int, dict] | None":
        loop = asyncio.get_running_loop()
        frame = await loop.run_in_executor(None, self._recv_blocking)
        if frame is None:
            return None
        msg_type, payload, _ = wire.decode_frame(frame)
        return msg_type, payload

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class MpTransport(RemoteTransport):
    """Warm ``multiprocessing`` workers fed over pipes."""

    kind = "mp"

    def _spawn(self, slot: WorkerSlot) -> None:
        context = multiprocessing.get_context(self.start_method)
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=pipe_worker_main,
            args=(child_conn, self._worker_init(slot)),
            name=f"jmake-mp-worker-{slot.index}",
            daemon=True)
        process.start()
        # the child owns its end now; holding it open here would mask
        # the EOF that signals a dead worker
        child_conn.close()
        slot.process = process
        slot.pid = process.pid
        slot.channel = MpParentChannel(parent_conn)

    async def _connect(self, slot: WorkerSlot) -> None:
        while True:
            message = await slot.channel.recv_message()
            if message is None:
                raise TransportError(
                    f"mp worker {slot.index} died before HELLO")
            if message[0] == wire.MSG_HELLO:
                return
