"""The in-process asyncio transport (the original service backend).

Wraps the per-architecture shard pool, the cross-request preprocess
batcher, and the :class:`~repro.service.supervisor.ShardSupervisor`
behind the transport interface. Requests execute as unit generators
driven on the service's event loop: request-local stages inline,
preprocess units through the batcher, config/certify units on the
owning arch shard — bit-identical to the pre-transport service.

This is the only transport with cross-*request* batching: remote
workers run whole requests, so their preprocess batching happens
inside each request exactly as in sequential mode.
"""

from __future__ import annotations

from repro.core.units import STAGE_PREPROCESS, UnitDag
from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.service.batcher import CrossRequestBatcher
from repro.service.shards import ShardPool
from repro.service.supervisor import ShardSupervisor
from repro.service.transport.base import Transport, TransportOutcome


async def drive_units(generator, execute) -> object:
    """Drive a unit generator, awaiting ``execute(unit)`` per unit."""
    try:
        unit = generator.send(None)
        while True:
            result = await execute(unit)
            unit = generator.send(result)
    except StopIteration as stop:
        return stop.value


class AsyncioTransport(Transport):
    """Shard pool + batcher + supervisor on the service's own loop."""

    kind = "asyncio"

    def __init__(self, service) -> None:
        self.service = service
        self.pool: "ShardPool | None" = None
        self.batcher: "CrossRequestBatcher | None" = None
        self.supervisor: "ShardSupervisor | None" = None

    async def start(self) -> None:
        service = self.service
        config = service.config
        # the worker-site injector is service-level (process faults are
        # about *this service's* workers, not any one request) and is
        # keyed by (shard, pickup sequence), so firing is deterministic
        # for a given submission order
        worker_injector = FaultInjector(config.fault_plan) \
            if config.fault_plan else NULL_INJECTOR
        self.pool = ShardPool(config.shards,
                              queue_limit=config.shard_queue_limit,
                              metrics=service.metrics,
                              tracer=service.tracer,
                              injector=worker_injector)
        if config.supervise:
            self.supervisor = ShardSupervisor(
                self.pool, config=config.supervisor,
                metrics=service.metrics, tracer=service.tracer,
                events=service.events)
        self.batcher = CrossRequestBatcher(
            self.pool,
            batch_limit=config.batch_limit,
            batch_window=config.batch_window_seconds,
            metrics=service.metrics,
            tracer=service.tracer,
            events=service.events)
        self.pool.start()
        if self.supervisor is not None:
            self.supervisor.start()

    async def drain(self) -> None:
        if self.batcher is not None:
            await self.batcher.drain()
        if self.pool is not None:
            # the supervisor must outlive join(): a worker that crashes
            # during the drain still needs its claimed job requeued for
            # the queues to ever empty
            await self.pool.join()
        if self.supervisor is not None:
            await self.supervisor.stop()
        if self.pool is not None:
            await self.pool.stop()

    # -- execution ---------------------------------------------------------

    async def run_request(self, request) -> TransportOutcome:
        service = self.service
        session = service._make_session(request)
        dag = UnitDag(request_id=request.request_id)
        repository = service.corpus.repository
        commit = repository.resolve(request.commit_id)
        generator = session.iter_check_commit(repository, commit,
                                              dag=dag)
        report = await drive_units(
            generator,
            lambda unit: self._execute_unit(unit, request.request_id))
        quarantine: dict[str, str] = {}
        if session.last_build is not None and self.pool is not None:
            request_quarantine = session.last_build.quarantine
            self.pool.absorb_quarantine(request_quarantine)
            quarantine = {arch: request_quarantine.reason(arch)
                          for arch in request_quarantine.archs()}
        return TransportOutcome(report=report,
                                stage_counts=dag.stage_counts(),
                                quarantine=quarantine)

    async def _execute_unit(self, unit,
                            request_id: str | None = None) -> object:
        if unit.arch is None:
            # request-local stage (mutate, token-grep): run inline
            self.service.metrics.counter("service.units.local").inc()
            return unit.run()
        if unit.stage == STAGE_PREPROCESS:
            return await self.batcher.submit(unit)
        return await self.pool.shard_for(unit.arch).submit(
            unit, request_id=request_id)

    # -- telemetry ---------------------------------------------------------

    def shard_stats(self) -> list:
        return self.pool.stats() if self.pool else []

    def batcher_stats(self) -> dict:
        return self.batcher.stats() if self.batcher else {}

    def supervisor_stats(self) -> dict:
        return self.supervisor.stats() if self.supervisor else {}

    def breaker_open_workers(self) -> list:
        return [shard.index for shard in self.pool.shards
                if shard.breaker_open] if self.pool else []

    def quarantined_archs(self) -> list:
        return sorted({
            arch for shard in (self.pool.shards if self.pool else [])
            for arch in shard.quarantine.archs()})
