"""The warm shard-worker process: preload once, check commits forever.

One worker process serves one transport slot. At startup it builds its
private substrate **once** — the corpus (inherited under ``fork``,
unpickled under ``spawn``), a :class:`~repro.buildcache.cache.
BuildCache` primed with every architecture's solved Kconfig models and
all*config, and the process-wide prepared-file substrate that warms as
files are first touched — then announces readiness with a HELLO frame
and enters the assignment loop. Every WORK frame runs a fresh
per-request :class:`~repro.core.jmake.CheckSession` over the warm
substrate (own SimClock, own injector scope, own quarantine), exactly
the service's per-request isolation, so verdicts are byte-identical to
a local run.

Telemetry flows home on the verdict: each VERDICT frame carries the
registry *delta* accrued while checking (commutative merges make the
coordinator's totals order-independent) plus any buffered event dicts.

Chaos lives here too: the WORK frame's ``chaos`` field is the
coordinator's worker-site fault decision for this pickup.
``worker_kill``/``worker_crash`` hard-exit before the assignment runs
(the requeue replays nothing), ``socket_drop`` severs the channel
mid-claim, ``worker_hang`` parks the process until the coordinator's
hang deadline reaps it. The *effects* are real — a dead child, a
closed pipe, a silent peer — so the detection paths the chaos suite
exercises are the production ones.
"""

from __future__ import annotations

import os
import socket as socket_module
import threading
import time
from dataclasses import dataclass

from repro.buildcache.cache import BuildCache
from repro.cc.toolchain import ToolchainRegistry
from repro.core.jmake import CheckSession, JMakeOptions
from repro.core.units import UnitDag, run_units
from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import (
    KIND_NET_HALF_OPEN,
    KIND_NET_PARTITION,
    KIND_NET_SLOW,
    KIND_SOCKET_DROP,
    KIND_WORKER_CRASH,
    KIND_WORKER_HANG,
    KIND_WORKER_KILL,
)
from repro.obs.metrics import MetricsRegistry
from repro.service.transport import wire

#: exit codes the coordinator logs for post-mortems (any non-zero exit
#: is just "worker lost" to supervision)
EXIT_CHAOS_KILL = 70
EXIT_CHAOS_DROP = 71

#: real seconds a ``net_slow`` assignment is delayed before it is
#: served — long enough to be visible in timings, short enough that a
#: heartbeat-backed lease never expires over it
NET_SLOW_SECONDS = 0.35


@dataclass
class WorkerInit:
    """Everything a worker needs to build its warm substrate.

    Must stay picklable under the ``spawn`` start method — it crosses
    the process boundary as a ``multiprocessing.Process`` argument.
    """

    worker_id: int
    start_method: str
    corpus: object
    options: "JMakeOptions | None" = None
    fault_plan: object = None
    retry_policy: object = None
    use_cache: bool = True
    #: shared key for the HMAC challenge/response handshake; empty
    #: means the transport predates auth (pipe workers never need it)
    auth_key: str = ""


# -- child-side channel shims ----------------------------------------------

class PipeChildChannel:
    """Frame transport over one ``multiprocessing`` pipe connection."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, frame: bytes) -> None:
        self._conn.send_bytes(frame)

    def recv_message(self) -> "tuple[int, dict] | None":
        """One decoded message, or None on EOF."""
        try:
            frame = self._conn.recv_bytes()
        except (EOFError, OSError):
            return None
        msg_type, payload, _ = wire.decode_frame(frame)
        return msg_type, payload

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class SocketChildChannel:
    """Frame transport over a blocking TCP socket.

    ``send`` is serialized with a lock: the heartbeat thread a
    connected worker runs shares this socket with the assignment loop,
    and interleaved partial writes would corrupt the frame stream.
    """

    def __init__(self, host: str, port: int) -> None:
        self._sock = socket_module.create_connection((host, port))
        self._decoder = wire.FrameDecoder()
        self._send_lock = threading.Lock()

    def send(self, frame: bytes) -> None:
        with self._send_lock:
            self._sock.sendall(frame)

    def recv_message(self) -> "tuple[int, dict] | None":
        while True:
            for message in self._decoder:
                return message
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                return None
            if not chunk:
                return None
            self._decoder.feed(chunk)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket_module.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class WorkerRuntime:
    """The warm per-process substrate plus the assignment loop."""

    def __init__(self, init: WorkerInit) -> None:
        self.init = init
        self.corpus = init.corpus
        self.options = init.options or JMakeOptions()
        self.metrics = MetricsRegistry()
        #: event dicts buffered for the next verdict frame
        self.events: list[dict] = []
        self.cache: "BuildCache | None" = None
        if init.use_cache:
            self.cache = BuildCache()
            pinned = FaultInjector(init.fault_plan) \
                if init.fault_plan else NULL_INJECTOR
            self.cache.pin_injector(pinned)
            # warm preload: solve Kconfig models and all*config for
            # every architecture once; every assignment hits warm state
            self.cache.prime(self.corpus.tree, ToolchainRegistry(),
                             use_allmodconfig=self.options.
                             use_allmodconfig)

    def check(self, payload: dict) -> dict:
        """Run one WORK assignment; returns the VERDICT payload."""
        request_id = payload["request_id"]
        commit_id = payload["commit_id"]
        options = wire.options_from_wire(payload["options"]) \
            or self.options
        session = CheckSession.from_generated_tree(
            self.corpus.tree, options=options, cache=self.cache,
            metrics=self.metrics,
            fault_plan=self.init.fault_plan,
            retry_policy=self.init.retry_policy)
        dag = UnitDag(request_id=request_id)
        repository = self.corpus.repository
        commit = repository.resolve(commit_id)
        before = self.metrics.snapshot()
        generator = session.iter_check_commit(repository, commit,
                                              dag=dag)
        report = run_units(generator)
        quarantine: dict[str, str] = {}
        if session.last_build is not None:
            request_quarantine = session.last_build.quarantine
            quarantine = {arch: request_quarantine.reason(arch)
                          for arch in request_quarantine.archs()}
        delta = self.metrics.delta(before)
        events, self.events = self.events, []
        return wire.verdict_message(
            payload["seq"], request_id, commit.id,
            report=report, stage_counts=dag.stage_counts(),
            quarantine=quarantine, metrics=delta.to_dict(),
            events=events, worker_id=self.init.worker_id,
            units=[unit.describe() for unit in dag.units])


def _fire_chaos(channel, chaos: "str | None") -> None:
    """Apply the coordinator's worker-site fault decision, for real.

    This is the *pipe* worker's chaos vocabulary. A pipe worker has no
    reconnect loop, so the network kinds degrade to their nearest
    process-level equivalent: a partition or half-open link is
    indistinguishable from a severed pipe / silent worker from where
    the coordinator sits. Connected socket workers get the full
    network semantics in :mod:`repro.service.transport.client`.
    """
    if chaos in (KIND_WORKER_KILL, KIND_WORKER_CRASH):
        # die before the assignment runs: the requeue replays nothing
        os._exit(EXIT_CHAOS_KILL)
    if chaos in (KIND_SOCKET_DROP, KIND_NET_PARTITION):
        # sever the channel mid-claim, then die: the coordinator sees
        # a dropped connection, not a clean exit
        channel.close()
        os._exit(EXIT_CHAOS_DROP)
    if chaos in (KIND_WORKER_HANG, KIND_NET_HALF_OPEN):
        # park holding the claim until the hang deadline reaps us
        time.sleep(3600)
    if chaos == KIND_NET_SLOW:
        # late, not lost: serve the assignment after a real delay
        time.sleep(NET_SLOW_SECONDS)


def worker_loop(channel, init: WorkerInit) -> None:
    """The child process body: preload, HELLO, serve until SHUTDOWN."""
    runtime = WorkerRuntime(init)
    channel.send(wire.encode_frame(wire.MSG_HELLO, wire.hello_message(
        init.worker_id, os.getpid(), init.start_method,
        tree_id=getattr(init.corpus.tree, "id", ""))))
    while True:
        message = channel.recv_message()
        if message is None:
            break  # coordinator went away; nothing left to serve
        msg_type, payload = message
        if msg_type == wire.MSG_SHUTDOWN:
            break
        if msg_type != wire.MSG_WORK:
            continue
        _fire_chaos(channel, payload.get("chaos"))
        try:
            verdict = runtime.check(payload)
        except Exception as error:  # noqa: BLE001 — stay up, report
            channel.send(wire.encode_frame(
                wire.MSG_ERROR, wire.error_message(
                    payload["seq"], str(error),
                    type(error).__name__)))
            continue
        channel.send(wire.encode_frame(wire.MSG_VERDICT, verdict))
    channel.close()


def pipe_worker_main(conn, init: WorkerInit) -> None:
    """``multiprocessing.Process`` target for the mp transport."""
    worker_loop(PipeChildChannel(conn), init)


def socket_worker_main(host: str, port: int, init: WorkerInit) -> None:
    """``multiprocessing.Process`` target for the socket transport.

    Locally spawned socket workers run the same
    :class:`~repro.service.transport.client.WorkerClient` a cross-host
    ``jmake worker --connect`` process does — one handshake, one lease
    protocol, one reconnect path, whether the worker lives on this
    machine or another.
    """
    from repro.service.transport.client import WorkerClient
    client = WorkerClient(host, port, auth_key=init.auth_key,
                          worker_id=init.worker_id,
                          corpus=init.corpus, options=init.options,
                          fault_plan=init.fault_plan,
                          retry_policy=init.retry_policy,
                          use_cache=init.use_cache,
                          start_method=init.start_method)
    client.run()
