"""Shard supervision: crash/hang detection, restarts, circuit breaking.

The :class:`ShardSupervisor` is a periodic real-time poll task over the
service's :class:`~repro.service.shards.ShardPool`. Per shard it
distinguishes three states:

- **crashed** — the worker task is done with an exception (the
  ``worker_crash`` fault, or any bug that escapes the worker loop);
- **hung** — the worker task is alive but has held its claimed job past
  the hang deadline without a heartbeat (the ``worker_hang`` fault:
  because the event loop is single-threaded and real jobs are
  synchronous, the only way the supervisor can *observe* a held claim
  is a worker awaiting something that never resolves — so the deadline
  cannot false-positive on a slow legitimate job);
- **healthy** — anything else.

Recovery is requeue-then-restart: the claimed job goes back on the
shard's queue (idempotent — crashes fire before the job runs, so
nothing is replayed; verdict exactly-once is additionally guaranteed by
the journal ledger's dedup keys), the abandoned ``queue.get()`` is
settled so ``queue.join()`` stays balanced, and the worker restarts
under an exponential-backoff restart budget. When the budget is
exhausted the shard's **circuit breaker** opens: its queue is drained
inline (the degraded sequential ``run_units`` driver), and from then on
:meth:`ArchShard.enqueue` runs every job inline. Requests lose
pipelining on that shard but never results.

State machine (per shard)::

    RUNNING --crash/hang--> RECOVERING --budget left--> RUNNING
                                |
                                +--budget exhausted--> BREAKER_OPEN
                                                        (terminal)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.obs.events import (
    EVENT_SHARD_BREAKER_OPEN,
    EVENT_SHARD_CRASH,
    EVENT_SHARD_HANG,
    EVENT_SHARD_INLINE_DRAIN,
    EVENT_SHARD_RESTART,
    NULL_EVENTS,
)
from repro.obs.logcfg import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

_logger = get_logger("service.supervisor")


@dataclass
class SupervisorConfig:
    """Tunables of one :class:`ShardSupervisor` (real seconds — the
    supervisor watches OS-level liveness, not the simulated clock)."""

    #: real seconds between liveness sweeps
    poll_interval_seconds: float = 0.02
    #: real seconds a claimed job may be held without a heartbeat
    #: before the worker counts as hung
    hang_deadline_seconds: float = 0.2
    #: worker restarts allowed per shard before the breaker opens
    max_restarts_per_shard: int = 3
    #: exponential-backoff restart delays: base * factor**(restart-1),
    #: capped at the max
    backoff_base_seconds: float = 0.01
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.poll_interval_seconds <= 0:
            raise ValueError(
                f"poll_interval_seconds must be positive, "
                f"got {self.poll_interval_seconds}")
        if self.hang_deadline_seconds <= 0:
            raise ValueError(
                f"hang_deadline_seconds must be positive, "
                f"got {self.hang_deadline_seconds}")
        if self.max_restarts_per_shard < 0:
            raise ValueError(
                f"max_restarts_per_shard cannot be negative, "
                f"got {self.max_restarts_per_shard}")

    def backoff_seconds(self, restart: int) -> float:
        """Delay before restart number ``restart`` (1-based)."""
        delay = self.backoff_base_seconds * (
            self.backoff_factor ** max(0, restart - 1))
        return min(delay, self.backoff_max_seconds)


class ShardSupervisor:
    """Watches shard workers, revives them, opens breakers."""

    def __init__(self, pool, *, config: SupervisorConfig | None = None,
                 metrics=None, tracer=None, events=None) -> None:
        self.pool = pool
        self.config = config or SupervisorConfig()
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.events = events if events is not None else NULL_EVENTS
        self._task: "asyncio.Task | None" = None
        self.crashes_detected = 0
        self.hangs_detected = 0
        self.restarts = 0
        self.requeued_jobs = 0
        self.breakers_opened = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the poll task on the running loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="shard-supervisor")

    async def stop(self) -> None:
        """Cancel the poll task."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.config.poll_interval_seconds)
            await self.sweep()

    # -- detection ---------------------------------------------------------

    async def sweep(self) -> None:
        """One liveness pass over every shard (also callable directly
        by tests to avoid real-time waits)."""
        for shard in self.pool.shards:
            if shard.breaker_open:
                # a producer blocked in queue.put() when the breaker
                # opened can still land a job afterwards; keep the
                # queue of a broken shard drained
                self._drain_inline(shard)
                continue
            task = shard.task
            if task is not None and task.done():
                error = task.exception() \
                    if not task.cancelled() else None
                self.crashes_detected += 1
                self.metrics.counter(
                    "service.supervisor.crashes_detected").inc()
                _logger.warning(
                    "shard %d worker crashed (%s); recovering",
                    shard.index,
                    type(error).__name__ if error else "cancelled")
                self.events.emit(
                    EVENT_SHARD_CRASH,
                    request_id=getattr(shard.claimed, "request_id",
                                       None),
                    shard=shard.index,
                    error=type(error).__name__ if error else "cancelled",
                    pickups=shard.pickups)
                with self.tracer.span("supervisor.recover",
                                      shard=shard.index, cause="crash"):
                    await self._revive(shard, settle_get=True)
            elif self._is_hung(shard):
                self.hangs_detected += 1
                self.metrics.counter(
                    "service.supervisor.hangs_detected").inc()
                _logger.warning(
                    "shard %d worker hung past the %.3fs deadline; "
                    "killing and recovering", shard.index,
                    self.config.hang_deadline_seconds)
                self.events.emit(
                    EVENT_SHARD_HANG,
                    request_id=getattr(shard.claimed, "request_id",
                                       None),
                    shard=shard.index,
                    deadline_seconds=self.config.hang_deadline_seconds,
                    pickups=shard.pickups)
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                with self.tracer.span("supervisor.recover",
                                      shard=shard.index, cause="hang"):
                    await self._revive(shard, settle_get=True)

    def _is_hung(self, shard) -> bool:
        if shard.claimed is None:
            return False
        held = asyncio.get_running_loop().time() - shard.last_beat
        return held > self.config.hang_deadline_seconds

    # -- recovery ----------------------------------------------------------

    async def _revive(self, shard, *, settle_get: bool) -> None:
        """Requeue the claimed job and restart (or break) the shard.

        ``settle_get`` balances the ``queue.get()`` the dead worker
        never matched with ``task_done()`` — without it, ``drain()``'s
        ``queue.join()`` would hang forever on the lost claim.
        """
        claimed, shard.claimed = shard.claimed, None
        if claimed is not None:
            # put first, then settle: the job is never off-queue and
            # unclaimed at the same time
            shard.queue.put_nowait(claimed)
            if settle_get:
                shard.queue.task_done()
            self.requeued_jobs += 1
            self.metrics.counter(
                "service.supervisor.requeued_jobs").inc()
        if shard.restarts >= self.config.max_restarts_per_shard:
            self._open_breaker(shard)
            return
        shard.restarts += 1
        self.restarts += 1
        self.metrics.counter("service.supervisor.restarts").inc()
        delay = self.config.backoff_seconds(shard.restarts)
        _logger.info("restarting shard %d worker (restart %d/%d, "
                     "backoff %.3fs)", shard.index, shard.restarts,
                     self.config.max_restarts_per_shard, delay)
        self.events.emit(
            EVENT_SHARD_RESTART, shard=shard.index,
            restart=shard.restarts,
            budget=self.config.max_restarts_per_shard,
            backoff_seconds=delay)
        with self.tracer.span("supervisor.restart", shard=shard.index,
                              restart=shard.restarts,
                              backoff=delay):
            if delay > 0:
                await asyncio.sleep(delay)
            shard.start()

    def _open_breaker(self, shard) -> None:
        """Terminal degradation: run everything this shard owns inline."""
        shard.breaker_open = True
        shard.breaker_reason = (
            f"restart budget exhausted "
            f"({self.config.max_restarts_per_shard} restart(s))")
        self.breakers_opened += 1
        self.metrics.counter("service.supervisor.breakers_opened").inc()
        self.metrics.gauge(
            f"service.shard.{shard.index}.breaker_open").set(1)
        _logger.error("shard %d circuit breaker OPEN (%s); degrading "
                      "to inline sequential execution", shard.index,
                      shard.breaker_reason)
        self.events.emit(EVENT_SHARD_BREAKER_OPEN, shard=shard.index,
                         reason=shard.breaker_reason)
        # whatever the dead worker left queued runs inline right now
        self._drain_inline(shard)

    def _drain_inline(self, shard) -> None:
        if not shard.queue.qsize():
            return
        drained = 0
        with self.tracer.span("supervisor.drain_inline",
                              shard=shard.index):
            while True:
                try:
                    job = shard.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                shard.inline_jobs += 1
                drained += 1
                try:
                    job()
                finally:
                    shard.queue.task_done()
        if drained:
            self.events.emit(EVENT_SHARD_INLINE_DRAIN,
                             shard=shard.index, jobs=drained)

    def stats(self) -> dict:
        """Supervision telemetry for ``stats()``/``--stats-out``."""
        return {
            "crashes_detected": self.crashes_detected,
            "hangs_detected": self.hangs_detected,
            "restarts": self.restarts,
            "requeued_jobs": self.requeued_jobs,
            "breakers_opened": self.breakers_opened,
            "breaker_open_shards": [shard.index
                                    for shard in self.pool.shards
                                    if shard.breaker_open],
            # fleet counters, always zero in-process: no sockets means
            # nothing to rejoin, fence, or authenticate — present so
            # the stats shape is uniform across every transport
            "rejoins": 0,
            "fenced_replies": 0,
            "auth_rejected": 0,
        }
