"""Cache telemetry: per-artifact-kind counters and derived savings.

Exported on :class:`repro.evalsuite.runner.EvaluationResult` and printed
by ``jmake evaluate --cache-stats``. Since PR 2 the counters live in a
:class:`repro.obs.metrics.MetricsRegistry` (instruments named
``cache.<kind>.<field>``); :class:`CacheStats` and :class:`KindStats`
keep their PR 1 API as views over that registry, so cache telemetry
shows up in ``jmake evaluate --metrics-out`` alongside the pipeline
metrics while every existing call site (``stats.kind("object").hits +=
1`` and friends) still works. The registry algebra supplies the
subtraction and merging the parallel runner needs to combine per-worker
deltas with the parent's priming stats into one coherent surface.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

#: artifact kinds the cache distinguishes
KINDS = ("preprocess", "object", "config", "model", "makefile")

#: the counter fields every kind carries, in render order
FIELDS = ("hits", "misses", "evictions", "invalidations", "bytes_saved",
          "sim_seconds_saved")

#: registry instrument counting pickle loads that fell back to empty
LOAD_ERRORS = "cache.load_errors"


class KindStats:
    """Counters for one artifact kind (a view over a registry).

    Standalone construction (``KindStats(hits=3)``) owns a private
    registry; :meth:`CacheStats.kind` hands out views bound to the
    shared one.
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, hits: int = 0, misses: int = 0, evictions: int = 0,
                 invalidations: int = 0, bytes_saved: int = 0,
                 sim_seconds_saved: float = 0.0, *,
                 registry: MetricsRegistry | None = None,
                 prefix: str = "cache._") -> None:
        self._registry = registry if registry is not None \
            else MetricsRegistry()
        self._prefix = prefix
        if registry is None:
            for name, value in zip(FIELDS, (hits, misses, evictions,
                                            invalidations, bytes_saved,
                                            sim_seconds_saved)):
                if value:
                    self._registry.counter(f"{prefix}.{name}").value = value

    def _get(self, name: str):
        return self._registry.counter(f"{self._prefix}.{name}").value

    def _set(self, name: str, value) -> None:
        self._registry.counter(f"{self._prefix}.{name}").value = value

    @property
    def probes(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """hits / probes, 0.0 when never probed."""
        return self.hits / self.probes if self.probes else 0.0

    def merge(self, other: "KindStats") -> None:
        """Add another counter set into this one."""
        for name in FIELDS:
            self._set(name, self._get(name) + getattr(other, name))

    def delta(self, since: "KindStats") -> "KindStats":
        """Counter-wise ``self - since`` (standalone result)."""
        return KindStats(*[getattr(self, name) - getattr(since, name)
                           for name in FIELDS])

    def copy(self) -> "KindStats":
        """An independent standalone copy."""
        return KindStats(*[getattr(self, name) for name in FIELDS])

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={getattr(self, name)!r}"
                          for name in FIELDS)
        return f"KindStats({inner})"


def _field_property(name: str) -> property:
    def fget(self):
        return self._get(name)

    def fset(self, value):
        self._set(name, value)

    return property(fget, fset)


for _name in FIELDS:
    setattr(KindStats, _name, _field_property(_name))
del _name


class CacheStats:
    """All counters, by artifact kind, living in one metrics registry."""

    def __init__(self, kinds: "dict[str, KindStats] | None" = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._kind_names: set[str] = set()
        if kinds is None:
            for name in KINDS:
                self.kind(name)
        else:
            for name, stats in kinds.items():
                self.kind(name).merge(stats)

    def kind(self, name: str) -> KindStats:
        """The counter set for one kind (registered on demand)."""
        self._kind_names.add(name)
        return KindStats(registry=self.registry, prefix=f"cache.{name}")

    @property
    def kind_names(self) -> "list[str]":
        """All kinds seen, sorted."""
        return sorted(self._kind_names)

    def _total(self, field: str):
        return sum(getattr(self.kind(name), field)
                   for name in self._kind_names)

    @property
    def hits(self) -> int:
        """Total hits across kinds."""
        return self._total("hits")

    @property
    def misses(self) -> int:
        """Total misses across kinds."""
        return self._total("misses")

    @property
    def evictions(self) -> int:
        """Total evictions across kinds."""
        return self._total("evictions")

    @property
    def bytes_saved(self) -> int:
        """Total artifact bytes served from cache."""
        return self._total("bytes_saved")

    @property
    def sim_seconds_saved(self) -> float:
        """Total simulated seconds saved across kinds."""
        return self._total("sim_seconds_saved")

    @property
    def load_errors(self) -> int:
        """Pickle loads that fell back to an empty cache."""
        return self.registry.counter(LOAD_ERRORS).value

    def merge(self, other: "CacheStats") -> None:
        """Add another stats object into this one, instrument-wise."""
        self.registry.merge(other.registry)
        self._kind_names |= other._kind_names

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counter-wise ``self - since`` across all instruments."""
        result = CacheStats(kinds={})
        result.registry = self.registry.delta(since.registry)
        result._kind_names = self._kind_names | since._kind_names
        return result

    def copy(self) -> "CacheStats":
        """A deep, independent copy."""
        result = CacheStats(kinds={})
        result.registry = self.registry.snapshot()
        result._kind_names = set(self._kind_names)
        return result

    def render(self) -> str:
        """A fixed-width table for ``--cache-stats``."""
        header = (f"{'kind':<12} {'hits':>8} {'misses':>8} {'rate':>6} "
                  f"{'evict':>6} {'inval':>6} {'bytes saved':>12} "
                  f"{'sim s saved':>12}")
        lines = [header, "-" * len(header)]
        for name in self.kind_names:
            stats = self.kind(name)
            lines.append(
                f"{name:<12} {stats.hits:>8} {stats.misses:>8} "
                f"{stats.hit_rate:>6.1%} {stats.evictions:>6} "
                f"{stats.invalidations:>6} {stats.bytes_saved:>12} "
                f"{stats.sim_seconds_saved:>12.1f}")
        lines.append(
            f"{'total':<12} {self.hits:>8} {self.misses:>8} "
            f"{(self.hits / (self.hits + self.misses)) if (self.hits + self.misses) else 0.0:>6.1%} "
            f"{self.evictions:>6} {'':>6} {self.bytes_saved:>12} "
            f"{self.sim_seconds_saved:>12.1f}")
        if self.load_errors:
            lines.append(f"load errors : {self.load_errors}")
        return "\n".join(lines)
