"""Cache telemetry: per-artifact-kind counters and derived savings.

Exported on :class:`repro.evalsuite.runner.EvaluationResult` and printed
by ``jmake evaluate --cache-stats``. The counters support subtraction
and merging so the parallel runner can combine per-worker deltas with
the parent process's priming stats into one coherent surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: artifact kinds the cache distinguishes
KINDS = ("preprocess", "object", "config", "model", "makefile")


@dataclass
class KindStats:
    """Counters for one artifact kind."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: sources whose entries a commit diff perturbed (depgraph fan-out)
    invalidations: int = 0
    #: artifact bytes served from cache instead of being recomputed
    bytes_saved: int = 0
    #: simulated seconds a probe-clocked hit saves vs full recomputation
    sim_seconds_saved: float = 0.0

    @property
    def probes(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """hits / probes, 0.0 when never probed."""
        return self.hits / self.probes if self.probes else 0.0

    def merge(self, other: "KindStats") -> None:
        """Add another counter set into this one."""
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    def delta(self, since: "KindStats") -> "KindStats":
        """Counter-wise ``self - since``."""
        return KindStats(*[
            getattr(self, spec.name) - getattr(since, spec.name)
            for spec in fields(self)])

    def copy(self) -> "KindStats":
        """An independent copy."""
        return KindStats(*[getattr(self, spec.name) for spec in fields(self)])


@dataclass
class CacheStats:
    """All counters, by artifact kind."""

    kinds: dict[str, KindStats] = field(
        default_factory=lambda: {kind: KindStats() for kind in KINDS})

    def kind(self, name: str) -> KindStats:
        """The counter set for one kind (created on demand)."""
        if name not in self.kinds:
            self.kinds[name] = KindStats()
        return self.kinds[name]

    @property
    def hits(self) -> int:
        """Total hits across kinds."""
        return sum(stats.hits for stats in self.kinds.values())

    @property
    def misses(self) -> int:
        """Total misses across kinds."""
        return sum(stats.misses for stats in self.kinds.values())

    @property
    def evictions(self) -> int:
        """Total evictions across kinds."""
        return sum(stats.evictions for stats in self.kinds.values())

    @property
    def bytes_saved(self) -> int:
        """Total artifact bytes served from cache."""
        return sum(stats.bytes_saved for stats in self.kinds.values())

    @property
    def sim_seconds_saved(self) -> float:
        """Total simulated seconds saved across kinds."""
        return sum(stats.sim_seconds_saved for stats in self.kinds.values())

    def merge(self, other: "CacheStats") -> None:
        """Add another stats object into this one, kind by kind."""
        for name, stats in other.kinds.items():
            self.kind(name).merge(stats)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counter-wise ``self - since`` across kinds."""
        result = CacheStats(kinds={})
        for name, stats in self.kinds.items():
            base = since.kinds.get(name, KindStats())
            result.kinds[name] = stats.delta(base)
        return result

    def copy(self) -> "CacheStats":
        """A deep, independent copy."""
        return CacheStats(kinds={name: stats.copy()
                                 for name, stats in self.kinds.items()})

    def render(self) -> str:
        """A fixed-width table for ``--cache-stats``."""
        header = (f"{'kind':<12} {'hits':>8} {'misses':>8} {'rate':>6} "
                  f"{'evict':>6} {'inval':>6} {'bytes saved':>12} "
                  f"{'sim s saved':>12}")
        lines = [header, "-" * len(header)]
        for name in sorted(self.kinds):
            stats = self.kinds[name]
            lines.append(
                f"{name:<12} {stats.hits:>8} {stats.misses:>8} "
                f"{stats.hit_rate:>6.1%} {stats.evictions:>6} "
                f"{stats.invalidations:>6} {stats.bytes_saved:>12} "
                f"{stats.sim_seconds_saved:>12.1f}")
        lines.append(
            f"{'total':<12} {self.hits:>8} {self.misses:>8} "
            f"{(self.hits / (self.hits + self.misses)) if (self.hits + self.misses) else 0.0:>6.1%} "
            f"{self.evictions:>6} {'':>6} {self.bytes_saved:>12} "
            f"{self.sim_seconds_saved:>12.1f}")
        return "\n".join(lines)
