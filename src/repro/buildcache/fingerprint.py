"""Fingerprints: content digests, environment keys, closure manifests.

A cached artifact is valid exactly when recomputing it would read the
same bytes. For the substrate that means three ingredients:

- the *blob digest* of the main source text;
- the *environment fingerprint* — architecture builtin macros, include
  search roots, the configuration's autoconf macro set, and the
  per-unit ``MODULE`` flag (everything the preprocessor is seeded with);
- the *closure manifest* — (path, digest) pairs for every file the
  original computation read, plus the include candidates it probed and
  found *absent* (so creating a file that would shadow an include
  search path invalidates the entry too).

Digest memoization is content-addressed: texts are interned in a
module-level table, so re-hashing an unchanged file across thousands of
commits costs one dict lookup (CPython caches ``str.__hash__``, and
unchanged files are usually the very same string object).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable

FileProvider = Callable[[str], "str | None"]

#: manifest entries are (path, digest) pairs; absent files record the
#: sentinel below so "it did not exist" is part of the fingerprint.
Manifest = tuple[tuple[str, str], ...]

ABSENT = "<absent>"

_digest_memo: dict[str, str] = {}


def blob_digest(text: str) -> str:
    """Digest of one file's text (memoized by content)."""
    digest = _digest_memo.get(text)
    if digest is None:
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        _digest_memo[text] = digest
    return digest


def clear_digest_memo() -> None:
    """Drop the interned text table (tests / long-lived processes)."""
    _digest_memo.clear()


def digest_of_items(items: Iterable[tuple[str, str]]) -> str:
    """Digest of an iterable of string pairs (order-sensitive)."""
    hasher = hashlib.sha256()
    for key, value in items:
        hasher.update(key.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(value.encode("utf-8"))
        hasher.update(b"\x01")
    return hasher.hexdigest()[:16]


#: (arch name, config content digest, modular) -> environment digest
_env_memo: dict[tuple[str, str, bool], str] = {}


def env_fingerprint(architecture, config, *, modular: bool) -> str:
    """Fingerprint of everything that seeds a preprocessing run.

    Covers the toolchain builtins (``__arch__`` predefines, word size),
    the ordered include roots, the configuration's autoconf macro set,
    and whether the unit is compiled as a module (``MODULE`` defined).
    Two configurations with identical macro sets fingerprint the same
    even under different names — a defconfig that happens to enable the
    same symbols as allyesconfig shares its cache entries.
    """
    key = (architecture.name, config.content_digest(), modular)
    cached = _env_memo.get(key)
    if cached is not None:
        return cached
    items: list[tuple[str, str]] = [("arch", architecture.name)]
    items.extend(("root", root) for root in architecture.include_roots)
    items.extend(sorted(architecture.predefines().items()))
    items.extend(sorted(config.autoconf_macros().items()))
    if modular:
        items.append(("MODULE", "1"))
    digest = digest_of_items(items)
    _env_memo[key] = digest
    return digest


def manifest_for(paths: Iterable[str], provider: FileProvider,
                 *, absent: Iterable[str] = ()) -> Manifest:
    """Build the closure manifest for the given paths.

    ``paths`` are the files the computation read (main file first, then
    the transitive include closure); ``absent`` are include candidates
    probed and not found. Duplicates collapse to one entry.
    """
    entries: dict[str, str] = {}
    for path in paths:
        if path in entries:
            continue
        text = provider(path)
        entries[path] = ABSENT if text is None else blob_digest(text)
    for path in absent:
        entries.setdefault(path, ABSENT)
    return tuple(entries.items())


def manifest_valid(manifest: Manifest, provider: FileProvider) -> bool:
    """True when every manifest entry still matches the provider."""
    for path, digest in manifest:
        text = provider(path)
        if text is None:
            if digest != ABSENT:
                return False
        elif digest == ABSENT or blob_digest(text) != digest:
            return False
    return True


def manifest_digest(manifest: Manifest) -> str:
    """One digest summarizing a whole manifest (model identity keys)."""
    return digest_of_items(manifest)


class RecordingProvider:
    """Provider wrapper that records reads and missing probes.

    Used while parsing Kconfig models (and anywhere else a computation
    reads through a provider without reporting its closure) so the
    cache can build an exact manifest afterwards.
    """

    def __init__(self, provider: FileProvider) -> None:
        self._provider = provider
        self.read_paths: list[str] = []
        self.missing_paths: list[str] = []
        self._seen: set[str] = set()

    def __call__(self, path: str) -> "str | None":
        text = self._provider(path)
        if path not in self._seen:
            self._seen.add(path)
            if text is None:
                self.missing_paths.append(path)
            else:
                self.read_paths.append(path)
        return text

    def manifest(self) -> Manifest:
        """The manifest of everything read (and probed absent) so far."""
        return manifest_for(self.read_paths, self._provider,
                            absent=self.missing_paths)
