"""The content-addressed artifact store.

One :class:`BuildCache` is shared by every :class:`~repro.kbuild.build.
BuildSystem` a run creates (one per patch), memoizing across commits:

- ``preprocess`` — :class:`~repro.cpp.preprocessor.PreprocessResult`
  per (file, environment, source blob), validated against the include
  closure manifest recorded when the entry was stored;
- ``object`` — ``make file.o`` outcomes (both the fake ``.o`` and
  compile failures), same keying;
- ``model`` — parsed Kconfig models per architecture directory;
- ``config`` — solved configurations per (model digest, target);
- ``makefile`` — parsed Kbuild Makefiles per (path, text digest).

Correctness is content-addressed: a probe only hits when every file the
original computation read (or probed and found absent) still has the
same digest, so a hit is bit-for-bit equivalent to recomputing. The
include-dependency graph makes per-commit maintenance incremental, and
an optional LRU bound keeps long windows from growing without limit.

Keys for mutable-content artifacts hold a short list of *variants*
(same source blob, different closure — e.g. an unchanged ``.c``
candidate preprocessed under successive mutated headers), probed
most-recent-first.

The store pickles to disk (:meth:`BuildCache.save` /
:meth:`BuildCache.load`) for cross-run reuse — the ``jmake evaluate
--cache-file`` flow.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.buildcache.depgraph import IncludeDependencyGraph
from repro.buildcache.fingerprint import (
    FileProvider,
    Manifest,
    RecordingProvider,
    blob_digest,
    manifest_digest,
    manifest_for,
    manifest_valid,
)
from repro.buildcache.stats import LOAD_ERRORS, CacheStats
from repro.faults.inject import NULL_INJECTOR
from repro.faults.plan import SITE_CACHE_LOAD, SITE_CACHE_STORE
from repro.obs.logcfg import get_logger

# v2: Token gained __slots__ and MacroTable drops its read recorder on
# pickling, so v1 stores (pre-slotted token payloads) must not be loaded
_PICKLE_VERSION = 2

_logger = get_logger("buildcache")

#: clock policies: "replay" charges the full modeled cost on a hit so
#: simulated timings stay byte-identical to an uncached run (the work is
#: still skipped, which is where the wall-clock win comes from);
#: "probe" charges only the cache-probe cost, mirroring how a hit
#: behaves on real hardware (verdicts identical, timing figures shift).
CLOCK_REPLAY = "replay"
CLOCK_PROBE = "probe"


@dataclass(frozen=True)
class CachePolicy:
    """Tunables for one cache instance."""

    #: maximum number of keys held; None = unbounded
    max_entries: int | None = None
    #: closure variants kept per key (mutated-header churn)
    max_variants: int = 8
    #: CLOCK_REPLAY or CLOCK_PROBE (see module docstring)
    clock: str = CLOCK_REPLAY


@dataclass
class _Entry:
    """One stored artifact variant."""

    manifest: Manifest
    payload: Any = None


@dataclass
class _Slot:
    """All variants stored under one key, most recent first."""

    variants: list[_Entry] = field(default_factory=list)


class BuildCache:
    """Shared, content-addressed build artifact cache."""

    def __init__(self, policy: CachePolicy | None = None) -> None:
        self.policy = policy or CachePolicy()
        self.stats = CacheStats()
        self.graph = IncludeDependencyGraph()
        self._slots: "OrderedDict[tuple, _Slot]" = OrderedDict()
        #: fault-injection hook; an injected fault degrades a probe to a
        #: miss and a store to a no-op — corruption can cost time, never
        #: correctness, so cache-site faults cannot change any verdict
        self.injector = NULL_INJECTOR
        #: when True, CheckSession leaves ``injector`` alone — the check
        #: service pins one injector on the cache it shares across
        #: concurrent sessions, so per-request sessions cannot rebind it
        #: out from under each other
        self.injector_pinned = False

    def pin_injector(self, injector) -> None:
        """Bind ``injector`` and refuse later per-session rebinding."""
        self.injector = injector
        self.injector_pinned = True

    def __len__(self) -> int:
        return sum(len(slot.variants) for slot in self._slots.values())

    @property
    def charge_probe_cost(self) -> bool:
        """True under the probe clock policy."""
        return self.policy.clock == CLOCK_PROBE

    # -- generic store ------------------------------------------------------

    def _probe(self, kind: str, key: tuple,
               provider: FileProvider | None) -> "_Entry | None":
        counters = self.stats.kind(kind)
        if self.injector.fire(SITE_CACHE_LOAD, path=self._fault_path(key)) \
                is not None:
            # rotten entry / read error: degrade to a miss and recompute
            counters.misses += 1
            return None
        slot = self._slots.get(key)
        if slot is not None:
            for entry in slot.variants:
                if provider is None or manifest_valid(entry.manifest,
                                                      provider):
                    counters.hits += 1
                    self._slots.move_to_end(key)
                    return entry
        counters.misses += 1
        return None

    @staticmethod
    def _fault_path(key: tuple) -> str:
        """The artifact identity a fault plan's path filter sees."""
        return f"{key[0]}:{key[1]}" if len(key) > 1 else str(key[0])

    def _store(self, kind: str, key: tuple, manifest: Manifest,
               payload: Any) -> None:
        if self.injector.fire(SITE_CACHE_STORE, path=self._fault_path(key)) \
                is not None:
            # failed write: the entry is simply not persisted
            return
        slot = self._slots.get(key)
        if slot is None:
            slot = _Slot()
            self._slots[key] = slot
        # replace an identical-manifest variant instead of duplicating
        slot.variants = [entry for entry in slot.variants
                         if entry.manifest != manifest]
        slot.variants.insert(0, _Entry(manifest=manifest, payload=payload))
        counters = self.stats.kind(kind)
        while len(slot.variants) > self.policy.max_variants:
            slot.variants.pop()
            counters.evictions += 1
        self._slots.move_to_end(key)
        if self.policy.max_entries is not None:
            while len(self._slots) > self.policy.max_entries:
                _, evicted = self._slots.popitem(last=False)
                counters.evictions += len(evicted.variants)

    # -- preprocessing (.i) -------------------------------------------------

    def get_preprocess(self, path: str, env: str, main_digest: str,
                       provider: FileProvider):
        """A still-valid PreprocessResult, or None."""
        entry = self._probe("preprocess", ("preprocess", path, env,
                                           main_digest), provider)
        return entry.payload if entry is not None else None

    def put_preprocess(self, path: str, env: str, main_digest: str,
                       provider: FileProvider, result) -> None:
        """Store one preprocessing result with its closure manifest."""
        closure = [path, *result.included_files]
        manifest = manifest_for(closure, provider,
                                absent=result.missing_includes)
        self._store("preprocess", ("preprocess", path, env, main_digest),
                    manifest, result)
        self.graph.record(path, closure)

    # -- compilation (.o) ---------------------------------------------------

    def get_object(self, path: str, env: str, main_digest: str,
                   provider: FileProvider):
        """A still-valid compile outcome tuple, or None.

        Outcomes are ``("ok", ObjectFile)`` or
        ``("compile_failed", message)`` — failures are cached too, since
        recompiling a bad unit is as expensive as a good one.
        """
        entry = self._probe("object", ("object", path, env, main_digest),
                            provider)
        return entry.payload if entry is not None else None

    def put_object(self, path: str, env: str, main_digest: str,
                   provider: FileProvider, closure: Iterable[str],
                   missing: Iterable[str], outcome) -> None:
        """Store one compile outcome with its closure manifest."""
        closure = [path, *closure]
        manifest = manifest_for(closure, provider, absent=missing)
        self._store("object", ("object", path, env, main_digest),
                    manifest, outcome)
        self.graph.record(path, closure)

    # -- Kconfig models and solved configurations ---------------------------

    def get_model(self, root_path: str, root_text: str,
                  provider: FileProvider):
        """(model, model_digest) for a Kconfig root, or None."""
        key = ("model", root_path, blob_digest(root_text))
        entry = self._probe("model", key, provider)
        return entry.payload if entry is not None else None

    def put_model(self, root_path: str, root_text: str,
                  recording: RecordingProvider, model) -> str:
        """Store a parsed model; returns its identity digest.

        The identity digest covers the root *path* as well as the read
        closure: two architectures' Kconfig roots can source the very
        same tree files, and their models (hence their solved
        configurations) must never be conflated.
        """
        manifest = recording.manifest()
        digest = manifest_digest((("model-root", root_path), *manifest))
        key = ("model", root_path, blob_digest(root_text))
        self._store("model", key, manifest, (model, digest))
        return digest

    def get_config(self, model_digest: str, target: str,
                   seed_digest: str = ""):
        """A solved configuration for (model, target), or None."""
        entry = self._probe("config", ("config", model_digest, target,
                                       seed_digest), None)
        return entry.payload if entry is not None else None

    def put_config(self, model_digest: str, target: str, config,
                   seed_digest: str = "") -> None:
        """Store one solved configuration."""
        self._store("config", ("config", model_digest, target, seed_digest),
                    (), config)

    # -- Makefiles ----------------------------------------------------------

    def get_makefile(self, path: str, text: str):
        """A parsed Kbuild Makefile for (path, text), or None."""
        entry = self._probe("makefile", ("makefile", path,
                                         blob_digest(text)), None)
        return entry.payload if entry is not None else None

    def put_makefile(self, path: str, text: str, parsed) -> None:
        """Store one parsed Makefile (content-addressed, no manifest)."""
        self._store("makefile", ("makefile", path, blob_digest(text)),
                    (), parsed)

    # -- per-commit maintenance ---------------------------------------------

    def on_commit(self, changed_paths: Iterable[str]) -> set[str]:
        """Apply one commit's diff to the dependency graph.

        Incrementally perturbs exactly the sources whose recorded
        include closure intersects the diff (no per-worktree closure
        recomputation) and counts them as invalidations. Entries are
        *not* dropped — their manifests no longer match the new tree,
        so probes against it miss, but the entries revive verbatim when
        the same content reappears (a replayed window, a revert, a
        warm second run).
        """
        dependents = self.graph.note_changed(changed_paths)
        self.stats.kind("preprocess").invalidations += len(dependents)
        return dependents

    # -- priming and persistence --------------------------------------------

    def prime(self, tree, registry, *, use_allmodconfig: bool = False) -> None:
        """Pre-solve Kconfig models and all*config per architecture.

        Called by the parallel runner in the parent process before
        forking workers, so every worker inherits the solved
        configurations copy-on-write instead of re-solving them.
        """
        from repro.errors import KconfigError, ToolchainError
        from repro.kconfig.model import ConfigModel
        from repro.kconfig.solver import allmodconfig, allyesconfig

        provider = tree.files.get
        seen_roots: set[str] = set()
        for name in registry.working_names():
            try:
                architecture = registry.get(name)
            except ToolchainError:  # pragma: no cover - working_names only
                continue
            root_path = f"arch/{architecture.directory}/Kconfig"
            root_text = provider(root_path)
            if root_text is None:
                root_path = "Kconfig"
                root_text = provider(root_path)
            if root_text is None or root_path in seen_roots:
                continue
            seen_roots.add(root_path)
            if self.get_model(root_path, root_text, provider) is not None:
                continue
            recording = RecordingProvider(provider)
            recording(root_path)  # the root belongs in the manifest
            try:
                model = ConfigModel.from_kconfig(
                    root_text, path=root_path, provider=recording)
            except KconfigError:
                continue
            digest = self.put_model(root_path, root_text, recording, model)
            targets = ["allyesconfig"]
            if use_allmodconfig:
                targets.append("allmodconfig")
            for target in targets:
                if self.get_config(digest, target) is None:
                    solver = allmodconfig if target == "allmodconfig" \
                        else allyesconfig
                    self.put_config(digest, target, solver(model))

    def _note_load_error(self, path: str, reason: str) -> None:
        """Count and log one failed persistent-cache load."""
        self.stats.registry.counter(LOAD_ERRORS).inc()
        _logger.warning(
            "build cache load failed, starting empty: path=%s reason=%s",
            path, reason)

    def stats_snapshot(self) -> CacheStats:
        """An independent copy of the counters."""
        return self.stats.copy()

    def save(self, path: str) -> None:
        """Pickle the store (entries + graph, not stats) to disk.

        The pickle lands via temp-file + fsync + ``os.replace``, so a
        crash mid-save leaves the previous cache file intact instead of
        a torn pickle (which the next :meth:`load` would discard as
        corrupt, silently dropping the warm state).
        """
        from repro.util.atomicio import atomic_write_bytes

        if self.injector.fire(SITE_CACHE_STORE, path=path) is not None:
            _logger.warning(
                "build cache save failed (injected fault): path=%s", path)
            return
        payload = {
            "version": _PICKLE_VERSION,
            "policy": self.policy,
            "slots": self._slots,
            "graph": self.graph,
        }
        atomic_write_bytes(
            path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    @classmethod
    def load(cls, path: str, policy: CachePolicy | None = None,
             injector=None) -> "BuildCache":
        """Unpickle a store; a fresh cache on any mismatch or error.

        A missing file is the normal first-run case and stays quiet; a
        present-but-unreadable file is counted in the
        ``cache.load_errors`` instrument and logged as a structured
        warning so a persistent cache silently rotting is visible.
        ``injector`` lets a fault plan rot the pickle (``cache_corrupt``
        at ``cache_load``), exercising exactly that recovery path.
        """
        cache = cls(policy)
        if injector is not None:
            cache.injector = injector
            if injector.fire(SITE_CACHE_LOAD, path=path) is not None:
                cache._note_load_error(path, "injected cache corruption")
                return cache
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            _logger.debug("no build cache at %s; starting empty", path)
            return cache
        # pickle surfaces corrupt bytes as whatever the misread opcodes
        # raise (ValueError, KeyError, ...), not just UnpicklingError
        except Exception as error:
            cache._note_load_error(path, f"{type(error).__name__}: {error}")
            return cache
        if not isinstance(payload, dict) or \
                payload.get("version") != _PICKLE_VERSION:
            version = payload.get("version") if isinstance(payload, dict) \
                else None
            cache._note_load_error(
                path, f"incompatible payload (version={version!r}, "
                      f"expected {_PICKLE_VERSION})")
            return cache
        cache._slots = payload["slots"]
        cache.graph = payload["graph"]
        if policy is None and isinstance(payload.get("policy"), CachePolicy):
            cache.policy = payload["policy"]
        return cache
