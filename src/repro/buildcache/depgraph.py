"""The include-dependency graph behind incremental invalidation.

Correctness of a cache probe is established by manifest validation
(:func:`repro.buildcache.fingerprint.manifest_valid`), which is exact.
The graph's job is the *incremental* part of the design: instead of
recomputing every file's include closure per worktree, it remembers the
closure observed the last time each source was preprocessed, maintains
the reverse edges, and — fed each commit's diff — answers "which cached
sources does this change touch" in time proportional to the diff's
fan-out, not the tree size.

Generations double as cheap staleness telemetry: every time a commit
touches a file, the generation of every dependent source is bumped, so
``generation(path)`` counts how often a source's closure has been
perturbed over a window.
"""

from __future__ import annotations

from typing import Iterable


class IncludeDependencyGraph:
    """Reverse include-closure index with per-source generations."""

    def __init__(self) -> None:
        #: source path -> closure paths recorded at last preprocess
        self._closures: dict[str, frozenset[str]] = {}
        #: closure member -> sources whose closure contains it
        self._dependents: dict[str, set[str]] = {}
        #: source path -> number of diff-driven perturbations observed
        self._generations: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._closures)

    def record(self, source: str, closure: Iterable[str]) -> None:
        """Register (or refresh) one source's observed include closure.

        The closure should include the source itself; it is added if
        missing. Re-recording replaces the old edges — a source whose
        includes changed does not keep phantom dependents.
        """
        new_closure = frozenset(closure) | {source}
        old_closure = self._closures.get(source)
        if old_closure == new_closure:
            return
        if old_closure:
            for member in old_closure - new_closure:
                dependents = self._dependents.get(member)
                if dependents is not None:
                    dependents.discard(source)
                    if not dependents:
                        del self._dependents[member]
        self._closures[source] = new_closure
        for member in new_closure:
            self._dependents.setdefault(member, set()).add(source)

    def closure_of(self, source: str) -> frozenset[str]:
        """The last recorded closure of a source (empty if unknown)."""
        return self._closures.get(source, frozenset())

    def dependents_of(self, paths: Iterable[str]) -> set[str]:
        """Sources whose recorded closure intersects ``paths``."""
        dependents: set[str] = set()
        for path in paths:
            dependents.update(self._dependents.get(path, ()))
        return dependents

    def note_changed(self, changed_paths: Iterable[str]) -> set[str]:
        """Apply one commit's diff: bump dependent generations.

        Returns the set of sources whose closures the diff perturbed —
        exactly the entries a naive cache would have to re-fingerprint,
        computed from the reverse edges instead of by re-walking every
        worktree file.
        """
        dependents = self.dependents_of(changed_paths)
        for source in dependents:
            self._generations[source] = self._generations.get(source, 0) + 1
        return dependents

    def generation(self, source: str) -> int:
        """How many diffs have perturbed this source's closure."""
        return self._generations.get(source, 0)
