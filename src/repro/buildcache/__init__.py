"""Content-addressed incremental build cache (the substrate's ccache).

The paper's evaluation re-preprocesses every candidate file's full
include closure for every one of thousands of commits, even though
consecutive worktrees differ by a handful of lines. This package
memoizes the expensive build steps — preprocessing (``make file.i``),
compilation (``make file.o``), Kconfig model parsing, configuration
solving, and Makefile parsing — across commits and across runs, keyed
by content fingerprints so a hit is provably equivalent to recomputing:

- :mod:`repro.buildcache.fingerprint` — blob/environment digests and
  include-closure manifests (source text + transitive includes +
  configuration macro set + architecture builtins);
- :mod:`repro.buildcache.depgraph` — the include-dependency graph,
  incrementally invalidated by each commit's diff instead of being
  recomputed per worktree;
- :mod:`repro.buildcache.stats` — hit/miss/evict telemetry per
  artifact kind, bytes saved, simulated seconds saved;
- :mod:`repro.buildcache.cache` — the store itself, with an LRU bound,
  pickle-backed persistence for cross-run reuse, and pre-fork priming
  for the parallel evaluation runner.
"""

from repro.buildcache.cache import BuildCache, CachePolicy
from repro.buildcache.depgraph import IncludeDependencyGraph
from repro.buildcache.fingerprint import (
    blob_digest,
    env_fingerprint,
    manifest_for,
    manifest_valid,
)
from repro.buildcache.stats import CacheStats, KindStats

__all__ = [
    "BuildCache",
    "CachePolicy",
    "CacheStats",
    "IncludeDependencyGraph",
    "KindStats",
    "blob_digest",
    "env_fingerprint",
    "manifest_for",
    "manifest_valid",
]
