"""The ``.c`` file pipeline (§III-D).

For each candidate (architecture, configuration), in order:

1. apply the mutation patches (the worktree overlay already carries the
   mutated texts, including those of any changed ``.h`` files);
2. one batched ``make f1.i f2.i …`` over the patch's ``.c`` files
   relevant to the candidate (≤ ``batch_limit`` per invocation);
3. grep each ``.i`` for the file's mutation tokens *and* for the tokens
   of the patch's ``.h`` files;
4. when a ``.i`` surfaced at least one token, compile the original,
   unmutated file to ``.o`` — only compilations that succeed give
   credit (the paper counts a configuration only when compilation
   succeeds);
5. stop when every token of a file has been credited, or when the
   candidates are exhausted.

The pipeline is expressed as a generator of :class:`~repro.core.units.
WorkUnit` steps (config → preprocess-batch → token-grep → certify), so
the same control flow serves both the sequential
:meth:`CFileProcessor.process` wrapper and the sharded check service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.archselect import ArchSelection, ArchSelector, Candidate
from repro.core.mutation import MutationOverlay, MutationPlan
from repro.core.report import ArchAttempt, FileReport, FileStatus
from repro.core.units import (
    STAGE_CERTIFY,
    STAGE_CONFIG,
    STAGE_GREP,
    STAGE_PREPROCESS,
    UnitDag,
    UnitFailure,
    UnitGenerator,
    run_units,
)
from repro.errors import KconfigError, ToolchainError
from repro.kbuild.build import BuildError, BuildSystem
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.vcs.repository import Worktree


@dataclass
class _FileState:
    plan: MutationPlan
    selection: ArchSelection
    candidate_index: int = 0
    found_tokens: set[str] = field(default_factory=set)
    attempts: list[ArchAttempt] = field(default_factory=list)
    useful_archs: list[str] = field(default_factory=list)
    done: bool = False
    saw_i_success: bool = False
    saw_o_success: bool = False
    tokens_seen_in_i: set[str] = field(default_factory=set)

    @property
    def all_tokens(self) -> set[str]:
        return set(self.plan.tokens)

    @property
    def satisfied(self) -> bool:
        return self.all_tokens <= self.found_tokens


@dataclass
class CFileOutcome:
    """Per-file reports plus header tokens seen along the way."""
    reports: dict[str, FileReport]
    #: header tokens credited via the .c files' .i output
    header_tokens_found: set[str] = field(default_factory=set)


def make_config_unit(dag: UnitDag, build: BuildSystem, arch: str,
                     config_target: str, deps=()):
    """A config-stage unit; its result is a Config or UnitFailure."""
    def run():
        try:
            return build.make_config(arch, config_target)
        except (ToolchainError, KconfigError, BuildError) as error:
            return UnitFailure(str(error),
                               kind=getattr(error, "kind", ""))
    return dag.new_unit(STAGE_CONFIG, run, arch=arch,
                        config_target=config_target,
                        paths=(config_target,), deps=deps)


def make_certify_unit(dag: UnitDag, build: BuildSystem,
                      overlay: MutationOverlay, path: str, arch: str,
                      config, deps=()):
    """A certify-stage unit: clean .o of the unmutated tree.

    Result: ``True`` on success, :class:`UnitFailure` otherwise.
    """
    def run():
        with overlay.clean_build():
            try:
                build.make_o(path, arch, config)
                return True
            except BuildError as error:
                return UnitFailure(str(error), kind=error.kind)
    return dag.new_unit(STAGE_CERTIFY, run, arch=arch,
                        config_target=config.name, paths=(path,),
                        deps=deps)


class CFileProcessor:
    """Drives the §III-D pipeline over a patch's .c files."""
    def __init__(self, build_system: BuildSystem, selector: ArchSelector,
                 *, batch_limit: int = 50,
                 use_allmodconfig: bool = False,
                 use_targeted_configs: bool = False,
                 tracer=None, metrics=None) -> None:
        self._build = build_system
        self._selector = selector
        self._batch_limit = max(1, batch_limit)
        self._use_allmodconfig = use_allmodconfig
        self._use_targeted_configs = use_targeted_configs
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS

    def process(self, worktree: Worktree,
                c_plans: list[MutationPlan],
                h_plans: list[MutationPlan],
                overlay: MutationOverlay | None = None) -> CFileOutcome:
        """Run all candidates for all files; returns per-file reports."""
        return run_units(self.iter_process(worktree, c_plans, h_plans,
                                           overlay=overlay))

    def iter_process(self, worktree: Worktree,
                     c_plans: list[MutationPlan],
                     h_plans: list[MutationPlan],
                     overlay: MutationOverlay | None = None,
                     dag: UnitDag | None = None,
                     deps: tuple[int, ...] = ()) -> UnitGenerator:
        """The unit-yielding form of :meth:`process`."""
        if dag is None:
            dag = UnitDag()
        header_tokens: set[str] = set()
        all_header_tokens = {token for plan in h_plans
                             for token in plan.tokens}
        if overlay is None:
            overlay = MutationOverlay(worktree, c_plans + h_plans)
        states: dict[str, _FileState] = {}
        for plan in c_plans:
            selection = self._selector.select(plan.path)
            if self._use_allmodconfig:
                selection = _with_allmodconfig(selection)
            state = _FileState(plan=plan, selection=selection)
            if not plan.tokens:
                state.done = True  # comment-only: nothing to certify
            states[plan.path] = state

        # Candidate-major loop: take the next untried candidate of any
        # pending file, batch all pending files sharing it.
        while True:
            pending = [state for state in states.values() if not state.done]
            if not pending:
                break
            candidate = self._next_candidate(pending)
            if candidate is None:
                for state in pending:
                    state.done = True
                break
            batch = [state for state in pending
                     if self._wants(state, candidate)]
            for state in batch:
                state.candidate_index = max(
                    state.candidate_index,
                    state.selection.candidates.index(candidate) + 1)
            yield from self._iter_candidate(dag, deps, overlay, candidate,
                                            batch, all_header_tokens,
                                            header_tokens)

        if self._use_targeted_configs:
            for state in states.values():
                if not state.satisfied and state.plan.tokens:
                    yield from self._iter_targeted(dag, deps, overlay,
                                                   state)

        reports = {path: self._finalize(state)
                   for path, state in states.items()}
        return CFileOutcome(reports=reports,
                            header_tokens_found=header_tokens)

    # -- targeted covering configurations (§VII extension) ----------------

    def _iter_targeted(self, dag: UnitDag, deps, overlay: MutationOverlay,
                       state: "_FileState") -> UnitGenerator:
        """Last resort: build configurations aimed at the exact blocks
        holding the still-uncovered changed lines (Vampyr/Troll style,
        the paper's suggested §VII complement)."""
        from repro.analysis.blocks import extract_blocks
        from repro.analysis.deadblocks import _literals
        from repro.kconfig.solver import targeted_config

        host = self._build.registry.host.name
        try:
            model = self._build.config_model(host)
        except Exception:  # pragma: no cover - no Kconfig at all
            return
        gates = self._build.gate_symbols(state.plan.path)
        if gates is None:
            return
        missing_lines = {mutation.line for mutation in state.plan.mutations
                         if mutation.token not in state.found_tokens}
        blocks = extract_blocks(state.plan.path, state.plan.original_text)
        for block in blocks:
            if state.satisfied:
                break
            if not missing_lines & set(block.body_lines):
                continue
            literals = _literals(block.presence) \
                if block.presence is not None else None
            if literals is None:
                continue
            positive, negative = literals
            config = targeted_config(
                model, positive | gates, negative,
                name=f"targeted:{state.plan.path}:{block.start}")
            if config is None:
                continue
            adopt_unit = dag.new_unit(
                STAGE_CONFIG,
                lambda config=config: self._build.adopt_config(host, config),
                arch=host, config_target=config.name,
                paths=(config.name,), deps=deps)
            yield adopt_unit
            attempt = ArchAttempt(arch=host, config_target=config.name)
            state.attempts.append(attempt)
            self._metrics.counter("arch.attempts").inc()
            preprocess_unit = dag.new_unit(
                STAGE_PREPROCESS,
                lambda config=config: self._build.make_i(
                    [state.plan.path], host, config),
                arch=host, config_target=config.name,
                paths=(state.plan.path,), deps=(adopt_unit.unit_id,))
            result = (yield preprocess_unit)[0]
            if not result.ok:
                attempt.error = result.error
                continue
            attempt.i_ok = True
            state.saw_i_success = True
            i_text = result.i_text or ""
            grep_unit = dag.new_unit(
                STAGE_GREP,
                lambda i_text=i_text: state.plan.tokens_found_in(i_text),
                paths=(state.plan.path,),
                deps=(preprocess_unit.unit_id,))
            found_now = yield grep_unit
            attempt.tokens_found = found_now
            state.tokens_seen_in_i |= found_now
            if not found_now - state.found_tokens:
                continue
            certified = yield make_certify_unit(
                dag, self._build, overlay, state.plan.path, host, config,
                deps=(grep_unit.unit_id,))
            if certified is True:
                attempt.o_ok = True
                state.saw_o_success = True
                state.found_tokens |= found_now
                if host not in state.useful_archs:
                    state.useful_archs.append(host)
            else:
                attempt.error = certified.error

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _wants(state: _FileState, candidate: Candidate) -> bool:
        remaining = state.selection.candidates[state.candidate_index:]
        return candidate in remaining

    @staticmethod
    def _next_candidate(pending: list[_FileState]) -> Candidate | None:
        for state in pending:
            remaining = state.selection.candidates[state.candidate_index:]
            if remaining:
                return remaining[0]
            state.done = True
        return None

    def _iter_candidate(self, dag: UnitDag, deps,
                        overlay: MutationOverlay,
                        candidate: Candidate,
                        batch: list["_FileState"],
                        all_header_tokens: set[str],
                        header_tokens: set[str]) -> UnitGenerator:
        with self._tracer.span("cfile.candidate", arch=candidate.arch,
                               config=candidate.config_target,
                               files=len(batch)):
            self._metrics.counter("arch.attempts").inc(len(batch))
            yield from self._iter_candidate_traced(
                dag, deps, overlay, candidate, batch, all_header_tokens,
                header_tokens)

    def _iter_candidate_traced(self, dag: UnitDag, deps,
                               overlay: MutationOverlay,
                               candidate: Candidate,
                               batch: list["_FileState"],
                               all_header_tokens: set[str],
                               header_tokens: set[str]) -> UnitGenerator:
        config_unit = make_config_unit(dag, self._build, candidate.arch,
                                       candidate.config_target, deps=deps)
        config = yield config_unit
        if isinstance(config, UnitFailure):
            for state in batch:
                state.attempts.append(ArchAttempt(
                    arch=candidate.arch,
                    config_target=candidate.config_target,
                    error=config.error))
            return

        paths = [state.plan.path for state in batch]
        for start in range(0, len(paths), self._batch_limit):
            chunk = paths[start:start + self._batch_limit]
            preprocess_unit = dag.new_unit(
                STAGE_PREPROCESS,
                lambda chunk=chunk, config=config: self._build.make_i(
                    chunk, candidate.arch, config),
                arch=candidate.arch,
                config_target=candidate.config_target,
                paths=chunk, deps=(config_unit.unit_id,))
            results = yield preprocess_unit
            for state, result in zip(batch[start:start + self._batch_limit],
                                     results):
                attempt = ArchAttempt(arch=candidate.arch,
                                      config_target=candidate.config_target)
                state.attempts.append(attempt)
                if not result.ok:
                    attempt.error = result.error
                    continue
                attempt.i_ok = True
                state.saw_i_success = True
                i_text = result.i_text or ""

                def grep(state=state, i_text=i_text):
                    with self._tracer.span("grep.tokens",
                                           path=state.plan.path) as span:
                        found_now = state.plan.tokens_found_in(i_text)
                        header_found_now = {
                            token for token in all_header_tokens
                            if token in i_text}
                        span.set("found", len(found_now))
                        span.set("header_found", len(header_found_now))
                    return found_now, header_found_now

                grep_unit = dag.new_unit(
                    STAGE_GREP, grep, paths=(state.plan.path,),
                    deps=(preprocess_unit.unit_id,))
                found_now, header_found_now = yield grep_unit
                state.tokens_seen_in_i |= found_now
                # tokens_found records what this attempt's .i surfaced,
                # whether or not the certification .o succeeds.
                attempt.tokens_found = found_now | header_found_now
                if not found_now and not header_found_now:
                    continue
                # Mutants detected: certify with a clean .o build of the
                # fully unmutated tree.
                certified = yield make_certify_unit(
                    dag, self._build, overlay, state.plan.path,
                    candidate.arch, config, deps=(grep_unit.unit_id,))
                if certified is True:
                    attempt.o_ok = True
                else:
                    attempt.error = certified.error
                if attempt.o_ok:
                    state.saw_o_success = True
                    new_tokens = found_now - state.found_tokens
                    state.found_tokens |= found_now
                    header_tokens |= header_found_now
                    if new_tokens or header_found_now:
                        if candidate.arch not in state.useful_archs:
                            state.useful_archs.append(candidate.arch)
                    if state.satisfied:
                        state.done = True

    def _finalize(self, state: _FileState) -> FileReport:
        plan = state.plan
        if plan.tokens:
            self._metrics.counter("tokens.found").inc(
                len(state.found_tokens))
            self._metrics.counter("tokens.missing").inc(
                len(state.all_tokens - state.found_tokens))
        if not plan.tokens and plan.comment_lines:
            status = FileStatus.COMMENT_ONLY
        elif state.satisfied and (state.saw_o_success or not plan.tokens):
            status = FileStatus.OK
        elif state.selection.no_makefile:
            status = FileStatus.NO_MAKEFILE
        elif not state.selection.candidates:
            status = FileStatus.UNSUPPORTED_ARCH
        elif not state.saw_i_success:
            status = FileStatus.I_FAILED
        elif state.tokens_seen_in_i and not state.saw_o_success:
            # mutants surfaced in some .i, but no clean compile anywhere
            status = FileStatus.O_FAILED
        else:
            status = FileStatus.LINES_NOT_COMPILED
        return FileReport(
            path=plan.path,
            status=status,
            mutations=list(plan.mutations),
            missing_tokens=state.all_tokens - state.found_tokens,
            attempts=state.attempts,
            useful_archs=state.useful_archs,
            comment_lines=list(plan.comment_lines),
            macro_hints=list(plan.macro_hints),
            advisories=list(plan.advisories),
        )


def _with_allmodconfig(selection: ArchSelection) -> ArchSelection:
    """E-A1 extension: after each allyesconfig, also try allmodconfig."""
    augmented = ArchSelection(unsupported=list(selection.unsupported),
                              no_makefile=selection.no_makefile)
    for candidate in selection.candidates:
        augmented.candidates.append(candidate)
        if candidate.config_target == "allyesconfig":
            augmented.candidates.append(Candidate(
                candidate.arch, "allmodconfig"))
    return augmented
