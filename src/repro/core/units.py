"""Work units: the schedulable decomposition of one patch check.

A check is a small DAG of stages (§III-D mapped onto a scheduler):

    mutate ──> config ──> preprocess-batch ──> token-grep ──> certify
                 │              │                  │              │
                 └── per (arch, config target); preprocess batches
                     carry ≤ batch_limit files per make invocation

The pipeline generators in :mod:`repro.core.cfile`,
:mod:`repro.core.hfile`, and :mod:`repro.core.jmake` *yield*
:class:`WorkUnit` objects instead of touching the build system directly;
whoever drives the generator decides where and when each unit runs:

- :func:`run_units` executes every unit inline, in yield order — this
  is sequential mode, and it is bit-for-bit the behavior the processors
  had before the decomposition (the unit thunks are the exact former
  call sites, exception handling included);
- the check service (:mod:`repro.service`) routes units to per-
  architecture shard workers and coalesces preprocess units from
  *different* requests into shared ≤ batch-limit invocations.

Within one request, units execute strictly in yield order (each yield
waits for its result before the generator can produce the next unit),
so per-request clock charges, invocation logs, and verdicts cannot
depend on how many other requests are in flight. The DAG metadata
(``deps``) records the stage structure for scheduling, observability,
and the shape assertions in the test suite.

Unit thunks never raise: call sites that used to catch build errors
moved the ``try``/``except`` into the thunk and return a
:class:`UnitFailure` instead, so results cross scheduler boundaries as
plain values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

#: stage vocabulary, in DAG order
STAGE_MUTATE = "mutate"
STAGE_CONFIG = "config"
STAGE_PREPROCESS = "preprocess"
STAGE_GREP = "grep"
STAGE_CERTIFY = "certify"

#: stages that must run on the owning architecture's shard
ARCH_STAGES = (STAGE_CONFIG, STAGE_PREPROCESS, STAGE_CERTIFY)


@dataclass(frozen=True)
class UnitFailure:
    """A step that failed in a way the pipeline handles inline."""

    error: str
    kind: str = ""

    def __bool__(self) -> bool:  # failures are falsy result values
        return False


@dataclass
class WorkUnit:
    """One schedulable step of a patch check.

    ``arch`` is the shard routing key (``None`` for request-local
    stages like mutate and token-grep). ``paths`` is what the unit
    touches — for preprocess units its length is the unit's batch
    occupancy, the quantity the cross-request batcher packs into
    ≤ batch-limit invocations.
    """

    stage: str
    run: Callable[[], Any]
    arch: str | None = None
    config_target: str | None = None
    paths: tuple[str, ...] = ()
    #: unit ids this unit depends on (DAG edges); assigned by the
    #: yielding pipeline, which knows the stage structure
    deps: tuple[int, ...] = ()
    #: identity within one request's DAG (assigned at creation)
    unit_id: int = -1

    @property
    def occupancy(self) -> int:
        """Files this unit contributes to a batched invocation."""
        return len(self.paths)

    def describe(self) -> dict:
        """JSON-ready descriptor (everything but the thunk).

        The ``run`` closure holds session state (BuildSystem, overlay,
        clock) and cannot cross a process boundary; the descriptor is
        what the wire codec ships for DAG telemetry and scheduling
        decisions on the far side.
        """
        return {
            "stage": self.stage,
            "arch": self.arch,
            "config_target": self.config_target,
            "paths": list(self.paths),
            "deps": list(self.deps),
            "unit_id": self.unit_id,
        }

    @classmethod
    def from_description(cls, payload: dict) -> "WorkUnit":
        """Rebuild a descriptor unit with an inert thunk.

        The result carries full routing/DAG metadata but raises if
        executed — remote transports re-derive runnable thunks from
        their own warm session, never from the wire.
        """
        def _inert() -> Any:
            raise RuntimeError(
                "descriptor unit has no runnable thunk; thunks never "
                "cross process boundaries")
        return cls(stage=payload["stage"], run=_inert,
                   arch=payload["arch"],
                   config_target=payload["config_target"],
                   paths=tuple(payload["paths"]),
                   deps=tuple(payload["deps"]),
                   unit_id=payload["unit_id"])


class UnitDag:
    """The recorded decomposition of one request.

    Pipelines allocate unit ids through :meth:`new_unit`; the driver
    (sequential or service) keeps the instance around so tests and the
    service stats endpoint can inspect stage structure, per-stage
    counts, and edges.
    """

    def __init__(self, request_id: str = "<patch>") -> None:
        self.request_id = request_id
        self.units: list[WorkUnit] = []

    def new_unit(self, stage: str, run: Callable[[], Any], *,
                 arch: str | None = None,
                 config_target: str | None = None,
                 paths: Iterable[str] = (),
                 deps: Iterable[int] = ()) -> WorkUnit:
        """Create, register, and return the next unit."""
        unit = WorkUnit(stage=stage, run=run, arch=arch,
                        config_target=config_target,
                        paths=tuple(paths), deps=tuple(deps),
                        unit_id=len(self.units))
        self.units.append(unit)
        return unit

    def __len__(self) -> int:
        return len(self.units)

    def stage_counts(self) -> dict[str, int]:
        """Units per stage, for occupancy/shape assertions."""
        counts: dict[str, int] = {}
        for unit in self.units:
            counts[unit.stage] = counts.get(unit.stage, 0) + 1
        return counts

    def edges(self) -> list[tuple[int, int]]:
        """(dep, unit) pairs — the DAG's edge list."""
        return [(dep, unit.unit_id)
                for unit in self.units for dep in unit.deps]

    def stage_of(self, unit_id: int) -> str:
        """Stage name of one unit."""
        return self.units[unit_id].stage

    def to_dict(self) -> dict:
        """JSON-ready summary (no thunks)."""
        return {
            "request_id": self.request_id,
            "units": [
                {"id": unit.unit_id, "stage": unit.stage,
                 "arch": unit.arch, "config_target": unit.config_target,
                 "paths": list(unit.paths), "deps": list(unit.deps)}
                for unit in self.units
            ],
        }


#: the type pipelines return: a generator yielding units, receiving each
#: unit's result, returning the stage outcome
UnitGenerator = Generator[WorkUnit, Any, Any]


def run_units(generator: UnitGenerator) -> Any:
    """Sequential driver: execute every unit inline, in yield order.

    This is exactly the pre-decomposition control flow — the generator
    suspends at each former call site and immediately receives the
    result the inline call produces.
    """
    try:
        unit = next(generator)
        while True:
            unit = generator.send(unit.run())
    except StopIteration as stop:
        return stop.value
