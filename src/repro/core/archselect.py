"""Architecture and configuration selection heuristics (§III-C).

Candidate order for a file:

1. a file under ``arch/<d>/`` is assumed compilable by the
   cross-compilers owning that directory;
2. otherwise the *host* architecture first — a plain ``make``
   (CONFIG_COMPILE_TEST spirit);
3. then the Makefile heuristic: collect the ``CONFIG_*`` variables tied
   to the file's object (directly, through composite labels, or — when
   nothing matches — any variable in the Makefile); any architecture
   whose ``arch/<d>/`` subtree mentions one of those variables becomes a
   candidate with ``allyesconfig``;
4. if such a variable appears in files under ``arch/<d>/configs/``, one
   of those defconfig files (chosen deterministically at random) is
   additionally used.

Unsupported (broken-toolchain) candidates are reported so JMake can emit
the "unsupported architecture required" verdict.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable
from repro.errors import MakefileNotFoundError
from repro.kbuild.build import BuildSystem
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class Candidate:
    """One (architecture, config target) to try, in order."""

    arch: str
    config_target: str = "allyesconfig"

    def __str__(self) -> str:
        return f"{self.arch}/{self.config_target}"


@dataclass
class ArchSelection:
    """Ordered candidates plus unsupported/no-Makefile findings."""
    candidates: list[Candidate] = field(default_factory=list)
    #: architectures that looked relevant but have no working toolchain
    unsupported: list[str] = field(default_factory=list)
    no_makefile: bool = False


class ArchSelector:
    """Implements the §III-C candidate-selection heuristics."""
    def __init__(self, build_system: BuildSystem,
                 path_lister: Callable[[], list[str]],
                 provider: Callable[[str], "str | None"],
                 rng: DeterministicRng | None = None,
                 use_configs: bool = True,
                 tracer=None, metrics=None) -> None:
        self._build = build_system
        self._paths = path_lister
        self._provider = provider
        self._rng = rng or DeterministicRng("archselect")
        self._use_configs = use_configs
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._arch_mention_cache: dict[str, set[str]] = {}
        self._configs_mention_cache: dict[str, list[str]] = {}

    # -- public ------------------------------------------------------------

    def select(self, source_path: str) -> ArchSelection:
        """Candidate (architecture, config) list for one source file."""
        self._metrics.counter("arch.selections").inc()
        with self._tracer.span("arch.select", path=source_path) as span:
            selection = self._select(source_path)
            span.set("candidates", len(selection.candidates))
            if selection.unsupported:
                span.set("unsupported", ",".join(selection.unsupported))
            if selection.no_makefile:
                span.set("no_makefile", True)
            return selection

    def _select(self, source_path: str) -> ArchSelection:
        selection = ArchSelection()
        parts = source_path.split("/")
        registry = self._build.registry

        if parts[0] == "arch" and len(parts) >= 3:
            directory = parts[1]
            owners = registry.for_directory(directory)
            if owners:
                for architecture in owners:
                    self._add(selection, Candidate(architecture.name))
            else:
                selection.unsupported.append(directory)
            return selection

        try:
            self._build.governing_makefile(source_path)
        except MakefileNotFoundError:
            selection.no_makefile = True
            return selection

        # 1. plain make on the host.
        self._add(selection, Candidate(registry.host.name))

        # 2. Makefile config-variable hints -> architectures.
        makefile = self._build.governing_makefile(source_path)
        variables = makefile.config_vars_for_object(parts[-1])
        for variable in variables:
            for directory in self._arch_dirs_mentioning(variable):
                architectures = registry.for_directory(directory)
                if not architectures:
                    if directory not in selection.unsupported:
                        selection.unsupported.append(directory)
                    continue
                for architecture in architectures:
                    self._add(selection, Candidate(architecture.name))

        # 3. defconfig files mentioning a variable: pick one at random.
        if self._use_configs:
            for variable in variables:
                config_paths = self._config_files_mentioning(variable)
                if not config_paths:
                    continue
                chosen = self._rng.choice(sorted(config_paths))
                arch_dir = chosen.split("/")[1]
                architectures = registry.for_directory(arch_dir)
                if architectures:
                    self._add(selection, Candidate(
                        architectures[0].name,
                        config_target=chosen.rsplit("/", 1)[-1]))
        return selection

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _add(selection: ArchSelection, candidate: Candidate) -> None:
        if candidate not in selection.candidates:
            selection.candidates.append(candidate)

    def _arch_dirs_mentioning(self, variable: str) -> list[str]:
        """arch/ subdirectories whose files mention CONFIG_<variable>."""
        if variable not in self._arch_mention_cache:
            mentions: set[str] = set()
            config_re = re.compile(rf"\bCONFIG_{re.escape(variable)}\b")
            define_re = re.compile(rf"^config {re.escape(variable)}$",
                                   re.MULTILINE)
            for path in self._paths():
                if not path.startswith("arch/"):
                    continue
                parts = path.split("/")
                if len(parts) < 3:
                    continue
                text = self._provider(path)
                if text is None:
                    continue
                if config_re.search(text):
                    mentions.add(parts[1])
                elif path.endswith("Kconfig") and define_re.search(text):
                    mentions.add(parts[1])
            self._arch_mention_cache[variable] = mentions
        return sorted(self._arch_mention_cache[variable])

    def _config_files_mentioning(self, variable: str) -> list[str]:
        if variable not in self._configs_mention_cache:
            needle = f"CONFIG_{variable}="
            found: list[str] = []
            for path in self._paths():
                if "/configs/" not in path or not path.startswith("arch/"):
                    continue
                text = self._provider(path)
                if text and needle in text:
                    found.append(path)
            self._configs_mention_cache[variable] = found
        return self._configs_mention_cache[variable]
