"""Mutation token placement (§III-A and §III-B).

Tokens have the form ```"type:file:line"``: a backtick — invalid in
C outside literals, so the compiler front end can never accept it — then
a string literal that protects the payload from preprocessor rewriting.

Placement rules, verbatim from the paper:

- *comment lines* are never mutated (the compiler never sees them);
- *macro definitions* get one mutation per changed macro: at the end of
  the ``#define`` line (before the continuation backslash if any) when
  the first change is on that line, otherwise on a new
  ``<token> \\`` line inserted just before the first modified line;
- *other code* gets one mutation per group of changed lines delimited by
  conditional-compilation directives (``#if``/``#ifdef``/``#ifndef``/
  ``#elif``/``#else``) or the start of file: a new line carrying the
  token before the group's first changed line — unless that line begins
  mid-comment, in which case the token goes right after the comment ends
  on the same line;
- the engine also records the names of changed macros as *hints* for
  header processing (§III-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sourcemap import LineClass, SourceMap
from repro.util.text import split_lines_keepends

MUTATION_CHAR = "`"


@dataclass(frozen=True)
class Mutation:
    """One placed token."""

    token: str
    kind: str          # "define" | "code"
    path: str
    line: int          # the changed line this mutation certifies
    insert_at: int     # physical line (1-based) the token lives on/near

    @staticmethod
    def make_token(kind: str, path: str, line: int) -> str:
        """Render the backtick-protected token string."""
        return f'{MUTATION_CHAR}"{kind}:{path}:{line}"'


@dataclass
class MutationPlan:
    """All mutations for one file, plus the mutated text."""

    path: str
    original_text: str
    mutated_text: str
    mutations: list[Mutation] = field(default_factory=list)
    #: changed lines that were comments (reported as not relevant)
    comment_lines: list[int] = field(default_factory=list)
    #: names of macros whose definitions changed (§III-E hints)
    macro_hints: list[str] = field(default_factory=list)
    #: §VII advisory: unpromising groups detected before any build —
    #: changes anchored under #ifndef or #else, which allyesconfig can
    #: essentially never reach ("ask for user assistance, which could
    #: save running time by avoiding the exploration of unpromising
    #: cases")
    advisories: list[str] = field(default_factory=list)

    @property
    def tokens(self) -> list[str]:
        """All token strings of this plan."""
        return [mutation.token for mutation in self.mutations]

    def tokens_found_in(self, i_text: str) -> set[str]:
        """Tokens of this plan present in the given .i text."""
        return {token for token in self.tokens if token in i_text}

    def tokens_missing_in(self, i_text: str) -> set[str]:
        """Tokens of this plan absent from the given .i text."""
        return {token for token in self.tokens if token not in i_text}


class MutationOverlay:
    """Apply/revert the whole patch's mutations on a worktree.

    ``make file.o`` must see the *fully unmutated* tree: reverting only
    the file being compiled is not enough because a mutated header would
    still poison every including unit. This manager flips the complete
    set of mutated files at once.
    """

    def __init__(self, worktree, plans: list[MutationPlan]) -> None:
        self._worktree = worktree
        self._plans = [plan for plan in plans
                       if plan.mutated_text != plan.original_text]

    def apply_all(self) -> None:
        """Write every mutated text into the worktree overlay."""
        for plan in self._plans:
            self._worktree.write(plan.path, plan.mutated_text)

    def revert_all(self) -> None:
        """Restore every mutated file to its committed text."""
        for plan in self._plans:
            self._worktree.revert(plan.path)

    def clean_build(self):
        """Context manager: unmutated tree inside the block."""
        return _CleanBuild(self)


class _CleanBuild:
    def __init__(self, overlay: MutationOverlay) -> None:
        self._overlay = overlay

    def __enter__(self) -> None:
        self._overlay.revert_all()

    def __exit__(self, exc_type, exc, tb) -> None:
        self._overlay.apply_all()


class MutationEngine:
    """Compute a :class:`MutationPlan` for one file's changed lines."""

    def plan(self, path: str, text: str,
             changed_lines: list[int]) -> MutationPlan:
        """Place tokens for the changed lines; returns the plan."""
        source_map = SourceMap(path, text)
        plan = MutationPlan(path=path, original_text=text, mutated_text=text)
        if not changed_lines:
            return plan

        in_range = [line for line in changed_lines
                    if 1 <= line <= source_map.line_count()]
        macro_changes: dict[int, list[int]] = {}   # macro start -> lines
        code_groups: dict[int, list[int]] = {}     # group anchor -> lines

        for lineno in sorted(in_range):
            line_class = source_map.classify(lineno)
            if line_class is LineClass.COMMENT:
                plan.comment_lines.append(lineno)
                continue
            if line_class is LineClass.MACRO_DEF:
                region = source_map.macro_at(lineno)
                assert region is not None
                macro_changes.setdefault(region.start, []).append(lineno)
                if region.name and region.name not in plan.macro_hints:
                    plan.macro_hints.append(region.name)
                continue
            # Conditional directives and ordinary code are grouped by the
            # most recent conditional boundary (0 = file start).
            anchor = source_map.last_conditional_before(lineno)
            code_groups.setdefault(anchor, []).append(lineno)
            if anchor > 0:
                anchor_text = source_map.info(anchor).text.strip()
                if anchor_text.startswith(("#ifndef", "#else")):
                    advisory = (f"line {lineno} is anchored under "
                                f"{anchor_text.split()[0]} (line {anchor}):"
                                f" allyesconfig is unlikely to reach it")
                    if advisory not in plan.advisories:
                        plan.advisories.append(advisory)

        insertions: list[_Insertion] = []
        for start in sorted(macro_changes):
            insertions.append(self._macro_insertion(
                source_map, path, start, macro_changes[start]))
        for anchor in sorted(code_groups):
            insertions.append(self._code_insertion(
                source_map, path, code_groups[anchor]))

        plan.mutated_text = _apply_insertions(text, insertions)
        plan.mutations = [insertion.mutation for insertion in insertions]
        return plan

    # -- placement ---------------------------------------------------------

    def _macro_insertion(self, source_map: SourceMap, path: str,
                         region_start: int,
                         changed: list[int]) -> "_Insertion":
        region = source_map.macro_at(region_start)
        assert region is not None
        first_change = min(changed)
        token = Mutation.make_token("define", path, first_change)
        mutation = Mutation(token=token, kind="define", path=path,
                            line=first_change, insert_at=region_start)
        if first_change == region.start:
            # Mutation at the end of the #define line, before any
            # continuation backslash.
            return _Insertion(mutation=mutation, kind="append_to_define",
                              at_line=region.start)
        # New "<token> \" line just before the first modified line.
        return _Insertion(mutation=mutation, kind="macro_line_before",
                          at_line=first_change)

    def _code_insertion(self, source_map: SourceMap, path: str,
                        changed: list[int]) -> "_Insertion":
        first_change = min(changed)
        token = Mutation.make_token("code", path, first_change)
        mutation = Mutation(token=token, kind="code", path=path,
                            line=first_change, insert_at=first_change)
        info = source_map.info(first_change)
        if info.starts_mid_comment:
            return _Insertion(mutation=mutation, kind="after_comment_end",
                              at_line=first_change,
                              column=info.comment_end_column)
        return _Insertion(mutation=mutation, kind="line_before",
                          at_line=first_change)


@dataclass
class _Insertion:
    mutation: Mutation
    kind: str     # append_to_define | macro_line_before | line_before |
    #               after_comment_end
    at_line: int  # 1-based physical line
    column: int = 0


def _apply_insertions(text: str, insertions: list[_Insertion]) -> str:
    """Apply insertions bottom-up so line numbers stay valid."""
    lines = [line.rstrip("\n")
             for line in split_lines_keepends(text)]
    trailing_newline = text.endswith("\n")
    for insertion in sorted(insertions, key=lambda i: i.at_line,
                            reverse=True):
        index = insertion.at_line - 1
        token = insertion.mutation.token
        if insertion.kind == "append_to_define":
            raw = lines[index]
            stripped = raw.rstrip(" \t")
            if stripped.endswith("\\"):
                # place just before the continuation character
                body = stripped[:-1].rstrip(" \t")
                lines[index] = f"{body} {token} \\"
            else:
                lines[index] = f"{raw} {token}"
        elif insertion.kind == "macro_line_before":
            lines.insert(index, f"\t{token} \\")
        elif insertion.kind == "line_before":
            lines.insert(index, token)
        elif insertion.kind == "after_comment_end":
            raw = lines[index]
            column = insertion.column
            lines[index] = raw[:column] + f" {token} " + raw[column:]
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown insertion kind {insertion.kind}")
    result = "\n".join(lines)
    if trailing_newline:
        result += "\n"
    return result
