"""Classification of source lines for mutation placement.

For each physical line of a file, determine (§III-B):

- is it entirely inside a comment? (never processed by the compiler —
  not relevant to JMake);
- is it part of a macro definition (a ``#define`` logical line,
  including backslash continuations)? which macro?
- is it a conditional-compilation directive (``#if``/``#ifdef``/
  ``#ifndef``/``#elif``/``#else``)? — these are the boundaries between
  mutation groups for ordinary code;
- does it *begin* in the middle of a comment that ends on the line?
  (the mutation must then be placed after the comment's end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.util.text import split_lines_keepends


class LineClass(Enum):
    """Mutation-relevant classification of a physical line."""
    COMMENT = "comment"          # entirely within a comment
    MACRO_DEF = "macro"          # part of a #define logical line
    DIRECTIVE = "directive"      # other preprocessor directive lines
    CONDITIONAL = "conditional"  # #if / #ifdef / #ifndef / #elif / #else
    CODE = "code"                # everything else (incl. blank lines)


@dataclass
class MacroRegion:
    """The physical extent of one #define logical line."""

    name: str
    start: int   # 1-based first physical line (the #define line)
    end: int     # 1-based last physical line (inclusive)

    def covers(self, lineno: int) -> bool:
        """True when the region spans the given 1-based line."""
        return self.start <= lineno <= self.end


@dataclass
class LineInfo:
    """Classification record for one physical line."""
    lineno: int
    text: str
    line_class: LineClass
    macro: MacroRegion | None = None
    #: line starts inside a comment that terminates on this line
    starts_mid_comment: bool = False
    #: column just after the closing */ when starts_mid_comment
    comment_end_column: int = 0


_CONDITIONAL_KEYWORDS = ("if", "ifdef", "ifndef", "elif", "else")


def _directive_keyword(stripped: str) -> str | None:
    text = stripped.lstrip(" \t")
    if not text.startswith("#"):
        return None
    rest = text[1:].lstrip(" \t")
    keyword = ""
    for ch in rest:
        if ch.isalpha():
            keyword += ch
        else:
            break
    return keyword


class SourceMap:
    """Per-line classification of one file's text."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines: list[LineInfo] = []
        self.macros: list[MacroRegion] = []
        self._analyze()

    # -- queries -----------------------------------------------------------

    def info(self, lineno: int) -> LineInfo:
        """The LineInfo for a 1-based line number."""
        if not 1 <= lineno <= len(self.lines):
            raise IndexError(f"{self.path}: no line {lineno}")
        return self.lines[lineno - 1]

    def classify(self, lineno: int) -> LineClass:
        """The LineClass for a 1-based line number."""
        return self.info(lineno).line_class

    def macro_at(self, lineno: int) -> MacroRegion | None:
        """The macro region covering the line, or None."""
        return self.info(lineno).macro

    def last_conditional_before(self, lineno: int) -> int:
        """1-based line of the nearest conditional directive strictly
        before ``lineno``; 0 when none (i.e. since file start)."""
        for index in range(lineno - 2, -1, -1):
            if self.lines[index].line_class is LineClass.CONDITIONAL:
                return index + 1
        return 0

    def line_count(self) -> int:
        """Number of physical lines in the file."""
        return len(self.lines)

    # -- analysis -------------------------------------------------------------

    def _analyze(self) -> None:
        physical = [line.rstrip("\n")
                    for line in split_lines_keepends(self.text)]
        in_block_comment = False
        index = 0
        while index < len(physical):
            raw = physical[index]
            started_in_comment = in_block_comment
            visible, in_block_comment, end_column = _strip_comment_state(
                raw, in_block_comment)
            lineno = index + 1

            if started_in_comment and not visible.strip() \
                    and in_block_comment:
                # Entire line inside an unterminated block comment.
                self.lines.append(LineInfo(
                    lineno=lineno, text=raw, line_class=LineClass.COMMENT))
                index += 1
                continue
            if not visible.strip() and (started_in_comment or
                                        _is_pure_comment(raw)):
                self.lines.append(LineInfo(
                    lineno=lineno, text=raw, line_class=LineClass.COMMENT))
                index += 1
                continue

            keyword = _directive_keyword(visible)
            if keyword == "define":
                start = lineno
                # Extend through continuations.
                end_index = index
                while end_index < len(physical) - 1 and \
                        physical[end_index].rstrip(" \t").endswith("\\"):
                    end_index += 1
                name = _macro_name(visible)
                region = MacroRegion(name=name, start=start,
                                     end=end_index + 1)
                self.macros.append(region)
                for offset in range(index, end_index + 1):
                    self.lines.append(LineInfo(
                        lineno=offset + 1, text=physical[offset],
                        line_class=LineClass.MACRO_DEF, macro=region))
                    # Comment state may change inside the macro body.
                    if offset != index:
                        _, in_block_comment, _ = _strip_comment_state(
                            physical[offset], in_block_comment)
                index = end_index + 1
                continue
            if keyword in _CONDITIONAL_KEYWORDS:
                line_class = LineClass.CONDITIONAL
            elif keyword is not None and keyword != "":
                line_class = LineClass.DIRECTIVE
            else:
                line_class = LineClass.CODE
            self.lines.append(LineInfo(
                lineno=lineno, text=raw, line_class=line_class,
                starts_mid_comment=started_in_comment and not in_block_comment,
                comment_end_column=end_column if started_in_comment else 0))
            index += 1


def _strip_comment_state(line: str, in_block: bool
                         ) -> tuple[str, bool, int]:
    """Strip comments from one line given entry state.

    Returns (visible_text, exit_state, end_column) where ``end_column``
    is the index just past the last ``*/`` that closed an entry-state
    comment (0 if not applicable).
    """
    out: list[str] = []
    i = 0
    n = len(line)
    end_column = 0
    entered_in_block = in_block
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True, end_column
            in_block = False
            i = end + 2
            if entered_in_block:
                end_column = i
                entered_in_block = False
            out.append(" ")
            continue
        ch = line[i]
        if ch == "/" and i + 1 < n and line[i + 1] == "*":
            in_block = True
            i += 2
            continue
        if ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if ch in "\"'":
            j = i + 1
            while j < n:
                if line[j] == "\\" and j + 1 < n:
                    j += 2
                    continue
                if line[j] == ch:
                    j += 1
                    break
                j += 1
            out.append(line[i:j])
            i = j
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block, end_column


def _is_pure_comment(line: str) -> bool:
    stripped = line.strip()
    return (stripped.startswith("/*") or stripped.startswith("//")
            or stripped.startswith("*")) and True


def _macro_name(visible_define_line: str) -> str:
    text = visible_define_line.lstrip(" \t")
    assert text.startswith("#")
    rest = text[1:].lstrip(" \t")
    assert rest.startswith("define")
    rest = rest[len("define"):].lstrip(" \t")
    name = ""
    for ch in rest:
        if ch.isalnum() or ch == "_":
            name += ch
        else:
            break
    return name
