"""The ``.h`` file pipeline (§III-E).

A header cannot be compiled directly, so JMake selects ``.c`` files
likely to exercise the changed lines:

- files that ``#include`` the header directly;
- files that refer to the names of the changed macros (the *hints*);
- ordered: include + all hints, then all hints, then the rest;
- headers under ``arch/<d>/`` are only relevant to ``.c`` files in the
  same arch subtree or outside ``arch/`` entirely;
- when more than ``candidate_cap`` (default 100, user-configurable)
  files qualify, only allyesconfig-based configurations are used — the
  cost/false-positive trade-off §III-E measures (23 of 21012 instances).

Candidates are compiled "as though they all occurred in the same patch
but without mutations" of their own: only the header's tokens are being
hunted. Success: every header token appears in the ``.i`` of at least
one candidate that also compiles cleanly.
"""

from __future__ import annotations

import posixpath
import re
from dataclasses import dataclass, field
from typing import Callable

from repro.core.archselect import ArchSelector
from repro.core.mutation import MutationOverlay, MutationPlan
from repro.core.report import ArchAttempt, FileReport, FileStatus
from repro.errors import KconfigError, ToolchainError
from repro.kbuild.build import BuildError, BuildSystem
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.vcs.repository import Worktree

IGNORED_PREFIXES = ("Documentation/", "scripts/", "tools/")


@dataclass
class CandidateCFile:
    """A .c file that may exercise the changed header (§III-E)."""
    path: str
    includes_header: bool
    hint_count: int
    total_hints: int

    @property
    def priority(self) -> int:
        """0 best: include + all hints; 1: all hints; 2: the rest."""
        all_hints = self.total_hints > 0 and \
            self.hint_count == self.total_hints
        if self.includes_header and (all_hints or self.total_hints == 0):
            return 0
        if all_hints:
            return 1
        return 2


class HFileProcessor:
    """Drives the §III-E pipeline for one changed header."""
    def __init__(self, build_system: BuildSystem, selector: ArchSelector,
                 path_lister: Callable[[], list[str]],
                 provider: Callable[[str], "str | None"],
                 *, batch_limit: int = 50,
                 candidate_cap: int = 100,
                 tracer=None, metrics=None) -> None:
        self._build = build_system
        self._selector = selector
        self._paths = path_lister
        self._provider = provider
        self._batch_limit = max(1, batch_limit)
        self._candidate_cap = candidate_cap
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS

    # -- candidate selection ---------------------------------------------------

    def candidates_for(self, plan: MutationPlan) -> list[CandidateCFile]:
        """Includers and hint-referencing .c files, priority ordered."""
        header_path = plan.path
        basename = posixpath.basename(header_path)
        hints = plan.macro_hints
        hint_res = [re.compile(rf"\b{re.escape(hint)}\b")
                    for hint in hints]
        include_re = re.compile(
            rf'#\s*include\s+["<](?:[^">]*/)?{re.escape(basename)}[">]')

        header_arch = _arch_of(header_path)
        found: list[CandidateCFile] = []
        for path in self._paths():
            if not path.endswith(".c") or path.startswith(IGNORED_PREFIXES):
                continue
            candidate_arch = _arch_of(path)
            if header_arch is not None and candidate_arch is not None \
                    and candidate_arch != header_arch:
                continue
            text = self._provider(path)
            if text is None:
                continue
            includes = include_re.search(text) is not None
            hit_count = sum(1 for hint_re in hint_res
                            if hint_re.search(text))
            if includes or hit_count > 0:
                found.append(CandidateCFile(
                    path=path, includes_header=includes,
                    hint_count=hit_count, total_hints=len(hints)))
        found.sort(key=lambda c: (c.priority, c.path))
        return found

    # -- processing ---------------------------------------------------------------

    def process(self, worktree: Worktree, plan: MutationPlan,
                already_found: set[str],
                overlay: MutationOverlay | None = None) -> FileReport:
        """Resolve one header's remaining tokens via candidate .c files."""
        tokens = set(plan.tokens)
        found = set(already_found) & tokens
        attempts: list[ArchAttempt] = []
        useful_archs: list[str] = []
        # "Ideal case" accounting (§V-B): count only compilations that
        # subject at least one changed header line to the compiler.
        compilations = 0
        saw_i = False

        if not tokens:
            status = FileStatus.COMMENT_ONLY if plan.comment_lines \
                else FileStatus.OK
            return FileReport(path=plan.path, status=status,
                              comment_lines=list(plan.comment_lines),
                              macro_hints=list(plan.macro_hints))
        if tokens <= found:
            return FileReport(path=plan.path, status=FileStatus.OK,
                              mutations=list(plan.mutations),
                              macro_hints=list(plan.macro_hints))

        if overlay is None:
            overlay = MutationOverlay(worktree, [plan])
        with self._tracer.span("hfile.candidate_search",
                               path=plan.path) as search_span:
            candidates = self.candidates_for(plan)
            search_span.set("candidates", len(candidates))
        self._metrics.counter("hfile.candidates").inc(len(candidates))
        allyes_only = len(candidates) > self._candidate_cap

        # Phase 1 — host allyesconfig, batched up to batch_limit files
        # per make invocation (§III-D batching applies here too: a header
        # included by many .c files is what produces the paper's large
        # .i invocations).
        host = self._build.registry.host.name
        try:
            host_config = self._build.make_config(host, "allyesconfig")
        except (ToolchainError, KconfigError, BuildError):
            host_config = None
        if host_config is not None:
            for start in range(0, len(candidates), self._batch_limit):
                if tokens <= found:
                    break
                chunk = candidates[start:start + self._batch_limit]
                results = self._build.make_i(
                    [candidate.path for candidate in chunk],
                    host, host_config)
                for candidate, result in zip(chunk, results):
                    attempt = ArchAttempt(arch=host,
                                          config_target="allyesconfig")
                    attempts.append(attempt)
                    self._metrics.counter("arch.attempts").inc()
                    if not result.ok:
                        attempt.error = result.error
                        continue
                    attempt.i_ok = True
                    saw_i = True
                    i_text = result.i_text or ""
                    with self._tracer.span(
                            "grep.tokens",
                            path=candidate.path) as grep_span:
                        found_now = {token for token in tokens
                                     if token in i_text}
                        grep_span.set("found", len(found_now))
                    attempt.tokens_found = found_now
                    if not found_now - found:
                        continue
                    compilations += 1
                    with overlay.clean_build():
                        try:
                            self._build.make_o(candidate.path, host,
                                               host_config)
                            attempt.o_ok = True
                        except BuildError as error:
                            attempt.error = str(error)
                    if attempt.o_ok:
                        found |= found_now
                        if host not in useful_archs:
                            useful_archs.append(host)

        # Phase 2 — per-candidate architecture exploration for whatever
        # the host pass could not cover.
        for candidate in candidates:
            if tokens <= found:
                break
            selection = self._selector.select(candidate.path)
            config_candidates = [
                c for c in selection.candidates
                if not (c.arch == host
                        and c.config_target == "allyesconfig")]
            if allyes_only:
                config_candidates = [c for c in config_candidates
                                     if c.config_target == "allyesconfig"]
            for config_candidate in config_candidates:
                if tokens <= found:
                    break
                attempt = ArchAttempt(
                    arch=config_candidate.arch,
                    config_target=config_candidate.config_target)
                attempts.append(attempt)
                self._metrics.counter("arch.attempts").inc()
                try:
                    config = self._build.make_config(
                        config_candidate.arch,
                        config_candidate.config_target)
                except (ToolchainError, KconfigError, BuildError) as error:
                    attempt.error = str(error)
                    continue
                results = self._build.make_i([candidate.path],
                                             config_candidate.arch, config)
                result = results[0]
                if not result.ok:
                    attempt.error = result.error
                    continue
                attempt.i_ok = True
                saw_i = True
                i_text = result.i_text or ""
                with self._tracer.span("grep.tokens",
                                       path=candidate.path) as grep_span:
                    found_now = {token for token in tokens
                                 if token in i_text}
                    grep_span.set("found", len(found_now))
                attempt.tokens_found = found_now
                if not found_now - found:
                    continue
                compilations += 1
                # Certify: the candidate must compile against the fully
                # unmutated tree.
                with overlay.clean_build():
                    try:
                        self._build.make_o(candidate.path,
                                           config_candidate.arch, config)
                        attempt.o_ok = True
                    except BuildError as error:
                        attempt.error = str(error)
                if attempt.o_ok:
                    attempt.tokens_found = found_now
                    found |= found_now
                    if config_candidate.arch not in useful_archs:
                        useful_archs.append(config_candidate.arch)

        self._metrics.counter("tokens.found").inc(len(found))
        self._metrics.counter("tokens.missing").inc(len(tokens - found))
        if tokens <= found:
            status = FileStatus.OK
        elif candidates and not saw_i:
            status = FileStatus.I_FAILED
        else:
            # No candidate .c files at all, or candidates compiled but
            # never surfaced the remaining tokens.
            status = FileStatus.LINES_NOT_COMPILED
        return FileReport(
            path=plan.path, status=status,
            mutations=list(plan.mutations),
            missing_tokens=tokens - found,
            attempts=attempts,
            useful_archs=useful_archs,
            comment_lines=list(plan.comment_lines),
            macro_hints=list(plan.macro_hints),
            candidate_compilations=compilations,
        )


def _arch_of(path: str) -> str | None:
    parts = path.split("/")
    if parts[0] == "arch" and len(parts) >= 2:
        return parts[1]
    return None
