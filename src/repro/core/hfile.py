"""The ``.h`` file pipeline (§III-E).

A header cannot be compiled directly, so JMake selects ``.c`` files
likely to exercise the changed lines:

- files that ``#include`` the header directly;
- files that refer to the names of the changed macros (the *hints*);
- ordered: include + all hints, then all hints, then the rest;
- headers under ``arch/<d>/`` are only relevant to ``.c`` files in the
  same arch subtree or outside ``arch/`` entirely;
- when more than ``candidate_cap`` (default 100, user-configurable)
  files qualify, only allyesconfig-based configurations are used — the
  cost/false-positive trade-off §III-E measures (23 of 21012 instances).

Candidates are compiled "as though they all occurred in the same patch
but without mutations" of their own: only the header's tokens are being
hunted. Success: every header token appears in the ``.i`` of at least
one candidate that also compiles cleanly.

Like the ``.c`` pipeline, the control flow is a generator of
:class:`~repro.core.units.WorkUnit` steps; :meth:`HFileProcessor.
process` drives it inline, the check service drives it sharded.
"""

from __future__ import annotations

import posixpath
import re
from dataclasses import dataclass
from typing import Callable

from repro.core.archselect import ArchSelector
from repro.core.cfile import make_certify_unit, make_config_unit
from repro.core.mutation import MutationOverlay, MutationPlan
from repro.core.report import ArchAttempt, FileReport, FileStatus
from repro.core.units import (
    STAGE_GREP,
    STAGE_PREPROCESS,
    UnitDag,
    UnitFailure,
    UnitGenerator,
    run_units,
)
from repro.kbuild.build import BuildSystem
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.vcs.repository import Worktree

IGNORED_PREFIXES = ("Documentation/", "scripts/", "tools/")


@dataclass
class CandidateCFile:
    """A .c file that may exercise the changed header (§III-E)."""
    path: str
    includes_header: bool
    hint_count: int
    total_hints: int

    @property
    def priority(self) -> int:
        """0 best: include + all hints; 1: all hints; 2: the rest."""
        all_hints = self.total_hints > 0 and \
            self.hint_count == self.total_hints
        if self.includes_header and (all_hints or self.total_hints == 0):
            return 0
        if all_hints:
            return 1
        return 2


class HFileProcessor:
    """Drives the §III-E pipeline for one changed header."""
    def __init__(self, build_system: BuildSystem, selector: ArchSelector,
                 path_lister: Callable[[], list[str]],
                 provider: Callable[[str], "str | None"],
                 *, batch_limit: int = 50,
                 candidate_cap: int = 100,
                 tracer=None, metrics=None) -> None:
        self._build = build_system
        self._selector = selector
        self._paths = path_lister
        self._provider = provider
        self._batch_limit = max(1, batch_limit)
        self._candidate_cap = candidate_cap
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS

    # -- candidate selection ---------------------------------------------------

    def candidates_for(self, plan: MutationPlan) -> list[CandidateCFile]:
        """Includers and hint-referencing .c files, priority ordered."""
        header_path = plan.path
        basename = posixpath.basename(header_path)
        hints = plan.macro_hints
        hint_res = [re.compile(rf"\b{re.escape(hint)}\b")
                    for hint in hints]
        include_re = re.compile(
            rf'#\s*include\s+["<](?:[^">]*/)?{re.escape(basename)}[">]')

        header_arch = _arch_of(header_path)
        found: list[CandidateCFile] = []
        for path in self._paths():
            if not path.endswith(".c") or path.startswith(IGNORED_PREFIXES):
                continue
            candidate_arch = _arch_of(path)
            if header_arch is not None and candidate_arch is not None \
                    and candidate_arch != header_arch:
                continue
            text = self._provider(path)
            if text is None:
                continue
            includes = include_re.search(text) is not None
            hit_count = sum(1 for hint_re in hint_res
                            if hint_re.search(text))
            if includes or hit_count > 0:
                found.append(CandidateCFile(
                    path=path, includes_header=includes,
                    hint_count=hit_count, total_hints=len(hints)))
        found.sort(key=lambda c: (c.priority, c.path))
        return found

    # -- processing ---------------------------------------------------------------

    def process(self, worktree: Worktree, plan: MutationPlan,
                already_found: set[str],
                overlay: MutationOverlay | None = None) -> FileReport:
        """Resolve one header's remaining tokens via candidate .c files."""
        return run_units(self.iter_process(worktree, plan, already_found,
                                           overlay=overlay))

    def iter_process(self, worktree: Worktree, plan: MutationPlan,
                     already_found: set[str],
                     overlay: MutationOverlay | None = None,
                     dag: UnitDag | None = None,
                     deps: tuple[int, ...] = ()) -> UnitGenerator:
        """The unit-yielding form of :meth:`process`."""
        if dag is None:
            dag = UnitDag()
        tokens = set(plan.tokens)
        found = set(already_found) & tokens
        attempts: list[ArchAttempt] = []
        useful_archs: list[str] = []
        # "Ideal case" accounting (§V-B): count only compilations that
        # subject at least one changed header line to the compiler.
        compilations = 0
        saw_i = False

        if not tokens:
            status = FileStatus.COMMENT_ONLY if plan.comment_lines \
                else FileStatus.OK
            return FileReport(path=plan.path, status=status,
                              comment_lines=list(plan.comment_lines),
                              macro_hints=list(plan.macro_hints))
        if tokens <= found:
            return FileReport(path=plan.path, status=FileStatus.OK,
                              mutations=list(plan.mutations),
                              macro_hints=list(plan.macro_hints))

        if overlay is None:
            overlay = MutationOverlay(worktree, [plan])
        with self._tracer.span("hfile.candidate_search",
                               path=plan.path) as search_span:
            candidates = self.candidates_for(plan)
            search_span.set("candidates", len(candidates))
        self._metrics.counter("hfile.candidates").inc(len(candidates))
        allyes_only = len(candidates) > self._candidate_cap

        # Phase 1 — host allyesconfig, batched up to batch_limit files
        # per make invocation (§III-D batching applies here too: a header
        # included by many .c files is what produces the paper's large
        # .i invocations).
        host = self._build.registry.host.name
        host_config_unit = make_config_unit(dag, self._build, host,
                                            "allyesconfig", deps=deps)
        host_config = yield host_config_unit
        if isinstance(host_config, UnitFailure):
            host_config = None
        if host_config is not None:
            for start in range(0, len(candidates), self._batch_limit):
                if tokens <= found:
                    break
                chunk = candidates[start:start + self._batch_limit]
                preprocess_unit = dag.new_unit(
                    STAGE_PREPROCESS,
                    lambda chunk=chunk: self._build.make_i(
                        [candidate.path for candidate in chunk],
                        host, host_config),
                    arch=host, config_target="allyesconfig",
                    paths=tuple(candidate.path for candidate in chunk),
                    deps=(host_config_unit.unit_id,))
                results = yield preprocess_unit
                for candidate, result in zip(chunk, results):
                    attempt = ArchAttempt(arch=host,
                                          config_target="allyesconfig")
                    attempts.append(attempt)
                    self._metrics.counter("arch.attempts").inc()
                    if not result.ok:
                        attempt.error = result.error
                        continue
                    attempt.i_ok = True
                    saw_i = True
                    i_text = result.i_text or ""

                    def grep(candidate=candidate, i_text=i_text):
                        with self._tracer.span(
                                "grep.tokens",
                                path=candidate.path) as grep_span:
                            found_now = {token for token in tokens
                                         if token in i_text}
                            grep_span.set("found", len(found_now))
                        return found_now

                    grep_unit = dag.new_unit(
                        STAGE_GREP, grep, paths=(candidate.path,),
                        deps=(preprocess_unit.unit_id,))
                    found_now = yield grep_unit
                    attempt.tokens_found = found_now
                    if not found_now - found:
                        continue
                    compilations += 1
                    certified = yield make_certify_unit(
                        dag, self._build, overlay, candidate.path, host,
                        host_config, deps=(grep_unit.unit_id,))
                    if certified is True:
                        attempt.o_ok = True
                        found |= found_now
                        if host not in useful_archs:
                            useful_archs.append(host)
                    else:
                        attempt.error = certified.error

        # Phase 2 — per-candidate architecture exploration for whatever
        # the host pass could not cover.
        for candidate in candidates:
            if tokens <= found:
                break
            selection = self._selector.select(candidate.path)
            config_candidates = [
                c for c in selection.candidates
                if not (c.arch == host
                        and c.config_target == "allyesconfig")]
            if allyes_only:
                config_candidates = [c for c in config_candidates
                                     if c.config_target == "allyesconfig"]
            for config_candidate in config_candidates:
                if tokens <= found:
                    break
                attempt = ArchAttempt(
                    arch=config_candidate.arch,
                    config_target=config_candidate.config_target)
                attempts.append(attempt)
                self._metrics.counter("arch.attempts").inc()
                config_unit = make_config_unit(
                    dag, self._build, config_candidate.arch,
                    config_candidate.config_target, deps=deps)
                config = yield config_unit
                if isinstance(config, UnitFailure):
                    attempt.error = config.error
                    continue
                preprocess_unit = dag.new_unit(
                    STAGE_PREPROCESS,
                    lambda config=config, candidate=candidate:
                        self._build.make_i([candidate.path],
                                           config_candidate.arch, config),
                    arch=config_candidate.arch,
                    config_target=config_candidate.config_target,
                    paths=(candidate.path,),
                    deps=(config_unit.unit_id,))
                results = yield preprocess_unit
                result = results[0]
                if not result.ok:
                    attempt.error = result.error
                    continue
                attempt.i_ok = True
                saw_i = True
                i_text = result.i_text or ""

                def grep(candidate=candidate, i_text=i_text):
                    with self._tracer.span("grep.tokens",
                                           path=candidate.path) as grep_span:
                        found_now = {token for token in tokens
                                     if token in i_text}
                        grep_span.set("found", len(found_now))
                    return found_now

                grep_unit = dag.new_unit(
                    STAGE_GREP, grep, paths=(candidate.path,),
                    deps=(preprocess_unit.unit_id,))
                found_now = yield grep_unit
                attempt.tokens_found = found_now
                if not found_now - found:
                    continue
                compilations += 1
                # Certify: the candidate must compile against the fully
                # unmutated tree.
                certified = yield make_certify_unit(
                    dag, self._build, overlay, candidate.path,
                    config_candidate.arch, config,
                    deps=(grep_unit.unit_id,))
                if certified is True:
                    attempt.o_ok = True
                    attempt.tokens_found = found_now
                    found |= found_now
                    if config_candidate.arch not in useful_archs:
                        useful_archs.append(config_candidate.arch)
                else:
                    attempt.error = certified.error

        self._metrics.counter("tokens.found").inc(len(found))
        self._metrics.counter("tokens.missing").inc(len(tokens - found))
        if tokens <= found:
            status = FileStatus.OK
        elif candidates and not saw_i:
            status = FileStatus.I_FAILED
        else:
            # No candidate .c files at all, or candidates compiled but
            # never surfaced the remaining tokens.
            status = FileStatus.LINES_NOT_COMPILED
        return FileReport(
            path=plan.path, status=status,
            mutations=list(plan.mutations),
            missing_tokens=tokens - found,
            attempts=attempts,
            useful_archs=useful_archs,
            comment_lines=list(plan.comment_lines),
            macro_hints=list(plan.macro_hints),
            candidate_compilations=compilations,
        )


def _arch_of(path: str) -> str | None:
    parts = path.split("/")
    if parts[0] == "arch" and len(parts) >= 2:
        return parts[1]
    return None
