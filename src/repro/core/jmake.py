"""The check-session engine behind the ``repro.api`` facade.

Typical use (through the stable facade)::

    from repro import api
    result = api.check_commit(tree, repository, commit_id)
    print(result.report.render())

or, holding a session for many checks::

    session = CheckSession.from_generated_tree(tree)
    report = session.check_commit(repo, commit_id)

``check_commit`` performs the paper's per-patch protocol (§V-A): clean
the worktree (``git clean -dfx`` / ``git reset --hard``), check out the
commit's snapshot, extract the changed lines, mutate, and drive the
compile checks. ``check_patch`` is the lower-level entry for a worktree
the caller already holds; :meth:`CheckSession.worktree_for_files`
builds a throwaway single-commit worktree for VCS-less use.

Both entry points are thin drivers over ``iter_check_commit`` /
``iter_check_patch`` — generators that yield
:class:`~repro.core.units.WorkUnit` steps. The sequential wrappers run
every unit inline; the check service (:mod:`repro.service`) feeds the
same generators to per-architecture shard workers.

``JMake`` remains as a deprecated alias of :class:`CheckSession`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.buildcache.cache import BuildCache
from repro.core.archselect import ArchSelector
from repro.core.cfile import CFileProcessor
from repro.core.changes import extract_changed_files
from repro.core.hfile import HFileProcessor
from repro.core.mutation import (
    MutationEngine,
    MutationOverlay,
    MutationPlan,
)
from repro.core.report import FileReport, FileStatus, PatchReport
from repro.core.units import STAGE_MUTATE, UnitDag, UnitGenerator, run_units
from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import FaultPlan
from repro.faults.resilience import RetryPolicy
from repro.kbuild.build import BuildSystem
from repro.kbuild.timing import CostModel
from repro.obs.logcfg import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.util.rng import DeterministicRng
from repro.util.simclock import SimClock
from repro.vcs.diff import Patch
from repro.vcs.objects import Commit, Signature, Tree
from repro.vcs.repository import Repository, Worktree

_logger = get_logger("core.jmake")


@dataclass
class JMakeOptions:
    """Tunables, defaults matching the paper's prototype."""

    #: compile at most this many files per make invocation (§V-A uses 50)
    batch_limit: int = 50
    #: .h candidate-file threshold beyond which only allyesconfig is
    #: used (§III-E; user-configurable, default 100)
    hfile_candidate_cap: int = 100
    #: consider arch/<d>/configs/ defconfigs in addition to allyesconfig
    use_configs: bool = True
    #: also try allmodconfig after each allyesconfig (§VII future work;
    #: "at the cost of nearly doubling the set of configurations")
    use_allmodconfig: bool = False
    #: as a last resort, generate Vampyr/Troll-style configurations
    #: aimed at the exact blocks holding uncovered lines (§VII: "more
    #: sophisticated configuration generation techniques")
    use_targeted_configs: bool = False
    #: the developer machine's architecture (plain make tries this first)
    host: str = "x86_64"
    #: seed for the deterministic "random" defconfig choice (§III-C)
    selection_seed: int | str = "jmake"


class CheckSession:
    """One checking context: clock, cache, faults, observability."""
    def __init__(self, *, options: JMakeOptions | None = None,
                 clock: SimClock | None = None,
                 cost_model: CostModel | None = None,
                 bootstrap_paths: set[str] | None = None,
                 rebuild_trigger_paths: set[str] | None = None,
                 cache: "BuildCache | None" = None,
                 tracer=None, metrics=None,
                 fault_plan: "FaultPlan | None" = None,
                 retry_policy: "RetryPolicy | None" = None) -> None:
        self.options = options or JMakeOptions()
        self.clock = clock or SimClock()
        self.cache = cache
        #: one injector for the whole run; scope resets per patch keep
        #: fault decisions a pure function of (plan, commit)
        self.injector = FaultInjector(fault_plan) if fault_plan \
            else NULL_INJECTOR
        self.retry_policy = retry_policy
        if cache is not None and not cache.injector_pinned:
            # (re)bind unconditionally so a cache shared across runs
            # never keeps a previous run's injector alive — unless the
            # cache owner pinned an injector (the service shares one
            # cache across concurrent sessions)
            cache.injector = self.injector
        #: observability sinks; default to the shared no-op instances so
        #: un-observed runs pay nothing but an attribute lookup per site
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        if tracer is not None and tracer.enabled and \
                tracer.sim_clock is None:
            # a recording tracer reads (never charges) this clock
            tracer.sim_clock = self.clock
        self._bootstrap = set(bootstrap_paths or ())
        self._triggers = set(rebuild_trigger_paths or ())
        self._cost_model = cost_model or CostModel()
        self._engine = MutationEngine()
        #: BuildSystem of the most recent check (quarantine inspection)
        self.last_build: BuildSystem | None = None

    @classmethod
    def from_generated_tree(cls, tree, *,
                            options: JMakeOptions | None = None,
                            clock: SimClock | None = None,
                            cache: "BuildCache | None" = None,
                            tracer=None, metrics=None,
                            fault_plan: "FaultPlan | None" = None,
                            retry_policy: "RetryPolicy | None" = None
                            ) -> "CheckSession":
        """Bind bootstrap/rebuild metadata from a generated tree."""
        return cls(
            options=options,
            clock=clock,
            bootstrap_paths=tree.bootstrap_paths,
            rebuild_trigger_paths=tree.rebuild_triggers,
            cache=cache,
            tracer=tracer,
            metrics=metrics,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        )

    @staticmethod
    def worktree_for_files(files: "dict[str, str]") -> Worktree:
        """A throwaway worktree over a plain file dict (no history)."""
        repository = Repository()
        commit = repository.commit(
            Tree(files),
            Signature("jmake", "jmake@localhost", "1970-01-01T00:00:00"),
            "snapshot")
        return repository.checkout(commit)

    # -- entry points ----------------------------------------------------------

    def check_commit(self, repository: Repository,
                     commit: "Commit | str") -> PatchReport:
        """Check one commit: checkout, diff against parent, verify."""
        return run_units(self.iter_check_commit(repository, commit))

    def check_patch(self, worktree: Worktree, patch: Patch,
                    commit_id: str | None = None) -> PatchReport:
        """Check a patch against an already-checked-out worktree.

        The worktree must hold the *post-patch* state (the paper checks
        out "the snapshot of the source code resulting from applying the
        patch").
        """
        return run_units(self.iter_check_patch(worktree, patch,
                                               commit_id=commit_id))

    # -- unit-yielding pipelines -----------------------------------------------

    def iter_check_commit(self, repository: Repository,
                          commit: "Commit | str",
                          dag: UnitDag | None = None) -> UnitGenerator:
        """The unit-yielding form of :meth:`check_commit`."""
        if isinstance(commit, str):
            commit = repository.resolve(commit)
        if dag is None:
            dag = UnitDag(request_id=commit.id)
        with self.tracer.span("jmake.check_commit",
                              commit=commit.id) as span:
            with self.tracer.span("worktree.prepare"):
                worktree = repository.checkout(commit)
                worktree.clean()
                worktree.reset_hard()
            with self.tracer.span("patch.parse") as parse_span:
                patch = repository.show(commit)
                parse_span.set("files", len(patch.paths()))
            if self.cache is not None:
                # Incrementally perturb the dependency graph with the
                # diff; entries stay resident (they revive when content
                # recurs).
                self.cache.on_commit(patch.paths())
            report = yield from self.iter_check_patch(
                worktree, patch, commit_id=commit.id, dag=dag)
            # Commit-resolving checks know who wrote the patch; stamp
            # the identity so fleet-mode ingest can feed the §IV
            # janitor materialized view without a second VCS pass.
            report.author_name = commit.author.name
            report.author_email = commit.author.email
            span.set("certified", report.certified)
            _logger.debug("checked %s: certified=%s files=%d",
                          commit.id, report.certified,
                          len(report.file_reports))
            return report

    def iter_check_patch(self, worktree: Worktree, patch: Patch,
                         commit_id: str | None = None,
                         dag: UnitDag | None = None) -> UnitGenerator:
        """The unit-yielding form of :meth:`check_patch`."""
        if dag is None:
            dag = UnitDag(request_id=commit_id or "<patch>")
        clock_start = self.clock.span_count
        # New commit, fresh fault scope: attempt counters and pending
        # reports reset so decisions cannot leak across commits (or
        # depend on which worker checks which commit).
        self.injector.begin_scope(commit_id or "<patch>")
        with self.tracer.span("jmake.check_patch",
                              commit=commit_id or "<patch>") as patch_span:
            build = self._make_build_system(worktree)
            self.last_build = build
            invocations_start = len(build.invocations)
            selector = ArchSelector(
                build, worktree.paths, worktree.as_file_provider(),
                rng=DeterministicRng(self.options.selection_seed),
                use_configs=self.options.use_configs,
                tracer=self.tracer, metrics=self.metrics)

            report = PatchReport(commit_id=commit_id)

            def mutate():
                with self.tracer.span(
                        "patch.extract_changes") as extract_span:
                    changed = extract_changed_files(
                        patch, new_texts={path: worktree.read(path)
                                          for path in patch.paths()
                                          if worktree.exists(path)})
                    extract_span.set("files", len(changed))

                c_plans: list[MutationPlan] = []
                h_plans: list[MutationPlan] = []
                for record in changed:
                    if record.path in self._bootstrap:
                        report.file_reports[record.path] = FileReport(
                            path=record.path,
                            status=FileStatus.BOOTSTRAP_UNTREATABLE)
                        continue
                    if not worktree.exists(record.path):
                        continue
                    with self.tracer.span("mutation.plan",
                                          path=record.path) as plan_span:
                        plan = self._engine.plan(
                            record.path, worktree.read(record.path),
                            record.changed_lines)
                        plan_span.set("tokens", len(plan.mutations))
                    if plan.mutations:
                        self.metrics.counter("files.mutated").inc()
                        self.metrics.counter("tokens.placed").inc(
                            len(plan.mutations))
                    if record.is_c:
                        c_plans.append(plan)
                    else:
                        h_plans.append(plan)

                # Apply all mutated texts to the overlay before any .i
                # run; the same overlay object lets the processors flip
                # to the clean tree for every certification .o build.
                overlay = MutationOverlay(worktree, c_plans + h_plans)
                overlay.apply_all()
                return c_plans, h_plans, overlay

            mutate_unit = dag.new_unit(STAGE_MUTATE, mutate,
                                       paths=tuple(patch.paths()))
            c_plans, h_plans, overlay = yield mutate_unit
            deps = (mutate_unit.unit_id,)

            cfile = CFileProcessor(
                build, selector,
                batch_limit=self.options.batch_limit,
                use_allmodconfig=self.options.use_allmodconfig,
                use_targeted_configs=self.options.use_targeted_configs,
                tracer=self.tracer, metrics=self.metrics)
            with self.tracer.span("cfile.process",
                                  files=len(c_plans)) as cfile_span:
                outcome = yield from cfile.iter_process(
                    worktree, c_plans, h_plans, overlay=overlay,
                    dag=dag, deps=deps)
                cfile_span.set("header_tokens_found",
                               len(outcome.header_tokens_found))
            report.file_reports.update(outcome.reports)

            hfile = HFileProcessor(
                build, selector, worktree.paths,
                worktree.as_file_provider(),
                batch_limit=self.options.batch_limit,
                candidate_cap=self.options.hfile_candidate_cap,
                tracer=self.tracer, metrics=self.metrics)
            for plan in h_plans:
                with self.tracer.span("hfile.process",
                                      path=plan.path) as hfile_span:
                    file_report = yield from hfile.iter_process(
                        worktree, plan, outcome.header_tokens_found,
                        overlay=overlay, dag=dag, deps=deps)
                    hfile_span.set("status", file_report.status.value)
                report.file_reports[plan.path] = file_report

            worktree.reset_hard()
            report.elapsed_seconds = self.clock.elapsed_since(clock_start)
            for invocation in build.invocations[invocations_start:]:
                report.invocation_counts[invocation.kind] = \
                    report.invocation_counts.get(invocation.kind, 0) + 1
                report.invocation_durations.setdefault(
                    invocation.kind, []).append(invocation.duration)
            report.quarantined_archs = build.quarantine.archs()
            report.fault_reports = self.injector.drain_reports()
            patch_span.set("certified", report.certified)
            patch_span.set("files", len(report.file_reports))
            if report.quarantined_archs:
                patch_span.set("quarantined",
                               ",".join(report.quarantined_archs))
        self.metrics.counter("patches.checked").inc()
        if report.certified:
            self.metrics.counter("patches.certified").inc()
        if report.quarantined_archs:
            self.metrics.counter("patches.partial").inc()
        self.metrics.histogram("patch.elapsed_sim_seconds").observe(
            report.elapsed_seconds)
        return report

    # -- helpers ---------------------------------------------------------------

    def _make_build_system(self, worktree: Worktree) -> BuildSystem:
        return BuildSystem(
            worktree.as_file_provider(),
            clock=self.clock,
            cost_model=self._cost_model,
            bootstrap_paths=self._bootstrap,
            rebuild_trigger_paths=self._triggers,
            path_lister=worktree.paths,
            cache=self.cache,
            tracer=self.tracer,
            metrics=self.metrics,
            injector=self.injector,
            retry_policy=self.retry_policy,
        )


class JMake(CheckSession):
    """Deprecated pre-``repro.api`` name of :class:`CheckSession`."""

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "JMake is deprecated; use repro.api.CheckSession (or the "
            "repro.api.check_commit/check_patch helpers)",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)
