"""Structured JMake verdicts.

§III-D: "In the former case, representing success, JMake reports on the
architectures for which compilation was successful and that reduced the
number of lines remaining to be subjected to the compiler. In case of
failure, JMake returns the list of mutations that were not found, or an
indication of the other possible errors, such as no Makefile found, an
unsupported architecture required, or a failure in making the .i or .o
file."
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.core.mutation import Mutation
from repro.errors import SchemaError

#: version of the canonical serialized check/evaluation records.
#:
#: 1 — PR-3 era: no ``schema_version`` key; ``quarantined_archs`` and
#:     ``faults`` may be absent on records written before the fault
#:     layer existed.
#: 2 — adds ``schema_version`` and the explicit ``fully_checked`` flag
#:     (PARTIAL commits must not be counted as checked).
#: 3 — adds the ``journal`` block (durability metadata: the dedup key
#:     under which the verdict is emitted exactly once into the
#:     write-ahead journal).
#: 4 — fleet-mode store keys: each file entry gains ``attempts``
#:     (the per-(arch, config) trial outcomes that become
#:     ``file_verdicts`` rows in the verdict store) and the record
#:     gains a top-level ``author`` block (``{"name", "email"}`` or
#:     ``None``) feeding the §IV janitor materialized view.
SCHEMA_VERSION = 4

#: a record missing any of these was cut off mid-write (or never was a
#: check record); migration refuses it rather than guessing
_REQUIRED_KEYS = ("commit", "certified", "verdict", "files")


def _validate_record(record: dict) -> None:
    """Refuse truncated or numerically-poisoned records."""
    missing = [key for key in _REQUIRED_KEYS if key not in record]
    if missing:
        raise SchemaError(
            f"truncated record: missing required key(s) "
            f"{', '.join(missing)}")
    if not isinstance(record["files"], dict) or \
            not all(isinstance(entry, dict)
                    for entry in record["files"].values()):
        raise SchemaError(
            "record 'files' is not a mapping of per-file entries")
    elapsed = record.get("elapsed_seconds", 0.0)
    if isinstance(elapsed, float) and not math.isfinite(elapsed):
        raise SchemaError(
            f"record has non-finite elapsed_seconds ({elapsed!r}); "
            f"refusing to migrate a numerically poisoned record")


def _check_verdict_consistency(record: dict) -> None:
    """``fully_checked`` must agree with the ``PARTIAL:`` verdict.

    A quarantine verdict (``PARTIAL:<archs>``) and ``fully_checked``
    are two encodings of the same fact; a record where they disagree
    was hand-edited or corrupted, and silently trusting either side
    would let a partially checked commit masquerade as fully checked
    (or vice versa). Both orderings of the disagreement are refused.
    """
    verdict = record.get("verdict")
    fully = record.get("fully_checked")
    if not isinstance(verdict, str) or not isinstance(fully, bool):
        return
    partial = verdict.startswith("PARTIAL:")
    if partial and fully:
        raise SchemaError(
            f"inconsistent record: verdict {verdict!r} says the commit "
            f"was only partially checked but fully_checked is true")
    if not partial and not fully:
        raise SchemaError(
            f"inconsistent record: fully_checked is false but verdict "
            f"{verdict!r} carries no PARTIAL quarantine")


def migrate_record(record: dict) -> dict:
    """Upgrade a serialized :meth:`PatchReport.to_dict` record to
    :data:`SCHEMA_VERSION`.

    Unversioned (PR-3-era and older) records are treated as version 1:
    missing fault-layer keys get their empty defaults and
    ``fully_checked`` is derived from ``quarantined_archs``; version 2
    records gain the v3 ``journal`` block with its dedup key derived
    from the commit id; version 3 records gain the v4 store keys (an
    empty ``attempts`` list per file and a null ``author`` block —
    pre-fleet records never carried either). Every record — current
    version included — is validated first: truncated records (missing
    required keys), records carrying non-finite floats, and records
    whose ``fully_checked`` flag disagrees with a ``PARTIAL:<arch>``
    verdict raise :class:`~repro.errors.SchemaError`, as do unknown or
    future versions. Always returns a copy.
    """
    if not isinstance(record, dict):
        raise SchemaError(
            f"record is not an object: {type(record).__name__}")
    version = record.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) or \
            not 1 <= version <= SCHEMA_VERSION:
        raise SchemaError(
            f"cannot migrate record with schema_version={version!r} "
            f"(supported: 1..{SCHEMA_VERSION})")
    migrated = dict(record)
    _validate_record(migrated)
    if version == 1:
        migrated.setdefault("quarantined_archs", [])
        migrated.setdefault("faults", [])
        migrated["fully_checked"] = not migrated["quarantined_archs"]
        version = 2
    if version == 2:
        migrated["journal"] = {"dedup_key": migrated.get("commit")}
        version = 3
    if version == 3:
        migrated.setdefault("author", None)
        migrated["files"] = {
            path: {**entry, "attempts": list(entry.get("attempts", []))}
            for path, entry in migrated["files"].items()}
        version = 4
    _check_verdict_consistency(migrated)
    migrated["schema_version"] = SCHEMA_VERSION
    return migrated


class FileStatus(Enum):
    #: all changed lines subjected to the compiler under some config
    """Per-file verdict vocabulary (§III-D failure taxonomy)."""
    OK = "ok"
    #: changes were only in comments: nothing for the compiler to see
    COMMENT_ONLY = "comment-only"
    #: compilation succeeded somewhere but some tokens never surfaced
    LINES_NOT_COMPILED = "lines-not-compiled"
    #: no Makefile governs the file
    NO_MAKEFILE = "no-makefile"
    #: the only candidate architectures have no working cross-compiler
    UNSUPPORTED_ARCH = "unsupported-arch"
    #: every candidate failed to produce a .i file
    I_FAILED = "i-failed"
    #: tokens all surfaced, but no candidate could build the clean .o
    O_FAILED = "o-failed"
    #: the file takes part in the Makefile's own setup compilation (§V-D)
    BOOTSTRAP_UNTREATABLE = "bootstrap-untreatable"

    @property
    def is_success(self) -> bool:
        """True for OK and COMMENT_ONLY."""
        return self in (FileStatus.OK, FileStatus.COMMENT_ONLY)


@dataclass
class ArchAttempt:
    """One (architecture, configuration) trial for a file."""

    arch: str
    config_target: str
    i_ok: bool = False
    tokens_found: set[str] = field(default_factory=set)
    o_ok: bool = False
    error: str | None = None


@dataclass
class FileReport:
    """JMake's verdict for one file of one patch."""
    path: str
    status: FileStatus
    mutations: list[Mutation] = field(default_factory=list)
    #: tokens never seen in any successfully compiled configuration
    missing_tokens: set[str] = field(default_factory=set)
    attempts: list[ArchAttempt] = field(default_factory=list)
    #: architectures whose successful compilation reduced the remainder
    useful_archs: list[str] = field(default_factory=list)
    comment_lines: list[int] = field(default_factory=list)
    macro_hints: list[str] = field(default_factory=list)
    #: §VII advisory messages issued before compilation started
    advisories: list[str] = field(default_factory=list)
    #: for .h files: how many candidate .c compilations were attempted
    candidate_compilations: int = 0

    @property
    def certified(self) -> bool:
        """True when every changed line reached the compiler."""
        return self.status.is_success

    def missing_changed_lines(self) -> list[int]:
        """Changed lines whose mutation never surfaced."""
        missing = []
        for mutation in self.mutations:
            if mutation.token in self.missing_tokens:
                missing.append(mutation.line)
        return sorted(set(missing))

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"{self.path}: {self.status.value}"]
        for advisory in self.advisories:
            lines.append(f"  advisory: {advisory}")
        if self.useful_archs:
            lines.append(f"  useful architectures: "
                         f"{', '.join(self.useful_archs)}")
        if self.missing_tokens:
            lines.append("  lines not subjected to the compiler:")
            for lineno in self.missing_changed_lines():
                lines.append(f"    {self.path}:{lineno}")
        for attempt in self.attempts:
            state = "ok" if attempt.o_ok else \
                ("i-only" if attempt.i_ok else "failed")
            lines.append(f"  tried {attempt.arch}/{attempt.config_target}: "
                         f"{state}")
        return "\n".join(lines)


@dataclass
class PatchReport:
    """All file verdicts of one patch plus timing/accounting."""
    commit_id: str | None
    file_reports: dict[str, FileReport] = field(default_factory=dict)
    #: simulated seconds JMake spent on this patch
    elapsed_seconds: float = 0.0
    #: counts of build-system invocations by kind
    invocation_counts: dict[str, int] = field(default_factory=dict)
    #: per-invocation simulated durations by kind (config/make_i/make_o)
    invocation_durations: dict[str, list[float]] = field(
        default_factory=dict)
    #: architectures the per-patch circuit breaker benched: their
    #: candidates were never (fully) tried, so the verdict is PARTIAL
    quarantined_archs: list[str] = field(default_factory=list)
    #: structured records of the faults injected while checking the patch
    fault_reports: list = field(default_factory=list)
    #: patch author identity (stamped by commit-resolving callers);
    #: feeds the §IV janitor materialized view in the verdict store
    author_name: str | None = None
    author_email: str | None = None

    @property
    def certified(self) -> bool:
        """Every changed line of every file subjected to the compiler."""
        return bool(self.file_reports) and \
            all(report.certified for report in self.file_reports.values())

    @property
    def verdict(self) -> str:
        """``CERTIFIED``, ``ATTENTION REQUIRED``, or ``PARTIAL:<archs>``.

        A quarantined architecture means some candidates were never
        tried, so neither success nor failure is trustworthy: the
        explicit ``PARTIAL`` verdict tells the janitor to re-run rather
        than silently counting the commit as fully checked.
        """
        if self.quarantined_archs:
            return "PARTIAL:" + ",".join(self.quarantined_archs)
        return "CERTIFIED" if self.certified else "ATTENTION REQUIRED"

    @property
    def c_reports(self) -> dict[str, FileReport]:
        """The .c subset of file reports."""
        return {path: report for path, report in self.file_reports.items()
                if path.endswith(".c")}

    @property
    def h_reports(self) -> dict[str, FileReport]:
        """The .h subset of file reports."""
        return {path: report for path, report in self.file_reports.items()
                if path.endswith(".h")}

    def configs_tried(self) -> int:
        """Number of configuration creations this patch needed."""
        return self.invocation_counts.get("config", 0)

    def to_dict(self) -> dict:
        """A JSON-serializable view for tooling (CI bots, dashboards)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "commit": self.commit_id,
            "certified": self.certified,
            "verdict": self.verdict,
            "fully_checked": not self.quarantined_archs,
            "elapsed_seconds": self.elapsed_seconds,
            "invocations": dict(self.invocation_counts),
            "quarantined_archs": list(self.quarantined_archs),
            "faults": [report.to_dict() for report in self.fault_reports],
            # durability metadata: the key this verdict deduplicates
            # under when emitted into the write-ahead journal
            "journal": {"dedup_key": self.commit_id},
            "author": self._author_block(),
            "files": {
                path: {
                    "status": report.status.value,
                    "useful_archs": list(report.useful_archs),
                    "missing_lines": report.missing_changed_lines(),
                    "mutations": len(report.mutations),
                    "advisories": list(report.advisories),
                    # the (arch, config) trial outcomes: these become
                    # the file_verdicts rows of the verdict store
                    "attempts": [
                        {"arch": attempt.arch,
                         "config": attempt.config_target,
                         "i_ok": bool(attempt.i_ok),
                         "o_ok": bool(attempt.o_ok)}
                        for attempt in report.attempts
                    ],
                }
                for path, report in self.file_reports.items()
            },
        }

    def _author_block(self) -> dict | None:
        if self.author_name is None and self.author_email is None:
            return None
        return {"name": self.author_name, "email": self.author_email}

    def render(self) -> str:
        """Human-readable report (the tool's terminal output)."""
        header = f"JMake report for {self.commit_id or '<patch>'}: " + \
            self.verdict
        body = "\n".join(report.render()
                         for report in self.file_reports.values())
        lines = [header, body]
        for fault in self.fault_reports:
            lines.append(f"  {fault.render()}")
        lines.append(f"elapsed: {self.elapsed_seconds:.1f}s simulated, "
                     f"invocations: {self.invocation_counts}")
        return "\n".join(lines)
