"""JMake: the paper's primary contribution.

Pipeline (paper §III):

1. :mod:`repro.core.changes` — extract changed lines per file from a
   patch, with the pure-removal rule (§III-B last paragraph);
2. :mod:`repro.core.sourcemap` — classify changed lines as comment /
   macro-definition / ordinary code and locate conditional boundaries;
3. :mod:`repro.core.mutation` — place the minimal set of mutation
   tokens (§III-A/B) and produce the mutated file text;
4. :mod:`repro.core.archselect` — guess candidate architectures and
   configurations (§III-C);
5. :mod:`repro.core.cfile` / :mod:`repro.core.hfile` — drive the build
   system over candidates, grep ``.i`` output for tokens, certify with
   an unmutated ``.o`` build (§III-D/E);
6. :mod:`repro.core.report` — structured verdicts;
7. :mod:`repro.core.jmake` — the user-facing facade.
"""

from repro.core.changes import ChangedFile, extract_changed_files
from repro.core.jmake import JMake, JMakeOptions
from repro.core.mutation import MutationEngine, MutationPlan
from repro.core.report import FileReport, FileStatus, PatchReport
from repro.core.sourcemap import LineClass, SourceMap

__all__ = [
    "ChangedFile",
    "FileReport",
    "FileStatus",
    "JMake",
    "JMakeOptions",
    "LineClass",
    "MutationEngine",
    "MutationPlan",
    "PatchReport",
    "SourceMap",
    "extract_changed_files",
]
