"""Resilience policies: bounded retry/backoff and per-arch quarantine.

These are deliberately dumb data objects — the *loop* lives in
:mod:`repro.kbuild.build` where retries charge the simulated clock and
emit ``retry`` spans, and the *verdict degradation* lives in
:mod:`repro.core.report` where quarantined architectures turn a
commit's verdict into ``PARTIAL:<arch>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import SITE_CONFIG


@dataclass(frozen=True)
class RetryPolicy:
    """How often (and how patiently) a failed step is retried."""

    #: retries after the first attempt; 0 disables retrying
    max_retries: int = 2
    #: simulated seconds slept before the first retry
    backoff_base_seconds: float = 1.0
    #: multiplier applied for each further retry
    backoff_factor: float = 2.0
    #: simulated seconds a single attempt may take; None = unlimited
    step_timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries cannot be negative, got {self.max_retries!r}")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if (self.step_timeout_seconds is not None
                and self.step_timeout_seconds <= 0):
            raise ValueError("step_timeout_seconds must be positive")

    @property
    def max_attempts(self) -> int:
        """Total attempts a step gets, the first one included."""
        return 1 + self.max_retries

    def backoff_seconds(self, retry_index: int) -> float:
        """Simulated sleep before retry ``retry_index`` (0-based)."""
        return self.backoff_base_seconds * self.backoff_factor ** retry_index

    def clamp_attempt_seconds(self, seconds: float) -> float:
        """Charge for one attempt, capped at the step timeout."""
        if self.step_timeout_seconds is None:
            return seconds
        return min(seconds, self.step_timeout_seconds)


#: the retry policy un-configured pipelines run with
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class Quarantine:
    """Per-architecture circuit breaker.

    A config-site failure that exhausts its retries trips the breaker
    immediately — without a configuration nothing downstream of that
    architecture can run. Compile/preprocess failures count toward
    ``threshold`` before the arch is benched. Once an architecture is
    quarantined, further steps against it fail fast with a
    ``quarantined`` build error and the commit's verdict degrades to
    ``PARTIAL:<arch>`` instead of the whole run aborting.
    """

    #: persistent step failures an arch may accrue before quarantine
    threshold: int = 3
    _strikes: dict[str, int] = field(default_factory=dict)
    _reasons: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(
                f"threshold must be positive, got {self.threshold!r}")

    def record(self, arch: str, site: str) -> bool:
        """Record a persistent failure; True if the arch just tripped."""
        if arch in self._reasons:
            return False
        if site == SITE_CONFIG:
            self._reasons[arch] = site
            return True
        strikes = self._strikes.get(arch, 0) + 1
        self._strikes[arch] = strikes
        if strikes >= self.threshold:
            self._reasons[arch] = site
            return True
        return False

    def is_quarantined(self, arch: str) -> bool:
        """Is this architecture benched for the current scope?"""
        return arch in self._reasons

    def reason(self, arch: str) -> str:
        """The site whose failures tripped the breaker ("" if none)."""
        return self._reasons.get(arch, "")

    def archs(self) -> list[str]:
        """Quarantined architectures, sorted for stable output."""
        return sorted(self._reasons)

    def reset(self) -> None:
        """Clear all strikes and benched architectures (new commit)."""
        self._strikes.clear()
        self._reasons.clear()

    def merge(self, other: "Quarantine") -> None:
        """Fold another quarantine's strikes/benchings into this one.

        Verdict-affecting quarantine stays commit-scoped (one
        :class:`Quarantine` per BuildSystem, i.e. per patch); the check
        service merges each request's quarantine into a per-shard
        aggregate purely as an operational view — which architectures
        are flaking across traffic — never feeding it back into
        verdicts.
        """
        for arch, strikes in other._strikes.items():
            self._strikes[arch] = self._strikes.get(arch, 0) + strikes
        for arch, reason in other._reasons.items():
            self._reasons.setdefault(arch, reason)

    def note(self, arch: str, reason: str) -> None:
        """Directly bench one arch (ops aggregation, no strike logic)."""
        self._reasons.setdefault(arch, reason)
