"""The injection hook the pipeline consults at every step boundary.

One :class:`FaultInjector` is owned by a :class:`~repro.core.jmake.JMake`
instance and threaded into every :class:`~repro.kbuild.build.BuildSystem`
it creates (and into the shared :class:`~repro.buildcache.BuildCache`).
``begin_scope(commit_id)`` resets the per-key attempt counters at the
start of each checked commit, which is what makes firing decisions a
pure function of (plan, commit) — independent of worker assignment
(``--jobs``), cache hits, and observability.

Sites that can fail call :meth:`FaultInjector.fire`; a returned
:class:`~repro.faults.plan.FaultSpec` means "this attempt is doomed" and
the caller turns it into a retry, an error, or (for output-corruption
kinds like ``truncate_i``) a degraded artifact. Every firing appends a
structured :class:`FaultReport`, drained per patch into the evaluation
records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultPlan, FaultSpec, unit_draw


@dataclass(frozen=True)
class FaultReport:
    """One injected fault, as surfaced in the evaluation report."""

    kind: str
    site: str
    arch: str
    path: str
    #: the commit (or "<patch>") the fault fired under
    scope: str
    #: 1-based attempt number of the step the fault hit
    attempt: int

    def render(self) -> str:
        """One-line human-readable form."""
        where = f"{self.arch}/{self.path}" if self.arch else self.path
        return (f"fault {self.kind} at {self.site} ({where}) "
                f"attempt {self.attempt}")

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {"kind": self.kind, "site": self.site, "arch": self.arch,
                "path": self.path, "scope": self.scope,
                "attempt": self.attempt}


class FaultInjector:
    """Deterministic, seedable fault firing against a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self._scope = "<patch>"
        self._attempts: dict[tuple, int] = {}
        self._reports: list[FaultReport] = []
        #: total faults fired over the injector's lifetime (all scopes)
        self.fired_total = 0
        self._by_site = {}
        for index, spec in enumerate(self.plan.specs):
            self._by_site.setdefault(spec.site, []).append((index, spec))

    @property
    def enabled(self) -> bool:
        """True when the plan holds at least one rule."""
        return bool(self.plan)

    # -- scoping ------------------------------------------------------------

    def begin_scope(self, scope: str) -> None:
        """Reset attempt counters and pending reports for one commit."""
        self._scope = scope or "<patch>"
        self._attempts.clear()
        self._reports.clear()

    def drain_reports(self) -> list[FaultReport]:
        """Pop the faults fired since the scope began."""
        reports, self._reports = self._reports, []
        return reports

    # -- firing -------------------------------------------------------------

    def fire(self, site: str, *, arch: str = "",
             path: str = "") -> FaultSpec | None:
        """Should this (site, arch, path) attempt be faulted?

        Walks the plan's rules for the site in order; the first rule
        that matches, still has ``times`` budget for this key in this
        scope, and wins its deterministic rate draw fires. Each call
        advances the per-key attempt counters, so a retried step sees a
        fresh decision.
        """
        specs = self._by_site.get(site)
        if not specs:
            return None
        for index, spec in specs:
            if not spec.matches(site, arch, path):
                continue
            key = (index, site, arch, path)
            attempt = self._attempts.get(key, 0) + 1
            self._attempts[key] = attempt
            if attempt > spec.times:
                continue
            if spec.rate < 1.0 and unit_draw(
                    self.plan.seed, self._scope, index, site, arch, path,
                    attempt) >= spec.rate:
                continue
            self.fired_total += 1
            self._reports.append(FaultReport(
                kind=spec.kind, site=site, arch=arch, path=path,
                scope=self._scope, attempt=attempt))
            return spec
        return None


class NullInjector:
    """API-compatible injector that never fires (the default)."""

    __slots__ = ()

    plan = FaultPlan()
    fired_total = 0

    @property
    def enabled(self) -> bool:
        """False — nothing ever fires."""
        return False

    def begin_scope(self, scope: str) -> None:
        return None

    def drain_reports(self) -> list:
        return []

    def fire(self, site: str, *, arch: str = "",
             path: str = "") -> None:
        return None


#: the process-wide disabled injector un-faulted pipelines default to
NULL_INJECTOR = NullInjector()
