"""Process-level chaos: deterministic kill points for kill/resume tests.

PR 3's fault plans exercise *step*-level failures (a compile flakes, a
cache entry rots); this module models the process itself dying. A
:class:`CrashPoint` is installed as a journal append observer and
raises :class:`~repro.errors.SimulatedCrashError` once the journal has
durably recorded a chosen number of verdicts — the deterministic
analogue of ``kill -9`` at a given journal offset. Everything fsynced
before the crash point survives; everything after it is lost, exactly
like a real crash.

:func:`crash_offsets` derives a seeded, duplicate-free set of kill
offsets for a run of a known length, so a property suite can replay
"die after 3 verdicts, resume, die after 17, resume, finish" forever.
"""

from __future__ import annotations

from repro.errors import SimulatedCrashError
from repro.faults.plan import (
    KIND_NET_HALF_OPEN,
    KIND_NET_PARTITION,
    KIND_NET_SLOW,
    KIND_SOCKET_DROP,
    KIND_WORKER_HANG,
    KIND_WORKER_KILL,
    FaultPlan,
    FaultSpec,
    unit_draw,
)

__all__ = [
    "KIND_NET_HALF_OPEN",
    "KIND_NET_PARTITION",
    "KIND_NET_SLOW",
    "KIND_SOCKET_DROP",
    "KIND_WORKER_KILL",
    "CrashPoint",
    "crash_offsets",
    "transport_chaos_plan",
]


def transport_chaos_plan(seed: object, *, kill_rate: float = 0.0,
                         drop_rate: float = 0.0, hang_rate: float = 0.0,
                         partition_rate: float = 0.0,
                         slow_rate: float = 0.0,
                         half_open_rate: float = 0.0,
                         times: int | None = None) -> FaultPlan:
    """A fault plan aimed at remote shard workers.

    ``worker_kill`` hard-kills the child at assignment pickup,
    ``socket_drop`` severs its connection mid-stream, ``worker_hang``
    stalls it past the transport's hang deadline. The network kinds
    model the link rather than the process: ``net_partition`` cuts the
    connection but leaves the worker alive to reconnect, ``net_slow``
    delays the verdict without killing anything, ``net_half_open``
    leaves the socket established while the worker goes silent (only
    lease expiry catches it). All fire from the worker-site injector
    keyed by (worker slot, pickup sequence), so for a fixed dispatch
    order the chaos schedule is deterministic. Verdicts are unaffected
    either way: the assignment is requeued and re-executed from
    scratch, and every check is a pure function of (corpus, commit).
    """
    specs = []
    times = 1 if times is None else times
    if kill_rate:
        specs.append(FaultSpec(kind=KIND_WORKER_KILL, rate=kill_rate,
                               times=times))
    if drop_rate:
        specs.append(FaultSpec(kind=KIND_SOCKET_DROP, rate=drop_rate,
                               times=times))
    if hang_rate:
        specs.append(FaultSpec(kind=KIND_WORKER_HANG, rate=hang_rate,
                               times=times))
    if partition_rate:
        specs.append(FaultSpec(kind=KIND_NET_PARTITION,
                               rate=partition_rate, times=times))
    if slow_rate:
        specs.append(FaultSpec(kind=KIND_NET_SLOW, rate=slow_rate,
                               times=times))
    if half_open_rate:
        specs.append(FaultSpec(kind=KIND_NET_HALF_OPEN,
                               rate=half_open_rate, times=times))
    if not specs:
        raise ValueError("transport_chaos_plan needs at least one "
                         "non-zero rate")
    return FaultPlan(seed=str(seed), specs=specs)


class CrashPoint:
    """Kill the run once ``after_records`` journal appends landed.

    The journal calls the observer *after* each append is durable, with
    the 1-based count of records appended by this process. Raising
    there models the narrowest interesting crash window: the verdict is
    on disk, but nothing that would have happened next is.

    ``armed`` can be flipped off to let a resumed run finish (the test
    harness re-arms a fresh CrashPoint per kill cycle instead).
    """

    def __init__(self, after_records: int) -> None:
        if after_records < 1:
            raise ValueError(
                f"after_records must be positive, got {after_records!r}")
        self.after_records = after_records
        self.armed = True
        #: appends observed so far (this process)
        self.observed = 0

    def __call__(self, sequence: int) -> None:
        self.observed += 1
        if self.armed and self.observed >= self.after_records:
            raise SimulatedCrashError(
                f"simulated crash after {self.observed} journal "
                f"record(s) (offset {sequence})")


def crash_offsets(seed: object, total_records: int,
                  count: int) -> list[int]:
    """``count`` distinct seeded kill offsets in ``[1, total_records - 1]``.

    Deterministic in (seed, total_records, count); sorted ascending so
    a soak test kills earlier offsets first. ``total_records`` must
    leave room for at least one record before and after each kill.
    """
    if total_records < 2:
        raise ValueError(
            f"total_records must be at least 2, got {total_records!r}")
    span = total_records - 1
    count = min(count, span)
    offsets: set[int] = set()
    attempt = 0
    while len(offsets) < count:
        draw = unit_draw(seed, "crash-offset", total_records, attempt)
        offsets.add(1 + int(draw * span))
        attempt += 1
    return sorted(offsets)
