"""Declarative fault plans: which faults fire, where, and how often.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultSpec` rules.
Each rule names one builtin fault *kind*, the injection *site* it
applies to, optional architecture/path filters, a deterministic firing
``rate``, and ``times`` — on how many attempts per (site, arch, path)
key the rule may fire within one commit's scope. ``times=1`` models a
transient flake (the bounded-retry loop recovers on the second
attempt); ``times`` greater than the retry budget models a persistent
failure (the step errors out and the architecture may be quarantined).

Plans serialize to/from JSON for the ``jmake evaluate --fault-plan``
flag::

    {
      "seed": "storm-7",
      "faults": [
        {"kind": "preprocess_flake", "rate": 0.3},
        {"kind": "config_fail", "arch": "arm", "times": 5},
        {"kind": "compile_timeout", "path": "drivers/", "rate": 0.1}
      ]
    }

Every field is validated eagerly; malformed plans raise
:class:`~repro.errors.FaultPlanError` before any commit is checked.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import FaultPlanError

# -- builtin fault kinds ----------------------------------------------------

#: ``make *config`` fails outright (a broken arch Makefile, say)
KIND_CONFIG_FAIL = "config_fail"
#: one ``make file.i`` flakes (NFS hiccup, OOM-killed cc1 -E)
KIND_PREPROCESS_FLAKE = "preprocess_flake"
#: ``make file.o`` hangs until the step timeout expires
KIND_COMPILE_TIMEOUT = "compile_timeout"
#: the ``.i`` file is written but cut short (full disk, torn write)
KIND_TRUNCATE_I = "truncate_i"
#: the persistent cache pickle (or an in-memory entry) is rotten
KIND_CACHE_CORRUPT = "cache_corrupt"
#: a transient I/O error at any step boundary
KIND_IO_ERROR = "io_error"

# -- process-level fault kinds (PR 5 chaos vocabulary) ----------------------

#: a shard worker dies at job pickup (OOM kill, segfault, host loss);
#: the claimed unit never ran and must be requeued by the supervisor
KIND_WORKER_CRASH = "worker_crash"
#: a shard worker stalls holding its claimed unit (livelock, NFS hang)
#: until the supervisor's hang deadline expires
KIND_WORKER_HANG = "worker_hang"
#: a journal append is cut short mid-frame (power loss, full disk) —
#: replay must truncate the torn tail and continue
KIND_TORN_JOURNAL_WRITE = "torn_journal_write"

# -- transport-level fault kinds (PR 8 chaos vocabulary) --------------------

#: a remote shard worker process is hard-killed (SIGKILL, OOM) after
#: claiming an assignment; the transport monitor must detect the dead
#: child and requeue the in-flight work
KIND_WORKER_KILL = "worker_kill"
#: a worker's connection drops mid-stream (peer reset, half-close);
#: a dropped socket is just another shard crash to the supervisor
KIND_SOCKET_DROP = "socket_drop"

# -- network-level fault kinds (PR 10 fleet chaos vocabulary) ----------------

#: the link between worker and coordinator partitions: the worker's
#: socket goes away but the *process* survives and reconnects once the
#: partition heals; the coordinator must requeue and later accept the
#: worker back under a fresh lease epoch
KIND_NET_PARTITION = "net_partition"
#: the link degrades (bufferbloat, saturated uplink): frames still
#: arrive but each assignment is served noticeably late; heartbeats
#: must keep the lease alive so slowness is not misread as death
KIND_NET_SLOW = "net_slow"
#: the connection half-opens: the TCP session looks established to the
#: coordinator but the worker stops sending anything — no verdicts, no
#: heartbeats. Only lease expiry can detect this state.
KIND_NET_HALF_OPEN = "net_half_open"

# -- injection sites --------------------------------------------------------

SITE_CONFIG = "config"            # BuildSystem.make_config
SITE_PREPROCESS = "preprocess"    # BuildSystem.make_i, per file
SITE_COMPILE = "compile"          # BuildSystem.make_o
SITE_CACHE_LOAD = "cache_load"    # BuildCache probes + BuildCache.load
SITE_CACHE_STORE = "cache_store"  # BuildCache stores + BuildCache.save
SITE_WORKER = "worker"            # shard worker job pickup
SITE_JOURNAL_APPEND = "journal_append"  # Journal.append frame write

INJECTION_SITES = (SITE_CONFIG, SITE_PREPROCESS, SITE_COMPILE,
                   SITE_CACHE_LOAD, SITE_CACHE_STORE, SITE_WORKER,
                   SITE_JOURNAL_APPEND)

#: the in-pipeline sites (step + cache) a sequential check consults
PIPELINE_SITES = (SITE_CONFIG, SITE_PREPROCESS, SITE_COMPILE,
                  SITE_CACHE_LOAD, SITE_CACHE_STORE)

#: the verdict-neutral process-level sites: faults here may only delay
#: or re-route work (supervisor requeue, journal tail truncation),
#: never change what a commit's record says
PROCESS_SITES = (SITE_WORKER, SITE_JOURNAL_APPEND)

#: sites each kind may legally be injected at; the first is the default
_KIND_SITES: dict[str, tuple[str, ...]] = {
    KIND_CONFIG_FAIL: (SITE_CONFIG,),
    KIND_PREPROCESS_FLAKE: (SITE_PREPROCESS,),
    KIND_COMPILE_TIMEOUT: (SITE_COMPILE,),
    KIND_TRUNCATE_I: (SITE_PREPROCESS,),
    KIND_CACHE_CORRUPT: (SITE_CACHE_LOAD,),
    KIND_IO_ERROR: (SITE_CONFIG, SITE_PREPROCESS, SITE_COMPILE,
                    SITE_CACHE_LOAD, SITE_CACHE_STORE),
    KIND_WORKER_CRASH: (SITE_WORKER,),
    KIND_WORKER_HANG: (SITE_WORKER,),
    KIND_WORKER_KILL: (SITE_WORKER,),
    KIND_SOCKET_DROP: (SITE_WORKER,),
    KIND_NET_PARTITION: (SITE_WORKER,),
    KIND_NET_SLOW: (SITE_WORKER,),
    KIND_NET_HALF_OPEN: (SITE_WORKER,),
    KIND_TORN_JOURNAL_WRITE: (SITE_JOURNAL_APPEND,),
}

BUILTIN_KINDS = tuple(_KIND_SITES)

#: default simulated seconds one failed attempt burns before the error
#: surfaces (a timeout burns the step-timeout budget instead, when set).
#: Process-level kinds charge nothing: they stall or kill the *worker*,
#: not the simulated step, so verdict-bearing timings stay untouched.
_DEFAULT_COST_SECONDS = {
    KIND_CONFIG_FAIL: 2.0,
    KIND_PREPROCESS_FLAKE: 3.0,
    KIND_COMPILE_TIMEOUT: 30.0,
    KIND_TRUNCATE_I: 0.0,
    KIND_CACHE_CORRUPT: 0.0,
    KIND_IO_ERROR: 1.0,
    KIND_WORKER_CRASH: 0.0,
    KIND_WORKER_HANG: 0.0,
    KIND_WORKER_KILL: 0.0,
    KIND_SOCKET_DROP: 0.0,
    KIND_NET_PARTITION: 0.0,
    KIND_NET_SLOW: 0.0,
    KIND_NET_HALF_OPEN: 0.0,
    KIND_TORN_JOURNAL_WRITE: 0.0,
}


def valid_kind_sites() -> list[tuple[str, str]]:
    """Every legal (kind, site) combination — the fault-matrix axis."""
    return [(kind, site) for kind in BUILTIN_KINDS
            for site in _KIND_SITES[kind]]


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule of a plan."""

    kind: str
    #: injection site; "" means the kind's default site
    site: str = ""
    #: architecture filter; "*" matches every architecture
    arch: str = "*"
    #: substring filter on the step's path/target; "" matches everything
    path: str = ""
    #: deterministic firing probability per eligible attempt, in [0, 1]
    rate: float = 1.0
    #: fire on at most the first N attempts per key per commit scope
    times: int = 1
    #: simulated seconds one failed attempt charges (None = kind default)
    cost_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KIND_SITES:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; builtin kinds: "
                f"{', '.join(BUILTIN_KINDS)}")
        site = self.site or _KIND_SITES[self.kind][0]
        if site not in _KIND_SITES[self.kind]:
            raise FaultPlanError(
                f"fault kind {self.kind!r} cannot be injected at site "
                f"{site!r} (legal: {', '.join(_KIND_SITES[self.kind])})")
        object.__setattr__(self, "site", site)
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(
                f"rate must be in [0, 1], got {self.rate!r}")
        if self.times < 1:
            raise FaultPlanError(
                f"times must be a positive integer, got {self.times!r}")
        if self.cost_seconds is not None and self.cost_seconds < 0:
            raise FaultPlanError(
                f"cost_seconds cannot be negative, got {self.cost_seconds!r}")

    @property
    def attempt_cost_seconds(self) -> float:
        """Simulated seconds one failed attempt burns."""
        if self.cost_seconds is not None:
            return self.cost_seconds
        return _DEFAULT_COST_SECONDS[self.kind]

    def matches(self, site: str, arch: str, path: str) -> bool:
        """Does this rule apply to one (site, arch, path) step identity?"""
        if site != self.site:
            return False
        if self.arch not in ("*", "") and arch != self.arch:
            return False
        return not self.path or self.path in path

    def to_dict(self) -> dict:
        """JSON-ready form (defaults omitted)."""
        record: dict = {"kind": self.kind, "site": self.site}
        if self.arch != "*":
            record["arch"] = self.arch
        if self.path:
            record["path"] = self.path
        if self.rate != 1.0:
            record["rate"] = self.rate
        if self.times != 1:
            record["times"] = self.times
        if self.cost_seconds is not None:
            record["cost_seconds"] = self.cost_seconds
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FaultSpec":
        """Build and validate one rule from a JSON object."""
        if not isinstance(record, dict):
            raise FaultPlanError(
                f"each fault must be a JSON object, got {type(record).__name__}")
        unknown = set(record) - {"kind", "site", "arch", "path", "rate",
                                 "times", "cost_seconds"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault fields: {', '.join(sorted(unknown))}")
        if "kind" not in record:
            raise FaultPlanError("each fault needs a 'kind'")
        try:
            return cls(
                kind=record["kind"],
                site=record.get("site", ""),
                arch=record.get("arch", "*"),
                path=record.get("path", ""),
                rate=float(record.get("rate", 1.0)),
                times=int(record.get("times", 1)),
                cost_seconds=record.get("cost_seconds"),
            )
        except (TypeError, ValueError) as error:
            raise FaultPlanError(f"malformed fault rule: {error}") from error


@dataclass
class FaultPlan:
    """A seed plus an ordered list of fault rules."""

    seed: int | str = 0
    specs: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.specs = list(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def specs_for_site(self, site: str) -> list[tuple[int, FaultSpec]]:
        """(rule index, rule) pairs whose site matches, in plan order."""
        return [(index, spec) for index, spec in enumerate(self.specs)
                if spec.site == site]

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.specs]}

    def dumps(self) -> str:
        """Serialize to the ``--fault-plan`` JSON format."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Build and validate a plan from a parsed JSON object."""
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"a fault plan must be a JSON object, "
                f"got {type(payload).__name__}")
        unknown = set(payload) - {"seed", "faults"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan fields: {', '.join(sorted(unknown))}")
        faults = payload.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("'faults' must be a JSON array")
        return cls(seed=payload.get("seed", 0),
                   specs=[FaultSpec.from_dict(record) for record in faults])

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"invalid fault-plan JSON: {error}") \
                from error
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Parse a plan from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise FaultPlanError(
                f"cannot read fault plan {path}: {error}") from error
        return cls.loads(text)


def unit_draw(*identity: object) -> float:
    """A deterministic pseudo-uniform draw in [0, 1) from an identity.

    The same hashing scheme the cost model uses: decisions replay
    identically for a given (seed, scope, step, attempt) no matter how
    commits are distributed over workers.
    """
    digest = hashlib.sha256(
        ":".join(str(part) for part in identity).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64
