"""Deterministic fault injection for the JMake pipeline (dependability).

The paper's thesis is that a janitor must be able to *trust* JMake's
verdict (§III-D); this package provides the machinery to prove the
pipeline earns that trust when the substrate misbehaves:

- :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultSpec`, a
  seedable, declarative description of which faults fire where;
- :mod:`repro.faults.inject` — :class:`FaultInjector`, the hook the
  build system and cache consult at every step boundary, plus the
  structured :class:`FaultReport` records a run emits;
- :mod:`repro.faults.resilience` — :class:`RetryPolicy` (bounded,
  sim-clock-charged exponential backoff) and :class:`Quarantine` (the
  per-architecture circuit breaker behind ``PARTIAL:<arch>`` verdicts);
- :mod:`repro.faults.chaos` — the process-level chaos harness: seeded
  crash points (kill a run at a chosen journal offset) backing the
  kill/resume differential suites.

Every decision is a pure function of (plan seed, commit scope, step
identity, attempt number), so an injected run is exactly reproducible
across ``--jobs`` values, cache on/off, and observability on/off.
Process-level kinds (``worker_crash``, ``worker_hang``,
``torn_journal_write``) extend the same determinism to kill/restart
cycles: they are keyed by (shard, pickup sequence) or (journal,
append sequence), never by wall-clock time.
"""

from repro.faults.chaos import CrashPoint, crash_offsets
from repro.faults.inject import (
    FaultInjector,
    FaultReport,
    NULL_INJECTOR,
    NullInjector,
)
from repro.faults.plan import (
    BUILTIN_KINDS,
    FaultPlan,
    FaultSpec,
    INJECTION_SITES,
    KIND_CACHE_CORRUPT,
    KIND_COMPILE_TIMEOUT,
    KIND_CONFIG_FAIL,
    KIND_IO_ERROR,
    KIND_PREPROCESS_FLAKE,
    KIND_TORN_JOURNAL_WRITE,
    KIND_TRUNCATE_I,
    KIND_WORKER_CRASH,
    KIND_WORKER_HANG,
    PIPELINE_SITES,
    PROCESS_SITES,
    SITE_CACHE_LOAD,
    SITE_CACHE_STORE,
    SITE_COMPILE,
    SITE_CONFIG,
    SITE_JOURNAL_APPEND,
    SITE_PREPROCESS,
    SITE_WORKER,
    valid_kind_sites,
)
from repro.faults.resilience import Quarantine, RetryPolicy

__all__ = [
    "BUILTIN_KINDS",
    "CrashPoint",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "INJECTION_SITES",
    "KIND_CACHE_CORRUPT",
    "KIND_COMPILE_TIMEOUT",
    "KIND_CONFIG_FAIL",
    "KIND_IO_ERROR",
    "KIND_PREPROCESS_FLAKE",
    "KIND_TORN_JOURNAL_WRITE",
    "KIND_TRUNCATE_I",
    "KIND_WORKER_CRASH",
    "KIND_WORKER_HANG",
    "NULL_INJECTOR",
    "NullInjector",
    "PIPELINE_SITES",
    "PROCESS_SITES",
    "Quarantine",
    "RetryPolicy",
    "SITE_CACHE_LOAD",
    "SITE_CACHE_STORE",
    "SITE_COMPILE",
    "SITE_CONFIG",
    "SITE_JOURNAL_APPEND",
    "SITE_PREPROCESS",
    "SITE_WORKER",
    "crash_offsets",
    "valid_kind_sites",
]
