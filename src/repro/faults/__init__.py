"""Deterministic fault injection for the JMake pipeline (dependability).

The paper's thesis is that a janitor must be able to *trust* JMake's
verdict (§III-D); this package provides the machinery to prove the
pipeline earns that trust when the substrate misbehaves:

- :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultSpec`, a
  seedable, declarative description of which faults fire where;
- :mod:`repro.faults.inject` — :class:`FaultInjector`, the hook the
  build system and cache consult at every step boundary, plus the
  structured :class:`FaultReport` records a run emits;
- :mod:`repro.faults.resilience` — :class:`RetryPolicy` (bounded,
  sim-clock-charged exponential backoff) and :class:`Quarantine` (the
  per-architecture circuit breaker behind ``PARTIAL:<arch>`` verdicts).

Every decision is a pure function of (plan seed, commit scope, step
identity, attempt number), so an injected run is exactly reproducible
across ``--jobs`` values, cache on/off, and observability on/off.
"""

from repro.faults.inject import (
    FaultInjector,
    FaultReport,
    NULL_INJECTOR,
    NullInjector,
)
from repro.faults.plan import (
    BUILTIN_KINDS,
    FaultPlan,
    FaultSpec,
    INJECTION_SITES,
    KIND_CACHE_CORRUPT,
    KIND_COMPILE_TIMEOUT,
    KIND_CONFIG_FAIL,
    KIND_IO_ERROR,
    KIND_PREPROCESS_FLAKE,
    KIND_TRUNCATE_I,
    SITE_CACHE_LOAD,
    SITE_CACHE_STORE,
    SITE_COMPILE,
    SITE_CONFIG,
    SITE_PREPROCESS,
    valid_kind_sites,
)
from repro.faults.resilience import Quarantine, RetryPolicy

__all__ = [
    "BUILTIN_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "INJECTION_SITES",
    "KIND_CACHE_CORRUPT",
    "KIND_COMPILE_TIMEOUT",
    "KIND_CONFIG_FAIL",
    "KIND_IO_ERROR",
    "KIND_PREPROCESS_FLAKE",
    "KIND_TRUNCATE_I",
    "NULL_INJECTOR",
    "NullInjector",
    "Quarantine",
    "RetryPolicy",
    "SITE_CACHE_LOAD",
    "SITE_CACHE_STORE",
    "SITE_COMPILE",
    "SITE_CONFIG",
    "SITE_PREPROCESS",
    "valid_kind_sites",
]
