"""Telemetry sinks: OpenMetrics exposition, append-only JSONL, callbacks.

A *sink* is anything with ``emit(record) -> bool`` taking the
serialized dict form of a :class:`~repro.obs.timeseries.MetricsSnapshot`
or an :class:`~repro.obs.events.Event`. Three implementations cover the
fleet-mode needs:

- :class:`OpenMetricsSink` — rewrites one Prometheus/OpenMetrics text
  exposition file atomically (:mod:`repro.util.atomicio`) per snapshot,
  so a scraper polling the path always reads a complete, parseable
  exposition — never a torn half-write. :func:`render_openmetrics` /
  :func:`parse_openmetrics` are the (round-trippable) codec.

- :class:`JsonlSink` — append-only JSON-lines history for dashboard
  ingestion, with **journal-style resume semantics**: opening an
  existing file replays it, truncates any torn tail (a crash mid-append
  leaves a partial last line), and records the highest ``seq`` seen.
  ``emit`` then skips records at or below that watermark, so a
  restarted service resuming its sequence numbers can never duplicate
  a line — the exactly-once contract the verdict ledger gives verdicts,
  applied to telemetry.

- :class:`CallbackSink` — hands each record to an in-process callable;
  the test hook, and the integration point for embedding services.

Metric names cross into OpenMetrics through :func:`sanitize_metric_name`
(dots become underscores under a ``jmake_`` prefix). The mapping is not
invertible, so comparisons against a registry go through
:func:`sanitized_metrics`, which applies the same mapping to a
``MetricsRegistry.to_dict`` payload.
"""

from __future__ import annotations

import errno
import json
import os
import re
from typing import Any, Callable

from repro.util.atomicio import atomic_write_text

#: characters legal in an OpenMetrics metric name body
_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

#: exposition prefix all jmake metrics share
METRIC_PREFIX = "jmake_"


def sanitize_metric_name(name: str) -> str:
    """Dotted instrument name -> legal OpenMetrics name."""
    return METRIC_PREFIX + _NAME_OK.sub("_", name)


def sanitized_metrics(payload: dict) -> dict:
    """A ``MetricsRegistry.to_dict`` payload with exposition names.

    Sanitization can collide (``a.b`` and ``a_b`` both map to
    ``jmake_a_b``); the last name in sorted order wins, matching what a
    scraper of the rendered exposition would observe.
    """
    return {
        section: {sanitize_metric_name(name): value
                  for name, value in payload.get(section, {}).items()}
        for section in ("counters", "gauges", "histograms")
    }


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# -- OpenMetrics codec --------------------------------------------------------

def render_openmetrics(snapshot_record: dict) -> str:
    """One snapshot record -> OpenMetrics text exposition.

    Counters expose ``<name>_total``, gauges expose bare samples,
    histograms expose cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``. Two meta gauges (``jmake_snapshot_seq``,
    ``jmake_snapshot_timestamp_seconds``) carry the snapshot identity,
    and the exposition ends with the mandatory ``# EOF``.
    """
    metrics = snapshot_record["metrics"]
    lines: list[str] = []

    def emit_meta(name: str, value: Any) -> None:
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")

    emit_meta("jmake_snapshot_seq", snapshot_record["seq"])
    emit_meta("jmake_snapshot_timestamp_seconds", snapshot_record["ts"])

    for name in sorted(metrics.get("counters", {})):
        exposition = sanitize_metric_name(name)
        lines.append(f"# TYPE {exposition} counter")
        lines.append(f"{exposition}_total "
                     f"{_format_value(metrics['counters'][name])}")
    for name in sorted(metrics.get("gauges", {})):
        exposition = sanitize_metric_name(name)
        lines.append(f"# TYPE {exposition} gauge")
        lines.append(f"{exposition} "
                     f"{_format_value(metrics['gauges'][name])}")
    for name in sorted(metrics.get("histograms", {})):
        data = metrics["histograms"][name]
        exposition = sanitize_metric_name(name)
        lines.append(f"# TYPE {exposition} histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(f'{exposition}_bucket{{le="{bound}"}} '
                         f"{cumulative}")
        lines.append(f'{exposition}_bucket{{le="+Inf"}} '
                     f"{data['count']}")
        lines.append(f"{exposition}_sum {_format_value(data['sum'])}")
        lines.append(f"{exposition}_count {data['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_number(text: str) -> float | int:
    try:
        return int(text)
    except ValueError:
        return float(text)


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)'
    r'(?:\{le="(?P<le>[^"]+)"\})?'
    r'\s+(?P<value>\S+)$')


def parse_openmetrics(text: str) -> dict:
    """Exposition text -> ``{counters, gauges, histograms}`` payload.

    The inverse of :func:`render_openmetrics` over sanitized names:
    ``parse_openmetrics(render_openmetrics(s)) ==
    sanitized_metrics(s["metrics"])`` plus the two snapshot meta
    gauges. Raises ``ValueError`` on malformed lines, a missing
    ``# EOF``, or non-monotone bucket series — which is what makes it a
    usable CI validator for scrape files.
    """
    types: dict[str, str] = {}
    counters: dict[str, Any] = {}
    gauges: dict[str, Any] = {}
    raw_histograms: dict[str, dict] = {}
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition does not end with # EOF")
    for line in lines[:-1]:
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
                continue
            if parts[1] in ("HELP", "UNIT"):
                continue
            raise ValueError(f"malformed comment line: {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        name = match.group("name")
        value = _parse_number(match.group("value"))
        le = match.group("le")
        base = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                base = name[:-len(suffix)]
                break
        kind = types.get(base)
        if kind is None:
            raise ValueError(f"sample {name!r} has no # TYPE line")
        if kind == "counter":
            counters[base] = value
        elif kind == "gauge":
            gauges[base] = value
        elif kind == "histogram":
            slot = raw_histograms.setdefault(
                base, {"buckets": [], "cumulative": [],
                       "sum": 0, "count": 0, "inf": None})
            if name.endswith("_bucket"):
                if le is None:
                    raise ValueError(f"bucket sample without le: {line!r}")
                if le == "+Inf":
                    slot["inf"] = value
                else:
                    slot["buckets"].append(_parse_number(le))
                    slot["cumulative"].append(value)
            elif name.endswith("_sum"):
                slot["sum"] = value
            elif name.endswith("_count"):
                slot["count"] = value
            else:
                raise ValueError(f"unexpected histogram sample: {line!r}")
        else:
            raise ValueError(f"unsupported metric type {kind!r}")

    histograms: dict[str, dict] = {}
    for base, slot in raw_histograms.items():
        cumulative = slot["cumulative"]
        counts = []
        previous = 0
        for value in cumulative:
            if value < previous:
                raise ValueError(
                    f"histogram {base}: non-monotone bucket series")
            counts.append(value - previous)
            previous = value
        total = slot["count"] if slot["inf"] is None else slot["inf"]
        if total < previous:
            raise ValueError(
                f"histogram {base}: +Inf below last finite bucket")
        counts.append(total - previous)
        histograms[base] = {
            "buckets": slot["buckets"],
            "counts": counts,
            "sum": slot["sum"],
            "count": slot["count"],
        }
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


# -- sinks --------------------------------------------------------------------

class CallbackSink:
    """Hands each record to an in-process callable (the test hook)."""

    def __init__(self, callback: Callable[[dict], Any]) -> None:
        self.callback = callback
        self.emitted = 0

    def emit(self, record: dict) -> bool:
        self.callback(record)
        self.emitted += 1
        return True

    def close(self) -> None:
        return None


class OpenMetricsSink:
    """Atomically rewrites one OpenMetrics exposition file per snapshot.

    Only meaningful for snapshot records (events have no metrics
    payload and are ignored), so one sink instance can be attached to
    both streams without special-casing at the emit sites.
    """

    def __init__(self, path: str) -> None:
        # fail at construction, not at the first sample minutes later:
        # the atomic write needs the parent directory for its tempfile
        parent = os.path.dirname(os.path.abspath(path))
        if not os.path.isdir(parent):
            raise FileNotFoundError(
                errno.ENOENT,
                f"sink directory does not exist: {parent}", path)
        self.path = path
        self.writes = 0

    def emit(self, record: dict) -> bool:
        if "metrics" not in record:
            return False
        # fsync=False: losing the very last exposition to a power cut
        # is harmless (the next sample rewrites it); atomicity against
        # concurrent scrapers is what matters, and os.replace gives it
        atomic_write_text(self.path, render_openmetrics(record),
                          fsync=False)
        self.writes += 1
        return True

    def close(self) -> None:
        return None


class JsonlSink:
    """Append-only JSONL with torn-tail truncation and seq dedup."""

    def __init__(self, path: str, *, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        #: highest ``seq`` already durable in the file (the dedup
        #: watermark; also the ``start_seq`` a resumed emitter should
        #: continue from)
        self.last_seq = 0
        self.lines_recovered = 0
        self.torn_bytes_truncated = 0
        self.duplicates_skipped = 0
        self.appended = 0
        self._recover()
        self._handle = open(self.path, "a", encoding="utf-8")

    def _recover(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        valid_end = 0
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                break  # unterminated tail
            line = data[offset:newline]
            try:
                record = json.loads(line)
            except (UnicodeDecodeError, json.JSONDecodeError):
                break  # corrupt line: everything after it is suspect
            seq = record.get("seq") if isinstance(record, dict) else None
            if isinstance(seq, int):
                self.last_seq = max(self.last_seq, seq)
            self.lines_recovered += 1
            offset = valid_end = newline + 1
        if valid_end < len(data):
            self.torn_bytes_truncated = len(data) - valid_end
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)

    def emit(self, record: dict) -> bool:
        """Append one record; False when its seq was already durable."""
        seq = record.get("seq")
        if isinstance(seq, int) and seq <= self.last_seq:
            self.duplicates_skipped += 1
            return False
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        if isinstance(seq, int):
            self.last_seq = seq
        self.appended += 1
        return True

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: str) -> list[dict]:
    """Every valid record in a JSONL file (torn tail skipped)."""
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break
    except FileNotFoundError:
        pass
    return records
