"""Zero-dependency pipeline observability: spans, metrics, exporters.

Three layers, all optional and all no-op-cheap when disabled:

- :mod:`repro.obs.tracer` — hierarchical context-manager spans over the
  simulated *and* the wall clock; :data:`NULL_TRACER` when off;
- :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms with the snapshot/merge/delta
  algebra the parallel runner needs; :data:`NULL_METRICS` when off;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable)
  and a plain-text span-tree renderer;
- :mod:`repro.obs.timeseries` — the periodic snapshotter: bounded ring
  of schema-versioned metric snapshots with monotone sequence numbers
  and percentile summaries;
- :mod:`repro.obs.sinks` — OpenMetrics exposition, append-only JSONL
  with journal-style dedup, and in-process callback sinks;
- :mod:`repro.obs.events` — the typed structured-event log (shard
  crashes, breaker opens, rejections, quarantine trips, ...);
  :data:`NULL_EVENTS` when off;
- :mod:`repro.obs.logcfg` — the ``repro.*`` logger hierarchy behind the
  CLI's ``--log-level``.

Instrumentation reads the simulated clock but never charges it, so
enabling tracing cannot perturb any table or figure.
"""

from repro.obs.events import (
    EVENT_KINDS,
    NULL_EVENTS,
    Event,
    EventLog,
    NullEventLog,
    validate_event_record,
)
from repro.obs.export import (
    chrome_trace,
    render_span_tree,
    span_count,
    write_chrome_trace,
)
from repro.obs.logcfg import configure_logging, get_logger
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.sinks import (
    CallbackSink,
    JsonlSink,
    OpenMetricsSink,
    parse_openmetrics,
    read_jsonl,
    render_openmetrics,
    sanitize_metric_name,
    sanitized_metrics,
)
from repro.obs.timeseries import (
    MetricsSnapshot,
    SnapshotRing,
    Snapshotter,
    histogram_quantiles,
    registry_from_dict,
    validate_snapshot_record,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "EVENT_KINDS",
    "NULL_EVENTS",
    "NULL_METRICS",
    "NULL_TRACER",
    "CallbackSink",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullEventLog",
    "NullMetricsRegistry",
    "NullTracer",
    "OpenMetricsSink",
    "SnapshotRing",
    "Snapshotter",
    "Span",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "get_logger",
    "histogram_quantiles",
    "parse_openmetrics",
    "read_jsonl",
    "registry_from_dict",
    "render_openmetrics",
    "render_span_tree",
    "sanitize_metric_name",
    "sanitized_metrics",
    "span_count",
    "validate_event_record",
    "validate_snapshot_record",
    "write_chrome_trace",
]
