"""Zero-dependency pipeline observability: spans, metrics, exporters.

Three layers, all optional and all no-op-cheap when disabled:

- :mod:`repro.obs.tracer` — hierarchical context-manager spans over the
  simulated *and* the wall clock; :data:`NULL_TRACER` when off;
- :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms with the snapshot/merge/delta
  algebra the parallel runner needs; :data:`NULL_METRICS` when off;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable)
  and a plain-text span-tree renderer;
- :mod:`repro.obs.logcfg` — the ``repro.*`` logger hierarchy behind the
  CLI's ``--log-level``.

Instrumentation reads the simulated clock but never charges it, so
enabling tracing cannot perturb any table or figure.
"""

from repro.obs.export import (
    chrome_trace,
    render_span_tree,
    span_count,
    write_chrome_trace,
)
from repro.obs.logcfg import configure_logging, get_logger
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_METRICS",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "get_logger",
    "render_span_tree",
    "span_count",
    "write_chrome_trace",
]
