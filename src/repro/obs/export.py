"""Span-tree exporters: Chrome trace-event JSON and plain text.

:func:`chrome_trace` turns serialized span trees (the plain dicts
:meth:`repro.obs.tracer.Span.to_dict` produces) into the Chrome
trace-event format that ``chrome://tracing`` and Perfetto load
directly: one complete (``"ph": "X"``) event per span, timestamps in
microseconds of *simulated* time.

Determinism: the export uses only simulated times and span attributes —
never wall-clock values — and lays trees out sorted by commit index,
so two runs over the same corpus produce byte-identical JSON for any
``--jobs`` value. Each tree becomes one Perfetto track: ``pid`` is the
worker lane that checked the commit, ``tid`` is the commit index, and
simulated times are rebased per tree (every verdict's trace starts at
0, as if checked alone — which, being a pure function of (corpus,
commit), it behaviorally was).

:func:`render_span_tree` is the human-facing renderer behind
``jmake trace <commit>``; it *does* show wall-clock durations, since a
terminal reading is not a stability surface.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: span-tree dict keys the chrome exporter does not copy into args
_STRUCTURAL_KEYS = ("name", "status", "sim_start", "sim_duration",
                    "wall_start", "wall_duration", "children",
                    "error_type", "attributes")


def _tree_events(tree: dict, pid: int, tid: int,
                 events: "list[dict]") -> None:
    args: dict[str, Any] = dict(tree.get("attributes", ()))
    args["status"] = tree["status"]
    if "error_type" in tree:
        args["error_type"] = tree["error_type"]
    events.append({
        "name": tree["name"],
        "cat": tree["name"].split(".", 1)[0],
        "ph": "X",
        "ts": round(tree["sim_start"] * 1e6, 3),
        "dur": round(tree["sim_duration"] * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    })
    for child in tree.get("children", ()):
        _tree_events(child, pid, tid, events)


def chrome_trace(trees: Iterable[dict]) -> dict:
    """Chrome trace-event JSON (as a dict) for serialized span trees.

    Each tree may carry ``worker`` (lane) and ``commit.index``
    attributes, set by the evaluation runner; trees are emitted sorted
    by commit index so output is stable however workers raced.
    """
    ordered = sorted(
        trees, key=lambda tree: (
            tree.get("attributes", {}).get("commit.index", 0),
            tree.get("name", "")))
    events: list[dict] = []
    lanes_seen: set[int] = set()
    for tree in ordered:
        attributes = tree.get("attributes", {})
        pid = attributes.get("worker", 0)
        tid = attributes.get("commit.index", 0)
        if pid not in lanes_seen:
            lanes_seen.add(pid)
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"worker {pid}"}})
        commit = attributes.get("commit", "")
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"commit {tid}"
                     + (f" ({commit})" if commit else "")}})
        _tree_events(tree, pid, tid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, trees: Iterable[dict]) -> int:
    """Write the Chrome trace JSON crash-atomically; returns the number
    of events."""
    from repro.util.atomicio import atomic_write_json

    trace = chrome_trace(trees)
    atomic_write_json(path, trace)
    return len(trace["traceEvents"])


def _format_attributes(attributes: dict) -> str:
    parts = []
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, float):
            value = f"{value:.3f}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_span_tree(tree: dict, *, indent: int = 0,
                     show_wall: bool = True) -> str:
    """Indented text rendering of one serialized span tree."""
    pad = "  " * indent
    sim = (f"sim {tree['sim_start']:.2f}s"
           f"+{tree['sim_duration']:.2f}s")
    wall = f" wall {tree['wall_duration'] * 1e3:.2f}ms" if show_wall else ""
    status = "" if tree["status"] == "ok" else \
        f" !{tree['status']}({tree.get('error_type', '?')})"
    attributes = tree.get("attributes")
    suffix = f"  [{_format_attributes(attributes)}]" if attributes else ""
    lines = [f"{pad}{tree['name']}{status}  ({sim}{wall}){suffix}"]
    for child in tree.get("children", ()):
        lines.append(render_span_tree(child, indent=indent + 1,
                                      show_wall=show_wall))
    return "\n".join(lines)


def span_count(tree: dict) -> int:
    """Number of spans in one serialized tree."""
    return 1 + sum(span_count(child) for child in tree.get("children", ()))
