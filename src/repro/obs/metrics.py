"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named-instrument store with the same
algebra the build-cache counters established in PR 1: ``snapshot`` for
an independent copy, ``merge`` to add another registry in, and ``delta``
for counter-wise subtraction — so the parallel evaluation runner can
combine per-worker registries exactly like it combines cache stats.
Merging is commutative, which keeps merged metrics deterministic no
matter in what order ``imap_unordered`` returns the tasks.

Instrument names are dotted paths (``tokens.found``,
``cache.preprocess.hits``); the well-known pipeline instruments are
listed in :data:`INSTRUMENTS`. Everything is plain Python data: the
registry pickles across process boundaries and serializes with
:meth:`MetricsRegistry.to_dict` for ``jmake evaluate --metrics-out``.

:data:`NULL_METRICS` is the disabled registry: every instrument lookup
returns a shared no-op instrument, so un-observed runs pay only an
attribute lookup per recording site.
"""

from __future__ import annotations

from typing import Any, Iterable

#: well-known pipeline instruments (name -> meaning); modules may
#: register further instruments freely, this is documentation not ACL
INSTRUMENTS = {
    "patches.checked": "commits run through JMake.check_patch",
    "patches.certified": "patches whose every changed line was certified",
    "files.mutated": "file instances that received at least one mutation",
    "tokens.placed": "mutation tokens placed across all files",
    "tokens.found": "tokens credited by a certified compilation",
    "tokens.missing": "tokens never surfaced in any certified .i",
    "arch.attempts": "(architecture, configuration) trials",
    "arch.selections": "arch-selection heuristic invocations",
    "build.config.invocations": "make *config invocations",
    "build.make_i.invocations": "batched make .i invocations",
    "build.make_i.files": "files preprocessed across all batches",
    "build.make_o.invocations": "make .o invocations",
    "hfile.candidates": ".c candidates considered for changed headers",
    "cache.load_errors": "cache pickle loads that fell back to empty",
}

#: default histogram bucket upper bounds (simulated seconds)
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
                   600.0)


class Counter:
    """A monotonically increasing sum (ints or floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def delta(self, since: "Counter") -> "Counter":
        return Counter(self.name, self.value - since.value)

    def copy(self) -> "Counter":
        return Counter(self.name, self.value)

    def to_value(self):
        return self.value


class Gauge:
    """A last-write-wins level (cache residency, worker count, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def merge(self, other: "Gauge") -> None:
        # merged gauges take the max: "the level some worker reached"
        self.value = max(self.value, other.value)

    def delta(self, since: "Gauge") -> "Gauge":
        return Gauge(self.name, self.value - since.value)

    def copy(self) -> "Gauge":
        return Gauge(self.name, self.value)

    def to_value(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``buckets`` holds upper bounds; observations beyond the last bound
    land in the implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str,
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean, 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (interpolated within the owning bucket)."""
        from repro.obs.timeseries import histogram_quantiles
        return histogram_quantiles(self.to_value(), (q,))[q]

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name}: bucket mismatch "
                f"{self.buckets} vs {other.buckets}")
        self.counts = [mine + theirs for mine, theirs
                       in zip(self.counts, other.counts)]
        self.total += other.total
        self.count += other.count

    def delta(self, since: "Histogram") -> "Histogram":
        result = Histogram(self.name, self.buckets)
        result.counts = [mine - theirs for mine, theirs
                         in zip(self.counts, since.counts)]
        result.total = self.total - since.total
        result.count = self.count - since.count
        return result

    def copy(self) -> "Histogram":
        result = Histogram(self.name, self.buckets)
        result.counts = list(self.counts)
        result.total = self.total
        result.count = self.count
        return result

    def to_value(self) -> dict:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "sum": self.total, "count": self.count}


class MetricsRegistry:
    """Named instruments plus the snapshot/merge/delta algebra."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        """True — this registry records."""
        return True

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter of that name (created on first use)."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge of that name (created on first use)."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram of that name (created on first use)."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, buckets)
        return instrument

    # -- algebra ---------------------------------------------------------------

    def snapshot(self) -> "MetricsRegistry":
        """An independent deep copy of every instrument."""
        result = MetricsRegistry()
        result.counters = {name: c.copy() for name, c in self.counters.items()}
        result.gauges = {name: g.copy() for name, g in self.gauges.items()}
        result.histograms = {name: h.copy()
                             for name, h in self.histograms.items()}
        return result

    def merge(self, other: "MetricsRegistry") -> None:
        """Add another registry's instruments into this one."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other.gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.buckets).merge(histogram)

    def delta(self, since: "MetricsRegistry") -> "MetricsRegistry":
        """Instrument-wise ``self - since`` (missing = zero)."""
        result = MetricsRegistry()
        for name, counter in self.counters.items():
            base = since.counters.get(name, Counter(name))
            result.counters[name] = counter.delta(base)
        for name, gauge in self.gauges.items():
            base = since.gauges.get(name, Gauge(name))
            result.gauges[name] = gauge.delta(base)
        for name, histogram in self.histograms.items():
            base = since.histograms.get(name, Histogram(name,
                                                        histogram.buckets))
            result.histograms[name] = histogram.delta(base)
        return result

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """A sorted, JSON-serializable view of every instrument."""
        return {
            "counters": {name: self.counters[name].to_value()
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].to_value()
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].to_value()
                           for name in sorted(self.histograms)},
        }

    def render(self) -> str:
        """A fixed-width text table of counters and histogram summaries."""
        lines = [f"{'instrument':<36} {'value':>16}"]
        lines.append("-" * len(lines[0]))
        for name in sorted(self.counters):
            value = self.counters[name].value
            text = f"{value:.3f}".rstrip("0").rstrip(".") \
                if isinstance(value, float) else str(value)
            lines.append(f"{name:<36} {text:>16}")
        for name in sorted(self.gauges):
            lines.append(f"{name:<36} {self.gauges[name].value:>16}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            lines.append(f"{name:<36} "
                         f"{f'n={histogram.count} mean={histogram.mean:.2f}':>16}")
        return "\n".join(lines)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0

    def inc(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """API-compatible registry that records nothing."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        """False — instruments discard."""
        return False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: "Iterable[float] | None" = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> "NullMetricsRegistry":
        return self

    def merge(self, other: Any) -> None:
        return None

    def delta(self, since: Any) -> "NullMetricsRegistry":
        return self

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render(self) -> str:
        return "(metrics disabled)"


#: the process-wide disabled registry instrumented code defaults to
NULL_METRICS = NullMetricsRegistry()
