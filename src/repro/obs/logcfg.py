"""The ``repro.*`` logger hierarchy and its one-call configuration.

Every module logs through :func:`get_logger`, which roots names under
``repro.`` so one ``--log-level`` flag (or one call to
:func:`configure_logging`) governs the whole pipeline. Nothing is
configured at import time: a library user who never calls
``configure_logging`` gets Python's default behaviour (silence below
WARNING), and the handler is attached to the ``repro`` logger — not
the root logger — so embedding applications keep their own setup.
"""

from __future__ import annotations

import logging
import sys

#: root of the hierarchy
ROOT_LOGGER = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"

#: accepted ``--log-level`` values
LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str) -> logging.Logger:
    """The ``repro.<name>`` logger (idempotent, configuration-free)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(level: str = "warning", stream=None) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger at ``level``.

    Re-configuring replaces the previous handler (so tests and REPL
    sessions can flip levels freely without duplicate lines).
    """
    if level.lower() not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LEVELS)}")
    root = logging.getLogger(ROOT_LOGGER)
    for handler in [h for h in root.handlers
                    if getattr(h, "_repro_handler", False)]:
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level.upper())
    return root
