"""Typed structured events: the operational transitions log lines hide.

A long-running ``jmake serve`` has state changes that matter to an
operator — a shard worker crashed and was restarted, a circuit breaker
opened, admission control rejected a request, an architecture tripped
quarantine, the journal truncated a torn tail, the substrate fast path
was switched off — and before this module every one of them was a log
line: unstructured, unqueryable, and gone when the process dies.

:class:`EventLog` is the typed replacement. Every emission produces an
:class:`Event` with

- a **monotone sequence number** (``seq``) — the dedup identity a
  resumed JSONL sink uses to skip already-persisted events;
- a **timestamp** from a pluggable clock (wall clock in serve mode, a
  sim-clock reader or fixed counter under tests, so event streams can
  be byte-deterministic);
- a **kind** from the taxonomy in :data:`EVENT_KINDS` (free-form kinds
  are allowed — the taxonomy is documentation, not an ACL — but the
  schema checker flags unknown kinds so typos surface in CI);
- the **request/commit correlation id** when the emitting site has one,
  so events join against the ``service.request`` span tree;
- free-form scalar ``attrs``.

Completed events land in a bounded ring (oldest evicted first) and fan
out to any attached sinks (:mod:`repro.obs.sinks`). :data:`NULL_EVENTS`
is the disabled log: ``emit`` is a no-op returning ``None``, so
un-observed services pay only an attribute lookup per site — the same
contract ``NULL_TRACER``/``NULL_METRICS`` established in PR 2.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable

#: schema version stamped into every serialized event
EVENT_SCHEMA_VERSION = 1

# -- taxonomy -----------------------------------------------------------------

EVENT_SHARD_CRASH = "shard.crash"
EVENT_SHARD_HANG = "shard.hang"
EVENT_SHARD_RESTART = "shard.restart"
EVENT_SHARD_BREAKER_OPEN = "shard.breaker_open"
EVENT_SHARD_INLINE_DRAIN = "shard.inline_drain"
EVENT_SERVICE_REJECTED = "service.rejected"
EVENT_SERVICE_STARTED = "service.started"
EVENT_SERVICE_DRAINED = "service.drained"
EVENT_QUARANTINE_TRIP = "quarantine.trip"
EVENT_JOURNAL_TRUNCATED = "journal.truncated"
EVENT_JOURNAL_CHECKPOINT = "journal.checkpoint"
EVENT_FASTPATH_CHANGED = "substrate.fastpath_changed"
EVENT_CACHE_LOAD_ERROR = "cache.load_error"
EVENT_WORKER_SPAWNED = "transport.worker_spawned"
EVENT_WORKER_EXIT = "transport.worker_exit"
EVENT_WORKER_REQUEUE = "transport.requeue"
EVENT_INGEST_BATCH = "ingest.batch"
EVENT_INGEST_SCHEMA_ERROR = "ingest.schema_error"
EVENT_INGEST_MATVIEW = "ingest.matview_refreshed"
EVENT_WATCH_STARTED = "watch.started"
EVENT_WATCH_BATCH = "watch.batch"
EVENT_WATCH_STOPPED = "watch.stopped"
EVENT_WATCH_IDLE = "watch.idle"
EVENT_AUTH_REJECTED = "transport.auth_rejected"
EVENT_WORKER_REGISTERED = "transport.worker_registered"
EVENT_WORKER_REJOINED = "transport.worker_rejoined"
EVENT_LEASE_FENCED = "transport.lease_fenced"
EVENT_LEASE_EXPIRED = "transport.lease_expired"
EVENT_VERDICT_ACCEPTED = "transport.verdict_accepted"
EVENT_WORKER_RECONNECT = "worker.reconnect"
EVENT_STORE_COMPACTED = "store.compacted"

#: well-known event kinds (kind -> meaning); documentation, not an ACL
EVENT_KINDS = {
    EVENT_SHARD_CRASH: "a shard worker task died with an exception",
    EVENT_SHARD_HANG: "a shard worker held its claim past the deadline",
    EVENT_SHARD_RESTART: "the supervisor restarted a shard worker",
    EVENT_SHARD_BREAKER_OPEN: "a shard circuit breaker opened (terminal)",
    EVENT_SHARD_INLINE_DRAIN: "a broken shard's queue was drained inline",
    EVENT_SERVICE_REJECTED: "admission control rejected a request",
    EVENT_SERVICE_STARTED: "the check service started its workers",
    EVENT_SERVICE_DRAINED: "the check service drained cleanly",
    EVENT_QUARANTINE_TRIP: "an architecture was quarantined for a request",
    EVENT_JOURNAL_TRUNCATED: "journal recovery truncated a torn tail",
    EVENT_JOURNAL_CHECKPOINT: "the verdict ledger wrote a checkpoint",
    EVENT_FASTPATH_CHANGED: "the substrate fast path was switched on/off",
    EVENT_CACHE_LOAD_ERROR: "a cache pickle load fell back to empty",
    EVENT_WORKER_SPAWNED: "a remote transport spawned a shard worker",
    EVENT_WORKER_EXIT: "a remote shard worker exited or was reaped",
    EVENT_WORKER_REQUEUE: "in-flight work was requeued off a dead worker",
    EVENT_INGEST_BATCH: "a journal batch was ingested into the store",
    EVENT_INGEST_SCHEMA_ERROR: "a record failed migration during ingest",
    EVENT_INGEST_MATVIEW: "the janitor materialized view was refreshed",
    EVENT_WATCH_STARTED: "the watch daemon opened its stream",
    EVENT_WATCH_BATCH: "the watch daemon finished one check batch",
    EVENT_WATCH_STOPPED: "the watch daemon drained and stopped",
    EVENT_WATCH_IDLE: "the watch daemon polled an empty source",
    EVENT_AUTH_REJECTED: "a connecting worker failed the HMAC handshake",
    EVENT_WORKER_REGISTERED: "a worker passed auth and took a lease",
    EVENT_WORKER_REJOINED: "a partitioned worker reconnected in grace",
    EVENT_LEASE_FENCED: "a stale-epoch verdict frame was discarded",
    EVENT_LEASE_EXPIRED: "a worker's lease lapsed without heartbeats",
    EVENT_VERDICT_ACCEPTED: "a remote verdict passed the lease fence",
    EVENT_WORKER_RECONNECT: "a worker client began a reconnect cycle",
    EVENT_STORE_COMPACTED: "the verdict store pruned old rows",
}

#: serialized-event keys every record must carry
_REQUIRED_KEYS = ("schema", "seq", "ts", "kind")


class Event:
    """One structured operational event."""

    __slots__ = ("seq", "ts", "kind", "request_id", "attrs")

    def __init__(self, seq: int, ts: float, kind: str,
                 request_id: str | None = None,
                 attrs: dict[str, Any] | None = None) -> None:
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.request_id = request_id
        self.attrs = attrs or {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Event(seq={self.seq}, kind={self.kind!r}, "
                f"request={self.request_id!r})")

    def to_dict(self) -> dict:
        """A JSON-serializable record (the JSONL sink's line payload)."""
        record: dict[str, Any] = {
            "schema": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
        }
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Event":
        """Rebuild an event from its serialized record."""
        validate_event_record(record)
        return cls(seq=record["seq"], ts=record["ts"],
                   kind=record["kind"],
                   request_id=record.get("request_id"),
                   attrs=dict(record.get("attrs", {})))


def validate_event_record(record: dict, *,
                          known_kinds_only: bool = False) -> None:
    """Raise ``ValueError`` when a serialized event is malformed.

    The CI ``obs`` job runs every line of an ``--events-out`` file
    through this; ``known_kinds_only`` additionally rejects kinds
    missing from :data:`EVENT_KINDS` (typo detection).
    """
    if not isinstance(record, dict):
        raise ValueError(f"event record must be an object, got "
                         f"{type(record).__name__}")
    for key in _REQUIRED_KEYS:
        if key not in record:
            raise ValueError(f"event record missing {key!r}: {record!r}")
    if record["schema"] != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported event schema {record['schema']!r} "
            f"(this build reads {EVENT_SCHEMA_VERSION})")
    if not isinstance(record["seq"], int) or record["seq"] < 1:
        raise ValueError(f"event seq must be a positive integer, "
                         f"got {record['seq']!r}")
    if not isinstance(record["ts"], (int, float)):
        raise ValueError(f"event ts must be a number, got "
                         f"{record['ts']!r}")
    if not isinstance(record["kind"], str) or not record["kind"]:
        raise ValueError(f"event kind must be a non-empty string, "
                         f"got {record['kind']!r}")
    if known_kinds_only and record["kind"] not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {record['kind']!r} "
                         f"(not in EVENT_KINDS)")
    attrs = record.get("attrs", {})
    if not isinstance(attrs, dict):
        raise ValueError(f"event attrs must be an object, got "
                         f"{attrs!r}")


class EventLog:
    """Bounded ring of typed events, fanned out to attached sinks."""

    def __init__(self, *, capacity: int = 1024,
                 clock: Callable[[], float] | None = None,
                 start_seq: int = 0, sinks=()) -> None:
        if capacity < 1:
            raise ValueError(
                f"capacity must be a positive integer, got {capacity!r}")
        if start_seq < 0:
            raise ValueError(
                f"start_seq cannot be negative, got {start_seq!r}")
        #: timestamp source; wall clock unless the caller pins one
        self.clock = clock if clock is not None else time.time
        self._ring: "deque[Event]" = deque(maxlen=capacity)
        self._sinks = list(sinks)
        #: last assigned sequence number (next event gets seq + 1);
        #: seed with a resumed sink's ``last_seq`` so a restarted
        #: service continues the monotone sequence instead of reusing
        #: already-persisted numbers
        self.seq = start_seq
        #: emissions by kind over the log's lifetime (ring-independent)
        self.counts: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """True — this log records."""
        return True

    def attach(self, sink) -> None:
        """Fan future events out to ``sink`` too."""
        self._sinks.append(sink)

    def emit(self, kind: str, *, request_id: str | None = None,
             **attrs: Any) -> Event:
        """Record one event; returns it (sinks see its dict form)."""
        self.seq += 1
        event = Event(self.seq, self.clock(), kind,
                      request_id=request_id, attrs=attrs or None)
        self._ring.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        for sink in self._sinks:
            sink.emit(event.to_dict())
        return event

    def events(self, kind: str | None = None) -> list[Event]:
        """Ring contents (oldest first), optionally one kind only."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def __len__(self) -> int:
        return len(self._ring)

    def stats(self) -> dict:
        """Event telemetry for the service stats endpoint."""
        return {
            "seq": self.seq,
            "ring_size": len(self._ring),
            "counts": {kind: self.counts[kind]
                       for kind in sorted(self.counts)},
        }


class NullEventLog:
    """API-compatible event log that records nothing."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        """False — events are discarded."""
        return False

    seq = 0

    def attach(self, sink) -> None:
        return None

    def emit(self, kind: str, *, request_id: str | None = None,
             **attrs: Any) -> None:
        return None

    def events(self, kind: str | None = None) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def stats(self) -> dict:
        return {"seq": 0, "ring_size": 0, "counts": {}}


#: the process-wide disabled event log instrumented code defaults to
NULL_EVENTS = NullEventLog()
