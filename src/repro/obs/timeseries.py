"""Periodic metric snapshots: the service's continuous time series.

PR 2's observability was post-hoc — one registry dump after the run
ends. A long-running ``jmake serve`` needs the *trajectory*: queue
depths, batch occupancy, and request latency sampled while the service
is under load, in a form a dashboard can poll.

:class:`Snapshotter` samples a :class:`~repro.obs.metrics.
MetricsRegistry` (plus any extra *collector* registries — the substrate
fast-path counters ride along this way) into schema-versioned
:class:`MetricsSnapshot` records:

- a **monotone sequence number**, resumable across process restarts
  (seed ``start_seq`` from a JSONL sink's ``last_seq``);
- a **timestamp** from a pluggable clock — wall clock in serve mode,
  a sim-clock reader under tests, so snapshot streams can be
  byte-deterministic;
- the registry's full ``to_dict`` payload (counters, gauges,
  histograms with buckets), from which percentile summaries are
  derived by :func:`histogram_quantiles`.

Snapshots land in a bounded :class:`SnapshotRing` and fan out to
attached sinks (:mod:`repro.obs.sinks`). Sampling is *pull*: the
service either calls :meth:`Snapshotter.sample` explicitly (tests,
drain-time finals) or runs :meth:`Snapshotter.run` as an asyncio task
on a real-seconds interval (``jmake serve --stats-interval``).
Sampling reads registries through their own ``snapshot()``, so it can
never perturb instrument state or any verdict.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Callable, Iterable

from repro.obs.metrics import MetricsRegistry

#: schema version stamped into every serialized snapshot
SNAPSHOT_SCHEMA_VERSION = 1

#: default snapshots held in memory
DEFAULT_RING_CAPACITY = 256

#: the quantiles ``jmake stats`` summarizes histograms at
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


class MetricsSnapshot:
    """One sampled, schema-versioned view of a metrics registry."""

    __slots__ = ("seq", "ts", "clock_kind", "metrics")

    def __init__(self, seq: int, ts: float, clock_kind: str,
                 metrics: dict) -> None:
        self.seq = seq
        self.ts = ts
        #: "wall" or "sim" — which clock stamped ``ts``
        self.clock_kind = clock_kind
        #: the ``MetricsRegistry.to_dict`` payload
        self.metrics = metrics

    def to_dict(self) -> dict:
        """A JSON-serializable record (the JSONL sink's line payload)."""
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": self.ts,
            "clock": self.clock_kind,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "MetricsSnapshot":
        """Rebuild a snapshot from its serialized record."""
        validate_snapshot_record(record)
        return cls(seq=record["seq"], ts=record["ts"],
                   clock_kind=record["clock"],
                   metrics=record["metrics"])

    def registry(self) -> MetricsRegistry:
        """An independent registry rebuilt from this snapshot."""
        return registry_from_dict(self.metrics)


def validate_snapshot_record(record: dict) -> None:
    """Raise ``ValueError`` when a serialized snapshot is malformed."""
    if not isinstance(record, dict):
        raise ValueError(f"snapshot record must be an object, got "
                         f"{type(record).__name__}")
    for key in ("schema", "seq", "ts", "clock", "metrics"):
        if key not in record:
            raise ValueError(f"snapshot record missing {key!r}")
    if record["schema"] != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported snapshot schema {record['schema']!r} "
            f"(this build reads {SNAPSHOT_SCHEMA_VERSION})")
    if not isinstance(record["seq"], int) or record["seq"] < 1:
        raise ValueError(f"snapshot seq must be a positive integer, "
                         f"got {record['seq']!r}")
    if record["clock"] not in ("wall", "sim"):
        raise ValueError(f"snapshot clock must be 'wall' or 'sim', "
                         f"got {record['clock']!r}")
    metrics = record["metrics"]
    if not isinstance(metrics, dict) or \
            not {"counters", "gauges", "histograms"} <= set(metrics):
        raise ValueError("snapshot metrics must carry counters/gauges/"
                         "histograms")


def registry_from_dict(payload: dict) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from its ``to_dict`` payload."""
    registry = MetricsRegistry()
    for name, value in payload.get("counters", {}).items():
        registry.counter(name).value = value
    for name, value in payload.get("gauges", {}).items():
        registry.gauge(name).set(value)
    for name, data in payload.get("histograms", {}).items():
        histogram = registry.histogram(name, tuple(data["buckets"]))
        histogram.counts = list(data["counts"])
        histogram.total = data["sum"]
        histogram.count = data["count"]
    return registry


def histogram_quantiles(data: dict,
                        quantiles: Iterable[float] = SUMMARY_QUANTILES
                        ) -> dict[float, float]:
    """Quantile estimates from one serialized histogram.

    Linear interpolation inside the owning bucket, the standard
    Prometheus ``histogram_quantile`` estimator; observations in the
    overflow bucket clamp to the last finite bound.
    """
    buckets = tuple(data["buckets"])
    counts = list(data["counts"])
    total = data["count"]
    results: dict[float, float] = {}
    for q in quantiles:
        if total <= 0:
            results[q] = 0.0
            continue
        target = q * total
        cumulative = 0.0
        lower = 0.0
        value = buckets[-1] if buckets else 0.0
        for bound, bucket_count in zip(buckets, counts):
            if bucket_count and cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                value = lower + (bound - lower) * fraction
                break
            cumulative += bucket_count
            lower = bound
        results[q] = value
    return results


class SnapshotRing:
    """Bounded in-memory history of snapshots (oldest evicted first)."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(
                f"capacity must be a positive integer, got {capacity!r}")
        self._ring: "deque[MetricsSnapshot]" = deque(maxlen=capacity)

    def append(self, snapshot: MetricsSnapshot) -> None:
        self._ring.append(snapshot)

    @property
    def latest(self) -> MetricsSnapshot | None:
        """The most recent snapshot, or None."""
        return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)


class Snapshotter:
    """Samples a registry (plus collectors) into the ring and sinks."""

    def __init__(self, registry, *,
                 collectors: Iterable[Callable[[], Any]] = (),
                 clock: Callable[[], float] | None = None,
                 clock_kind: str | None = None,
                 interval_seconds: float | None = None,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 start_seq: int = 0, sinks=()) -> None:
        if interval_seconds is not None and interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, "
                f"got {interval_seconds!r}")
        if start_seq < 0:
            raise ValueError(
                f"start_seq cannot be negative, got {start_seq!r}")
        self.registry = registry
        #: zero-arg callables returning extra registries to merge in
        #: (e.g. ``repro.cpp.prepared.collect_metrics``)
        self.collectors = list(collectors)
        self.clock = clock if clock is not None else time.time
        #: "wall" unless an explicit (sim) clock was pinned
        self.clock_kind = clock_kind if clock_kind is not None else \
            ("wall" if clock is None else "sim")
        if self.clock_kind not in ("wall", "sim"):
            raise ValueError(f"clock_kind must be 'wall' or 'sim', "
                             f"got {self.clock_kind!r}")
        self.interval_seconds = interval_seconds
        self.ring = SnapshotRing(ring_capacity)
        self._sinks = list(sinks)
        self.seq = start_seq
        self.samples_taken = 0
        self._task: "asyncio.Task | None" = None

    def attach(self, sink) -> None:
        """Fan future snapshots out to ``sink`` too."""
        self._sinks.append(sink)

    def sample(self) -> MetricsSnapshot:
        """Take one snapshot now: merge collectors, ring it, sink it."""
        combined = self.registry.snapshot()
        for collect in self.collectors:
            extra = collect()
            if extra is not None:
                combined.merge(extra)
        self.seq += 1
        snapshot = MetricsSnapshot(self.seq, self.clock(),
                                   self.clock_kind, combined.to_dict())
        self.ring.append(snapshot)
        self.samples_taken += 1
        for sink in self._sinks:
            sink.emit(snapshot.to_dict())
        return snapshot

    # -- periodic sampling (serve mode) ------------------------------------

    def start(self) -> None:
        """Spawn the periodic sampling task on the running loop."""
        if self.interval_seconds is None:
            raise ValueError("cannot start a Snapshotter without "
                             "interval_seconds")
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="metrics-snapshotter")

    async def stop(self, *, final_sample: bool = True) -> None:
        """Cancel the sampling task (taking one last snapshot)."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if final_sample:
            self.sample()

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_seconds)
            self.sample()

    def stats(self) -> dict:
        """Sampling telemetry for the service stats endpoint."""
        return {
            "seq": self.seq,
            "samples_taken": self.samples_taken,
            "ring_size": len(self.ring),
            "interval_seconds": self.interval_seconds,
            "clock": self.clock_kind,
        }
