"""Hierarchical spans over the simulated and the wall clock.

A :class:`Tracer` hands out context-manager spans; nesting follows the
runtime call structure, so one ``jmake.check_commit`` span owns the
whole tree of patch-parsing, mutation, arch-selection, and per-step
build spans that explain how the verdict was reached.

Every span carries *two* time bases:

- **simulated seconds** read from the pipeline's
  :class:`~repro.util.simclock.SimClock` — spans only *read* the clock,
  they never charge it, so instrumentation can never perturb the
  modeled timings behind the paper's tables and figures;
- **wall-clock seconds** (``time.perf_counter``) — what the machine
  actually spent, useful for finding real hot paths.

When tracing is off the pipeline holds :data:`NULL_TRACER`, whose
``span()`` returns one shared do-nothing handle; the per-call cost is a
dict-free attribute lookup plus a no-op ``with`` block (verified by
``benchmarks/test_perf_obs.py``).

Serialization (:meth:`Span.to_dict`) rebases simulated times to the
tree's root, making a span tree a pure function of (corpus, commit) —
the property the parallel runner relies on to merge per-worker trees
deterministically.
"""

from __future__ import annotations

import time
from typing import Any

#: span completion states
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One traced operation: name, attributes, children, two clocks."""

    __slots__ = ("name", "attributes", "children", "status", "error_type",
                 "sim_start", "sim_end", "wall_start", "wall_end",
                 "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: "dict[str, Any] | None" = None) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes: dict[str, Any] = attributes or {}
        self.children: list[Span] = []
        self.status = STATUS_OK
        self.error_type: str | None = None
        self.sim_start: float | None = None
        self.sim_end: float | None = None
        self.wall_start: float = 0.0
        self.wall_end: float = 0.0

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.sim_start = self._tracer._sim_now()
        self.wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_end = time.perf_counter()
        self.sim_end = self._tracer._sim_now()
        if exc_type is not None:
            self.status = STATUS_ERROR
            self.error_type = exc_type.__name__
        self._tracer._pop(self)

    # -- mutation -------------------------------------------------------------

    def set(self, key: str, value: Any) -> "Span":
        """Attach or overwrite one attribute."""
        self.attributes[key] = value
        return self

    def event(self, name: str, **attributes: Any) -> "Span":
        """Record an instantaneous child span at the current time."""
        child = Span(self._tracer, name, attributes)
        child.sim_start = child.sim_end = self._tracer._sim_now()
        child.wall_start = child.wall_end = time.perf_counter()
        self.children.append(child)
        return child

    # -- derived --------------------------------------------------------------

    @property
    def sim_duration(self) -> float:
        """Simulated seconds spanned (0.0 when no sim clock was bound)."""
        if self.sim_start is None or self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds spanned."""
        return self.wall_end - self.wall_start

    def walk(self):
        """Yield this span and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, *, rebase_sim: float | None = None,
                rebase_wall: float | None = None) -> dict:
        """A plain-dict view (JSON/pickle friendly).

        ``rebase_sim``/``rebase_wall`` default to this span's own start,
        so a root serializes with its whole tree starting at 0.0 —
        identical regardless of what ran before it on the same clock.
        """
        if rebase_sim is None:
            rebase_sim = self.sim_start or 0.0
        if rebase_wall is None:
            rebase_wall = self.wall_start
        record: dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "sim_start": (self.sim_start or 0.0) - rebase_sim,
            "sim_duration": self.sim_duration,
            "wall_start": self.wall_start - rebase_wall,
            "wall_duration": self.wall_duration,
        }
        if self.error_type is not None:
            record["error_type"] = self.error_type
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.children:
            record["children"] = [
                child.to_dict(rebase_sim=rebase_sim,
                              rebase_wall=rebase_wall)
                for child in self.children]
        return record


class Tracer:
    """Hands out nested spans; completed roots accumulate for export."""

    def __init__(self, sim_clock=None, worker_id: int = 0) -> None:
        #: object with a ``now`` property (a SimClock); bound late by
        #: the pipeline component that owns the clock
        self.sim_clock = sim_clock
        self.worker_id = worker_id
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def enabled(self) -> bool:
        """True — this tracer records spans."""
        return True

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; use as ``with tracer.span("build.make_i"): ...``."""
        return Span(self, name, attributes or None)

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attributes: Any) -> None:
        """An instantaneous event under the current span (or a root)."""
        if self._stack:
            self._stack[-1].event(name, **attributes)
        else:
            root = Span(self, name, attributes)
            root.sim_start = root.sim_end = self._sim_now()
            root.wall_start = root.wall_end = time.perf_counter()
            self.roots.append(root)

    def drain(self) -> list[Span]:
        """Pop and return all completed root spans."""
        roots, self.roots = self.roots, []
        return roots

    # -- internals -------------------------------------------------------------

    def _sim_now(self) -> float | None:
        clock = self.sim_clock
        return clock.now if clock is not None else None

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate exotic unwinding: pop through to the span
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)


class _NullSpan:
    """Shared do-nothing span handle; every method is a cheap no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible tracer that records nothing.

    ``span()`` returns one shared handle; no allocation, no clock reads.
    """

    __slots__ = ("sim_clock", "worker_id")

    def __init__(self) -> None:
        self.sim_clock = None
        self.worker_id = 0

    @property
    def enabled(self) -> bool:
        """False — spans are discarded."""
        return False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def drain(self) -> list:
        return []


#: the process-wide disabled tracer instrumented code defaults to
NULL_TRACER = NullTracer()
