"""JMake reproduction: dependable compilation for kernel janitors.

Reproduction of Lawall & Muller, *JMake: Dependable Compilation for
Kernel Janitors* (DSN 2017), with every substrate implemented in pure
Python. See README.md for a tour and DESIGN.md for the inventory.

The most common entry points:

>>> from repro import JMake, generate_tree
>>> tree = generate_tree()
>>> jmake = JMake.from_generated_tree(tree)

and, for the evaluation pipeline:

>>> from repro import CorpusSpec, EvaluationRunner, build_corpus
>>> corpus = build_corpus(CorpusSpec(eval_commits=100))
>>> result = EvaluationRunner(corpus).run()
"""

from repro.core.jmake import JMake, JMakeOptions
from repro.core.report import FileReport, FileStatus, PatchReport
from repro.evalsuite.runner import EvaluationResult, EvaluationRunner
from repro.kernel.generator import GeneratedTree, generate_tree
from repro.kernel.layout import HazardKind, TreeSpec, default_tree_spec
from repro.workload.corpus import Corpus, CorpusSpec, build_corpus

__version__ = "1.0.0"

__all__ = [
    "Corpus",
    "CorpusSpec",
    "EvaluationResult",
    "EvaluationRunner",
    "FileReport",
    "FileStatus",
    "GeneratedTree",
    "HazardKind",
    "JMake",
    "JMakeOptions",
    "PatchReport",
    "TreeSpec",
    "__version__",
    "build_corpus",
    "default_tree_spec",
    "generate_tree",
]
