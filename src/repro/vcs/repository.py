"""Repository: history storage, log filtering, diffing, and worktrees.

Mirrors the git operations the paper's pipeline performs:

- ``git log -w --diff-filter=M --no-merges v4.3..v4.4`` →
  :meth:`Repository.log` with :class:`LogOptions`.
- ``git show <id>`` → :meth:`Repository.show`.
- ``git reset --hard`` / ``git clean -dfx`` → :class:`Worktree`
  (:meth:`Worktree.reset_hard`, :meth:`Worktree.clean`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VcsError
from repro.vcs.diff import FileDiff, Patch, apply_file_diff, diff_texts
from repro.vcs.objects import Commit, Signature, Tree


@dataclass
class LogOptions:
    """Filters equivalent to the paper's git log invocation (§V-A)."""

    ignore_whitespace: bool = True      # -w
    modifications_only: bool = True     # --diff-filter=M
    no_merges: bool = True              # --no-merges


class Repository:
    """An append-only commit store with a linear mainline plus merges."""

    def __init__(self) -> None:
        self._commits: dict[str, Commit] = {}
        self._order: list[str] = []   # commit ids in topological (apply) order
        self._tags: dict[str, str] = {}

    # -- writing history -------------------------------------------------

    def commit(self, tree: Tree, author: Signature, message: str,
               parents: tuple[str, ...] | None = None) -> Commit:
        """Append a commit (parents default to the current head)."""
        if parents is None:
            parents = (self._order[-1],) if self._order else ()
        for parent in parents:
            if parent not in self._commits:
                raise VcsError(f"unknown parent commit: {parent}")
        commit = Commit(tree=tree, author=author, message=message,
                        parents=parents)
        if commit.id in self._commits:
            raise VcsError(f"duplicate commit: {commit.id}")
        self._commits[commit.id] = commit
        self._order.append(commit.id)
        return commit

    def tag(self, name: str, commit_id: str) -> None:
        """Name a commit (v4.3-style refs)."""
        if commit_id not in self._commits:
            raise VcsError(f"cannot tag unknown commit: {commit_id}")
        self._tags[name] = commit_id

    # -- reading history ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def resolve(self, ref: str) -> Commit:
        """Resolve a tag name, full id, or unique id prefix."""
        if ref in self._tags:
            return self._commits[self._tags[ref]]
        if ref in self._commits:
            return self._commits[ref]
        matches = [cid for cid in self._commits if cid.startswith(ref)]
        if len(matches) == 1:
            return self._commits[matches[0]]
        if len(matches) > 1:
            raise VcsError(f"ambiguous ref: {ref}")
        raise VcsError(f"unknown ref: {ref}")

    def head(self) -> Commit:
        """The most recent commit."""
        if not self._order:
            raise VcsError("empty repository")
        return self._commits[self._order[-1]]

    def parent_tree(self, commit: Commit) -> Tree:
        """Tree of the first parent, or an empty tree for a root commit."""
        if not commit.parents:
            return Tree({})
        return self._commits[commit.parents[0]].tree

    def log(self, since: str | None = None, until: str | None = None,
            options: LogOptions | None = None,
            author: str | None = None) -> list[Commit]:
        """Commits in apply order within ``(since, until]``, filtered.

        ``--diff-filter=M`` keeps only commits whose diff against their
        first parent modifies at least one file that exists on both sides
        and differs (under ``-w`` whitespace-insensitivity when enabled).
        """
        options = options or LogOptions()
        start_index = 0
        if since is not None:
            since_id = self.resolve(since).id
            start_index = self._order.index(since_id) + 1
        end_index = len(self._order)
        if until is not None:
            until_id = self.resolve(until).id
            end_index = self._order.index(until_id) + 1
        selected: list[Commit] = []
        for commit_id in self._order[start_index:end_index]:
            commit = self._commits[commit_id]
            if author is not None and author not in (
                    commit.author.name, commit.author.email):
                continue
            if options.no_merges and commit.is_merge:
                continue
            if options.modifications_only:
                patch = self.show(commit, ignore_whitespace=options.ignore_whitespace)
                if not patch.files:
                    continue
            selected.append(commit)
        return selected

    def commits_after(self, cursor: str | None = None,
                      options: LogOptions | None = None,
                      limit: int | None = None) -> list[Commit]:
        """The commit stream: filtered commits strictly after ``cursor``.

        This is the pull surface fleet mode's watch daemon consumes —
        call with the last commit you saw (or ``None`` for the
        beginning of history), get the next ``limit`` commits that pass
        the :class:`LogOptions` filters, remember the id of the last
        one as the next cursor. New commits appended to the repository
        between calls show up on the next pull, so a live stream and a
        fixed backlog are the same API.
        """
        if limit is not None and limit < 1:
            raise VcsError(
                f"commits_after limit must be positive, got {limit!r}")
        stream = self.log(since=cursor, options=options)
        return stream if limit is None else stream[:limit]

    def show(self, commit: Commit | str,
             ignore_whitespace: bool = True) -> Patch:
        """The patch a commit applies relative to its first parent.

        Only *modified* files appear (``--diff-filter=M``): files that
        exist in both the parent and the commit tree with differing text.
        """
        if isinstance(commit, str):
            commit = self.resolve(commit)
        old_tree = self.parent_tree(commit)
        new_tree = commit.tree
        patch = Patch()
        for path in new_tree.paths():
            if path not in old_tree:
                continue
            old_text = old_tree[path]
            new_text = new_tree[path]
            if old_text == new_text:
                continue
            file_diff = diff_texts(path, old_text, new_text,
                                   ignore_whitespace=ignore_whitespace)
            if file_diff is not None:
                patch.files.append(file_diff)
        return patch

    def checkout(self, ref: str | Commit) -> "Worktree":
        """A mutable worktree over one commit."""
        commit = ref if isinstance(ref, Commit) else self.resolve(ref)
        return Worktree(repository=self, commit=commit)


@dataclass
class Worktree:
    """A mutable checkout of one commit, as JMake's mutation step needs.

    ``overlay`` holds files modified in place (mutated sources);
    ``untracked`` holds generated files (.i/.o equivalents). ``clean``
    drops untracked files (git clean -dfx) and ``reset_hard`` additionally
    drops the overlay (git reset --hard).
    """

    repository: Repository
    commit: Commit
    overlay: dict[str, str] = field(default_factory=dict)
    untracked: dict[str, str] = field(default_factory=dict)

    def read(self, path: str) -> str:
        """File text, overlay first; VcsError when absent."""
        if path in self.overlay:
            return self.overlay[path]
        if path in self.untracked:
            return self.untracked[path]
        try:
            return self.commit.tree[path]
        except KeyError:
            raise VcsError(f"no such file in worktree: {path}") from None

    def exists(self, path: str) -> bool:
        """True when the path is visible in the worktree."""
        return (path in self.overlay or path in self.untracked
                or path in self.commit.tree)

    def write(self, path: str, text: str) -> None:
        """Modify a tracked file in place (overlay write)."""
        if path not in self.commit.tree:
            raise VcsError(f"cannot overlay untracked path: {path}")
        self.overlay[path] = text

    def revert(self, path: str) -> None:
        """Drop one path's overlay, restoring the committed text."""
        self.overlay.pop(path, None)

    def write_untracked(self, path: str, text: str) -> None:
        """Record a generated file (dropped by clean)."""
        self.untracked[path] = text

    def apply_patch(self, patch: Patch) -> None:
        """Apply every file diff to the overlay."""
        for file_diff in patch.files:
            self.apply_file_diff(file_diff)

    def apply_file_diff(self, file_diff: FileDiff) -> None:
        """Apply one file diff to the overlay."""
        old_text = self.read(file_diff.path)
        self.write(file_diff.path, apply_file_diff(old_text, file_diff))

    def paths(self) -> list[str]:
        """Union of committed, overlaid, and untracked paths."""
        all_paths = set(self.commit.tree.paths())
        all_paths.update(self.overlay)
        all_paths.update(self.untracked)
        return sorted(all_paths)

    def clean(self) -> None:
        """git clean -dfx: drop generated (untracked) files."""
        self.untracked.clear()

    def reset_hard(self) -> None:
        """git reset --hard: drop overlay modifications too."""
        self.overlay.clear()
        self.untracked.clear()

    def as_file_provider(self):
        """A ``path -> text`` callable view for the preprocessor."""
        def provider(path: str) -> str | None:
            if self.exists(path):
                return self.read(path)
            return None
        return provider
