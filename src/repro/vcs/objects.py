"""Content-addressed objects: trees and commits.

A :class:`Tree` is an immutable mapping from repository-relative paths to
file text. A :class:`Commit` snapshots one tree together with authorship
metadata and parent links, exactly the information the evaluation pipeline
needs from ``git log`` (author identity for janitor analysis, parent count
for ``--no-merges``, tree pairs for diffing).

Identifiers are hex SHA-256 prefixes, so ``commit.id[:12]`` behaves like
an abbreviated git hash in reports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Mapping


@dataclass(frozen=True)
class Signature:
    """Author or committer identity."""

    name: str
    email: str
    date: str  # ISO-8601; the corpus generator stamps these deterministically

    def __str__(self) -> str:
        return f"{self.name} <{self.email}>"


class Tree:
    """An immutable snapshot of the source tree."""

    def __init__(self, files: Mapping[str, str]) -> None:
        for path in files:
            if path.startswith("/") or ".." in path.split("/"):
                raise ValueError(f"invalid tree path: {path!r}")
        self._files: Mapping[str, str] = MappingProxyType(dict(files))
        self._id: str | None = None

    def __getstate__(self) -> dict:
        # mappingproxy objects refuse to pickle; spawned transport
        # workers receive whole corpora, so serialize the plain dict
        # and restore the read-only view on load
        return {"files": dict(self._files), "id": self._id}

    def __setstate__(self, state: dict) -> None:
        self._files = MappingProxyType(dict(state["files"]))
        self._id = state["id"]

    @property
    def id(self) -> str:
        """Content hash of the whole snapshot."""
        if self._id is None:
            hasher = hashlib.sha256()
            for path in sorted(self._files):
                hasher.update(path.encode("utf-8"))
                hasher.update(b"\0")
                hasher.update(self._files[path].encode("utf-8"))
                hasher.update(b"\0")
            self._id = hasher.hexdigest()
        return self._id

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __getitem__(self, path: str) -> str:
        return self._files[path]

    def get(self, path: str, default: str | None = None) -> str | None:
        """File text or a default."""
        return self._files.get(path, default)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._files))

    def __len__(self) -> int:
        return len(self._files)

    def paths(self) -> list[str]:
        """Sorted file paths."""
        return sorted(self._files)

    def with_files(self, updates: Mapping[str, str]) -> "Tree":
        """Return a new tree with the given files replaced or added."""
        merged = dict(self._files)
        merged.update(updates)
        return Tree(merged)

    def without_files(self, paths: list[str]) -> "Tree":
        """A new tree with the given paths removed."""
        merged = {path: text for path, text in self._files.items()
                  if path not in set(paths)}
        return Tree(merged)

    def glob(self, *, suffix: str | None = None,
             prefix: str | None = None) -> list[str]:
        """Paths filtered by suffix and/or directory prefix."""
        selected = self.paths()
        if prefix is not None:
            normalized = prefix.rstrip("/") + "/"
            selected = [path for path in selected
                        if path.startswith(normalized)]
        if suffix is not None:
            selected = [path for path in selected if path.endswith(suffix)]
        return selected


@dataclass(frozen=True)
class Commit:
    """One node of history."""

    tree: Tree
    author: Signature
    message: str
    parents: tuple[str, ...] = ()
    _id: str = field(default="", compare=False)

    @property
    def id(self) -> str:
        """Content hash over tree, author, message, parents."""
        hasher = hashlib.sha256()
        hasher.update(self.tree.id.encode("ascii"))
        hasher.update(str(self.author).encode("utf-8"))
        hasher.update(self.author.date.encode("utf-8"))
        hasher.update(self.message.encode("utf-8"))
        for parent in self.parents:
            hasher.update(parent.encode("ascii"))
        return hasher.hexdigest()

    @property
    def is_merge(self) -> bool:
        """True for commits with more than one parent."""
        return len(self.parents) > 1

    @property
    def subject(self) -> str:
        """First line of the commit message."""
        return self.message.split("\n", 1)[0]
