"""Git-like version-control substrate.

JMake consumes the output of ``git log -w --diff-filter=M --no-merges``
and checks out per-commit snapshots with ``git reset --hard`` /
``git clean -dfx``. This package provides the equivalent machinery over an
in-memory content-addressed store:

- :mod:`repro.vcs.diff` — unified-diff generation, parsing, application.
- :mod:`repro.vcs.objects` — blobs, trees, commits.
- :mod:`repro.vcs.repository` — history, checkout, log filtering.
"""

from repro.vcs.diff import FileDiff, Hunk, HunkLine, Patch, apply_file_diff
from repro.vcs.objects import Commit, Signature, Tree
from repro.vcs.repository import LogOptions, Repository, Worktree

__all__ = [
    "Commit",
    "FileDiff",
    "Hunk",
    "HunkLine",
    "LogOptions",
    "Patch",
    "Repository",
    "Signature",
    "Tree",
    "Worktree",
    "apply_file_diff",
]
