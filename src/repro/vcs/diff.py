"""Unified diffs: the patch format JMake reads and writes.

A :class:`Patch` is a list of :class:`FileDiff` objects, each a list of
:class:`Hunk` objects, each a list of :class:`HunkLine` records tagged
``" "`` (context), ``"-"`` (removed) or ``"+"`` (added). The format is
byte-compatible with ``diff -u`` / ``git show`` for the subset the paper
relies on (no binary diffs, no renames — the evaluation filters to
``--diff-filter=M``, i.e. pure modifications).

Line-number conventions follow unified diff: ``old_start``/``new_start``
are 1-based; a hunk with zero lines on one side reports the line *before*
the change on that side.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import PatchApplyError, PatchFormatError
from repro.util.text import split_lines_keepends


class LineKind(str, Enum):
    """Unified-diff line markers."""
    CONTEXT = " "
    REMOVED = "-"
    ADDED = "+"


@dataclass(frozen=True)
class HunkLine:
    """One annotated line of a hunk.

    ``old_lineno``/``new_lineno`` are the 1-based positions in the old and
    new file; a removed line has ``new_lineno is None`` and vice versa.
    ``text`` excludes the leading marker and the trailing newline.
    """

    kind: LineKind
    text: str
    old_lineno: int | None
    new_lineno: int | None

    def render(self) -> str:
        """Marker + text, as diff prints it."""
        return f"{self.kind.value}{self.text}"


@dataclass
class Hunk:
    """A contiguous region of change with surrounding context."""

    old_start: int
    old_count: int
    new_start: int
    new_count: int
    lines: list[HunkLine] = field(default_factory=list)

    @property
    def header(self) -> str:
        """The @@ -a,b +c,d @@ line."""
        return (f"@@ -{self.old_start},{self.old_count} "
                f"+{self.new_start},{self.new_count} @@")

    def added_lines(self) -> list[HunkLine]:
        """The + lines of this hunk."""
        return [line for line in self.lines if line.kind is LineKind.ADDED]

    def removed_lines(self) -> list[HunkLine]:
        """The - lines of this hunk."""
        return [line for line in self.lines if line.kind is LineKind.REMOVED]

    def is_pure_addition(self) -> bool:
        """True when the hunk only adds lines."""
        return bool(self.added_lines()) and not self.removed_lines()

    def is_pure_removal(self) -> bool:
        """True when the hunk only removes lines."""
        return bool(self.removed_lines()) and not self.added_lines()

    def render(self) -> str:
        """Header plus annotated lines."""
        body = "\n".join(line.render() for line in self.lines)
        return f"{self.header}\n{body}\n"


@dataclass
class FileDiff:
    """All hunks affecting one file."""

    path: str
    hunks: list[Hunk] = field(default_factory=list)

    @property
    def is_modification(self) -> bool:
        """True when the file exists on both sides (``--diff-filter=M``)."""
        return True

    def render(self) -> str:
        """git-style file diff text."""
        header = (f"diff --git a/{self.path} b/{self.path}\n"
                  f"--- a/{self.path}\n"
                  f"+++ b/{self.path}\n")
        return header + "".join(hunk.render() for hunk in self.hunks)

    def changed_new_linenos(self) -> list[int]:
        """New-side line numbers of added lines, in order."""
        numbers: list[int] = []
        for hunk in self.hunks:
            for line in hunk.lines:
                if line.kind is LineKind.ADDED and line.new_lineno is not None:
                    numbers.append(line.new_lineno)
        return numbers


@dataclass
class Patch:
    """A complete patch: one or more file diffs, as produced by git show."""

    files: list[FileDiff] = field(default_factory=list)

    def paths(self) -> list[str]:
        """Paths of all file diffs, in order."""
        return [file_diff.path for file_diff in self.files]

    def file(self, path: str) -> FileDiff:
        """The FileDiff for a path; KeyError when absent."""
        for file_diff in self.files:
            if file_diff.path == path:
                return file_diff
        raise KeyError(path)

    def render(self) -> str:
        """Concatenated file diffs."""
        return "".join(file_diff.render() for file_diff in self.files)

    def stats(self) -> "PatchStats":
        """``git diff --stat``-style totals."""
        insertions = deletions = 0
        for file_diff in self.files:
            for hunk in file_diff.hunks:
                insertions += len(hunk.added_lines())
                deletions += len(hunk.removed_lines())
        return PatchStats(files_changed=len(self.files),
                          insertions=insertions, deletions=deletions)

    @classmethod
    def parse(cls, text: str) -> "Patch":
        """Parse unified-diff text (see parse_patch)."""
        return parse_patch(text)


@dataclass(frozen=True)
class PatchStats:
    """git diff --stat style totals."""
    files_changed: int
    insertions: int
    deletions: int

    def render(self) -> str:
        """The familiar one-line summary."""
        return (f"{self.files_changed} file(s) changed, "
                f"{self.insertions} insertion(s)(+), "
                f"{self.deletions} deletion(s)(-)")


_HUNK_RE = re.compile(
    r"^@@ -(?P<old_start>\d+)(?:,(?P<old_count>\d+))? "
    r"\+(?P<new_start>\d+)(?:,(?P<new_count>\d+))? @@")


def parse_patch(text: str) -> Patch:
    """Parse unified-diff text into a :class:`Patch`.

    Accepts both plain ``diff -u`` output and ``git show`` output (the
    commit-message preamble before the first ``diff --git`` is skipped).
    """
    patch = Patch()
    current_file: FileDiff | None = None
    current_hunk: Hunk | None = None
    old_lineno = new_lineno = 0

    for raw in text.split("\n"):
        if raw.startswith("diff --git "):
            current_file = None
            current_hunk = None
            continue
        if raw.startswith("--- "):
            current_hunk = None
            continue
        if raw.startswith("+++ "):
            path = raw[4:].strip()
            if path.startswith("b/"):
                path = path[2:]
            current_file = FileDiff(path=path)
            patch.files.append(current_file)
            continue
        match = _HUNK_RE.match(raw)
        if match:
            if current_file is None:
                raise PatchFormatError(f"hunk header outside a file diff: {raw!r}")
            current_hunk = Hunk(
                old_start=int(match.group("old_start")),
                old_count=int(match.group("old_count") or "1"),
                new_start=int(match.group("new_start")),
                new_count=int(match.group("new_count") or "1"),
            )
            current_file.hunks.append(current_hunk)
            old_lineno = current_hunk.old_start
            new_lineno = current_hunk.new_start
            # A zero-count side reports the line before the hunk.
            if current_hunk.old_count == 0:
                old_lineno += 1
            if current_hunk.new_count == 0:
                new_lineno += 1
            continue
        if current_hunk is not None and _hunk_complete(current_hunk):
            current_hunk = None
        if current_hunk is None:
            continue  # commit-message preamble or trailing noise
        if raw.startswith("+"):
            current_hunk.lines.append(HunkLine(
                LineKind.ADDED, raw[1:], old_lineno=None, new_lineno=new_lineno))
            new_lineno += 1
        elif raw.startswith("-"):
            current_hunk.lines.append(HunkLine(
                LineKind.REMOVED, raw[1:], old_lineno=old_lineno, new_lineno=None))
            old_lineno += 1
        elif raw.startswith(" ") or raw == "":
            # An empty raw line inside a hunk is a context line whose text
            # is empty (diff tools emit a bare space, but tolerate "").
            text_part = raw[1:] if raw.startswith(" ") else ""
            current_hunk.lines.append(HunkLine(
                LineKind.CONTEXT, text_part,
                old_lineno=old_lineno, new_lineno=new_lineno))
            old_lineno += 1
            new_lineno += 1
        elif raw.startswith("\\"):
            continue  # "\ No newline at end of file"
        else:
            current_hunk = None  # end of hunk block (e.g. next commit header)
    _validate(patch)
    return patch


def _hunk_complete(hunk: Hunk) -> bool:
    old_seen = sum(1 for line in hunk.lines
                   if line.kind in (LineKind.CONTEXT, LineKind.REMOVED))
    new_seen = sum(1 for line in hunk.lines
                   if line.kind in (LineKind.CONTEXT, LineKind.ADDED))
    return old_seen >= hunk.old_count and new_seen >= hunk.new_count


def _validate(patch: Patch) -> None:
    for file_diff in patch.files:
        for hunk in file_diff.hunks:
            old_seen = sum(1 for line in hunk.lines
                           if line.kind in (LineKind.CONTEXT, LineKind.REMOVED))
            new_seen = sum(1 for line in hunk.lines
                           if line.kind in (LineKind.CONTEXT, LineKind.ADDED))
            if old_seen != hunk.old_count or new_seen != hunk.new_count:
                raise PatchFormatError(
                    f"{file_diff.path}: hunk {hunk.header} declares "
                    f"({hunk.old_count},{hunk.new_count}) lines but carries "
                    f"({old_seen},{new_seen})")


def diff_texts(path: str, old: str, new: str, *, context: int = 3,
               ignore_whitespace: bool = False) -> FileDiff | None:
    """Produce a :class:`FileDiff` between two file texts.

    Returns ``None`` when the texts are equal (or, with
    ``ignore_whitespace``, equal modulo whitespace — the ``-w`` behaviour
    the paper's git invocation uses).
    """
    old_lines = [line.rstrip("\n") for line in split_lines_keepends(old)]
    new_lines = [line.rstrip("\n") for line in split_lines_keepends(new)]

    if ignore_whitespace:
        def normalize(line: str) -> str:
            return "".join(line.split())
        matcher = difflib.SequenceMatcher(
            a=[normalize(line) for line in old_lines],
            b=[normalize(line) for line in new_lines], autojunk=False)
    else:
        matcher = difflib.SequenceMatcher(a=old_lines, b=new_lines,
                                          autojunk=False)

    file_diff = FileDiff(path=path)
    for group in matcher.get_grouped_opcodes(context):
        first, last = group[0], group[-1]
        hunk = Hunk(
            old_start=first[1] + 1 if first[2] > first[1] else first[1],
            old_count=last[2] - first[1],
            new_start=first[3] + 1 if first[4] > first[3] else first[3],
            new_count=last[4] - first[3],
        )
        # difflib start for empty ranges needs the "line before" convention.
        if hunk.old_count == 0:
            hunk.old_start = first[1]
        else:
            hunk.old_start = first[1] + 1
        if hunk.new_count == 0:
            hunk.new_start = first[3]
        else:
            hunk.new_start = first[3] + 1
        for tag, i1, i2, j1, j2 in group:
            if tag in ("equal",):
                for offset, line in enumerate(old_lines[i1:i2]):
                    hunk.lines.append(HunkLine(
                        LineKind.CONTEXT, line,
                        old_lineno=i1 + offset + 1,
                        new_lineno=j1 + offset + 1))
            if tag in ("replace", "delete"):
                for offset, line in enumerate(old_lines[i1:i2]):
                    hunk.lines.append(HunkLine(
                        LineKind.REMOVED, line,
                        old_lineno=i1 + offset + 1, new_lineno=None))
            if tag in ("replace", "insert"):
                for offset, line in enumerate(new_lines[j1:j2]):
                    hunk.lines.append(HunkLine(
                        LineKind.ADDED, line,
                        old_lineno=None, new_lineno=j1 + offset + 1))
        file_diff.hunks.append(hunk)
    if not file_diff.hunks:
        return None
    return file_diff


def apply_file_diff(old: str, file_diff: FileDiff) -> str:
    """Apply one file's hunks to its old text, returning the new text.

    Context and removed lines are verified against the old text; any
    mismatch raises :class:`PatchApplyError` (the substrate never fuzzes).
    """
    old_lines = [line.rstrip("\n") for line in split_lines_keepends(old)]
    out: list[str] = []
    cursor = 0  # 0-based index into old_lines
    for hunk in file_diff.hunks:
        anchor = hunk.old_start - 1 if hunk.old_count > 0 else hunk.old_start
        if anchor < cursor or anchor > len(old_lines):
            raise PatchApplyError(
                f"{file_diff.path}: hunk {hunk.header} out of order")
        out.extend(old_lines[cursor:anchor])
        cursor = anchor
        for line in hunk.lines:
            if line.kind is LineKind.ADDED:
                out.append(line.text)
                continue
            if cursor >= len(old_lines):
                raise PatchApplyError(
                    f"{file_diff.path}: hunk {hunk.header} runs past EOF")
            if old_lines[cursor] != line.text:
                raise PatchApplyError(
                    f"{file_diff.path}:{cursor + 1}: expected "
                    f"{line.text!r}, found {old_lines[cursor]!r}")
            if line.kind is LineKind.CONTEXT:
                out.append(line.text)
            cursor += 1
    out.extend(old_lines[cursor:])
    text = "\n".join(out)
    if old.endswith("\n") or not old:
        text += "\n" if out else ""
    return text
