"""Vampyr/Troll-style covering-configuration generation.

Given a file and a configuration model, produce a small set of
configurations whose union lets a static checker (or JMake's compiler)
see every *reachable* conditional branch — the §VI strategy the paper
suggests integrating in §VII: "JMake could be complemented with more
sophisticated configuration generation techniques".

The generator is greedy: starting from the coverage allyesconfig
already gives, it constructs one targeted configuration per uncovered
CONFIGURABLE block (sharing configurations between blocks whose
conditions are compatible).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.blocks import extract_blocks
from repro.analysis.deadblocks import (
    BlockVerdict,
    DeadBlockAnalyzer,
    _literals,
)
from repro.kconfig.ast import Tristate
from repro.kconfig.configfile import Config
from repro.kconfig.model import ConfigModel
from repro.kconfig.solver import allyesconfig, targeted_config


@dataclass
class CoveragePlan:
    """The configurations to try and what each one unlocks."""

    configs: list[Config] = field(default_factory=list)
    #: block start line -> index into configs (or -1 for allyesconfig)
    block_assignments: dict[int, int] = field(default_factory=dict)
    #: blocks no configuration can reach (dead / environment-bound)
    unreachable: list[int] = field(default_factory=list)


def _block_included(presence, config: Config) -> bool:
    return presence is not None and \
        presence.evaluate(config.values) != Tristate.N


def covering_configs(model: ConfigModel, path: str, text: str,
                     *, max_configs: int = 8) -> CoveragePlan:
    """A small configuration set covering the file's reachable blocks."""
    plan = CoveragePlan()
    analyzer = DeadBlockAnalyzer(model)
    baseline = allyesconfig(model)

    for analyzed in analyzer.analyze_file(path, text):
        block = analyzed.block
        if analyzed.verdict in (BlockVerdict.DEAD,
                                BlockVerdict.ENVIRONMENT):
            plan.unreachable.append(block.start)
            continue
        presence = block.presence
        if _block_included(presence, baseline):
            plan.block_assignments[block.start] = -1
            continue
        # Try an already-generated configuration first.
        reused = False
        for index, config in enumerate(plan.configs):
            if _block_included(presence, config):
                plan.block_assignments[block.start] = index
                reused = True
                break
        if reused:
            continue
        literals = _literals(presence) if presence is not None else None
        if literals is None:
            plan.unreachable.append(block.start)
            continue
        positive, negative = literals
        config = targeted_config(model, positive, negative,
                                 name=f"cover-{path}:{block.start}")
        if config is None or len(plan.configs) >= max_configs:
            plan.unreachable.append(block.start)
            continue
        plan.configs.append(config)
        plan.block_assignments[block.start] = len(plan.configs) - 1
    return plan
