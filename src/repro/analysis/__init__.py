"""Variability analysis: the §VI related-work tools, reimplemented.

- :mod:`repro.analysis.blocks` — conditional-block extraction with
  presence conditions (the structure SuperC/TypeChef-style parsers
  expose);
- :mod:`repro.analysis.deadblocks` — Undertaker-style dead/undead block
  detection against the Kconfig model;
- :mod:`repro.analysis.covergen` — Vampyr/Troll-style generation of a
  small configuration set that covers a file's conditional branches,
  usable as JMake's §VII configuration-generation extension.
"""

from repro.analysis.blocks import BlockCondition, ConditionalBlock, extract_blocks
from repro.analysis.covergen import covering_configs
from repro.analysis.deadblocks import BlockVerdict, DeadBlockAnalyzer

__all__ = [
    "BlockCondition",
    "BlockVerdict",
    "ConditionalBlock",
    "DeadBlockAnalyzer",
    "ConditionalBlock",
    "covering_configs",
    "extract_blocks",
]
