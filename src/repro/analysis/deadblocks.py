"""Undertaker-style dead/undead block detection (§VI related work).

The Undertaker "analyzes the interdependencies between configuration
variables and identifies ... blocks of code that are undead or dead,
i.e., that depend on a composition of values of configuration variables
that represents a tautology or a contradiction". This analyzer does the
same against our Kconfig model:

- **DEAD**: no configuration the model admits can include the block —
  the condition references a symbol no Kconfig defines, is ``#if 0``,
  or is unsatisfiable under the dependency graph;
- **UNDEAD**: every configuration includes it (``#if 1``, or the
  negation of an undefined symbol);
- **CONFIGURABLE**: some configurations include it, some do not;
- **ENVIRONMENT**: depends on non-config facts (``MODULE``, arch
  builtins) that Kconfig cannot decide.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.analysis.blocks import (
    BlockCondition,
    ConditionalBlock,
    extract_blocks,
)
from repro.kconfig.ast import (
    AndExpr,
    ConstExpr,
    Expr,
    NotExpr,
    OrExpr,
    SymbolRef,
    Tristate,
)
from repro.kconfig.model import ConfigModel
from repro.kconfig.solver import targeted_config


class BlockVerdict(Enum):
    """Reachability classification of one conditional branch."""
    DEAD = "dead"
    UNDEAD = "undead"
    CONFIGURABLE = "configurable"
    #: unreachable in the primary model but reachable under another
    #: architecture's Kconfig — the population JMake rescues with
    #: cross-compilation (§V-B)
    ARCH_DEPENDENT = "arch-dependent"
    ENVIRONMENT = "environment"


@dataclass
class AnalyzedBlock:
    """A block together with its verdict and a human-readable reason."""
    block: ConditionalBlock
    verdict: BlockVerdict
    reason: str


def _literals(expr: Expr) -> "tuple[set[str], set[str]] | None":
    """Split a conjunction into (positive, negative) symbol sets.

    Returns None for disjunctions or other shapes (handled
    conservatively as CONFIGURABLE).
    """
    positive: set[str] = set()
    negative: set[str] = set()

    def walk(node: Expr) -> bool:
        if isinstance(node, AndExpr):
            return walk(node.left) and walk(node.right)
        if isinstance(node, SymbolRef):
            positive.add(node.name)
            return True
        if isinstance(node, NotExpr) and isinstance(node.operand,
                                                    SymbolRef):
            negative.add(node.operand.name)
            return True
        if isinstance(node, ConstExpr):
            return node.value != Tristate.N or False
        if isinstance(node, OrExpr):
            return False
        return False

    if not walk(expr):
        return None
    return positive, negative


class DeadBlockAnalyzer:
    """Dead/undead classification against one primary model.

    ``extra_models`` (name -> model) widens the search the way the real
    Undertaker unions all architectures' variability models: a block the
    primary model cannot reach but another architecture's Kconfig can is
    ARCH_DEPENDENT, not DEAD.
    """

    def __init__(self, model: ConfigModel,
                 extra_models: "dict[str, ConfigModel] | None" = None
                 ) -> None:
        self._model = model
        self._extra_models = dict(extra_models or {})

    def analyze_file(self, path: str, text: str) -> list[AnalyzedBlock]:
        """Classify every conditional branch of one file."""
        return [self.classify(block)
                for block in extract_blocks(path, text)]

    def _reachable_elsewhere(self, positive: "set[str]",
                             negative: "set[str]") -> str | None:
        for name, model in self._extra_models.items():
            if any(symbol not in model for symbol in positive):
                continue
            if targeted_config(model, positive, negative) is not None:
                return name
        return None

    def classify(self, block: ConditionalBlock) -> AnalyzedBlock:
        """Classify one extracted block against the model(s)."""
        if block.condition_kind is BlockCondition.ENVIRONMENT or \
                (block.presence is None and
                 block.condition_kind is not BlockCondition.CONSTANT):
            return AnalyzedBlock(block, BlockVerdict.ENVIRONMENT,
                                 f"depends on {', '.join(block.atoms) or 'non-config state'}")
        presence = block.presence
        if presence is None:
            return AnalyzedBlock(block, BlockVerdict.ENVIRONMENT,
                                 "nested under non-config condition")
        if isinstance(presence, ConstExpr):
            if presence.value == Tristate.N:
                return AnalyzedBlock(block, BlockVerdict.DEAD, "#if 0")
            return AnalyzedBlock(block, BlockVerdict.UNDEAD, "#if 1")

        literals = _literals(presence)
        if literals is None:
            return AnalyzedBlock(block, BlockVerdict.CONFIGURABLE,
                                 "disjunctive condition (not analyzed)")
        positive, negative = literals

        if positive & negative:
            clash = sorted(positive & negative)[0]
            return AnalyzedBlock(
                block, BlockVerdict.DEAD,
                f"contradiction: CONFIG_{clash} && !CONFIG_{clash}")
        undefined_positive = [name for name in sorted(positive)
                              if name not in self._model]
        if undefined_positive:
            elsewhere = self._reachable_elsewhere(positive, negative)
            if elsewhere is not None:
                return AnalyzedBlock(
                    block, BlockVerdict.ARCH_DEPENDENT,
                    f"reachable under the {elsewhere} model")
            return AnalyzedBlock(
                block, BlockVerdict.DEAD,
                f"CONFIG_{undefined_positive[0]} is never defined "
                f"by any Kconfig")
        config = targeted_config(self._model, positive, negative)
        if config is None:
            elsewhere = self._reachable_elsewhere(positive, negative)
            if elsewhere is not None:
                return AnalyzedBlock(
                    block, BlockVerdict.ARCH_DEPENDENT,
                    f"reachable under the {elsewhere} model")
            return AnalyzedBlock(
                block, BlockVerdict.DEAD,
                "dependencies make the condition unsatisfiable")
        # Satisfiable. Tautology check: can the block also be excluded?
        if not positive and negative and \
                all(name not in self._model for name in negative):
            return AnalyzedBlock(
                block, BlockVerdict.UNDEAD,
                "negation of symbols no Kconfig defines")
        return AnalyzedBlock(block, BlockVerdict.CONFIGURABLE,
                             "reachable under some configurations")
