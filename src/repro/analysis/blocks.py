"""Conditional-block extraction with presence conditions.

Walks a source file's preprocessor structure and produces one
:class:`ConditionalBlock` per branch, carrying a *presence condition*:
what must hold, in terms of ``CONFIG_*`` symbols, for the branch's lines
to reach the compiler. Conditions nest (a block inside another inherits
its parent's condition) and ``#else`` branches negate their siblings.

Conditions outside the CONFIG vocabulary are kept honest rather than
guessed: ``#ifdef MODULE`` and arch builtins become *opaque atoms* that
the dead-block analyzer reports as environment-dependent instead of
mis-solving them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

from repro.kconfig.ast import (
    AndExpr,
    ConstExpr,
    Expr,
    NotExpr,
    SymbolRef,
    Tristate,
)


class BlockCondition(Enum):
    """How solvable a block's own condition is."""

    CONFIG = "config"        # pure CONFIG_* expression
    CONSTANT = "constant"    # #if 0 / #if 1
    ENVIRONMENT = "environment"  # MODULE, __arch__, other non-config
    OPAQUE = "opaque"        # an #if expression we do not model


@dataclass
class ConditionalBlock:
    """One branch of a conditional group, with its presence condition."""
    path: str
    start: int                  # line of the opening directive
    end: int                    # line of the matching #endif (or #else)
    directive: str              # ifdef | ifndef | if | elif | else
    condition_kind: BlockCondition
    #: presence condition over CONFIG symbols (names without prefix);
    #: None when any enclosing condition is non-CONFIG
    presence: Expr | None
    #: opaque atoms involved (e.g. "MODULE", "__arm__")
    atoms: list[str] = field(default_factory=list)
    body_lines: list[int] = field(default_factory=list)

    def covers(self, lineno: int) -> bool:
        """True when the branch body contains the given 1-based line."""
        return lineno in self.body_lines


_IFDEF_RE = re.compile(r"^#\s*(ifdef|ifndef)\s+(\w+)\s*$")
_IF_RE = re.compile(r"^#\s*(if|elif)\s+(.+?)\s*$")
_DEFINED_RE = re.compile(r"defined\s*\(\s*CONFIG_(\w+)\s*\)")
_BARE_CONFIG_RE = re.compile(r"\bCONFIG_(\w+)\b")


def _translate_symbol(name: str) -> tuple[Expr | None, BlockCondition,
                                          list[str]]:
    if name.startswith("CONFIG_"):
        return SymbolRef(name[len("CONFIG_"):]), BlockCondition.CONFIG, []
    return None, BlockCondition.ENVIRONMENT, [name]


def _translate_if(expression: str) -> tuple[Expr | None, BlockCondition,
                                            list[str]]:
    text = expression.strip()
    if text == "0":
        return ConstExpr(Tristate.N), BlockCondition.CONSTANT, []
    if text == "1":
        return ConstExpr(Tristate.Y), BlockCondition.CONSTANT, []
    # Single defined(CONFIG_X) / bare CONFIG_X forms, possibly negated.
    negated = False
    inner = text
    while inner.startswith("!"):
        negated = not negated
        inner = inner[1:].strip()
        if inner.startswith("(") and inner.endswith(")"):
            inner = inner[1:-1].strip()
    match = _DEFINED_RE.fullmatch(inner) or \
        re.fullmatch(r"CONFIG_(\w+)", inner)
    if match:
        expr: Expr = SymbolRef(match.group(1))
        if negated:
            expr = NotExpr(expr)
        return expr, BlockCondition.CONFIG, []
    # Conjunctions of defined(CONFIG_*) atoms.
    parts = [part.strip() for part in text.split("&&")]
    if len(parts) > 1:
        exprs = []
        for part in parts:
            sub, kind, _ = _translate_if(part)
            if kind is not BlockCondition.CONFIG or sub is None:
                break
            exprs.append(sub)
        else:
            combined = exprs[0]
            for sub in exprs[1:]:
                combined = AndExpr(combined, sub)
            return combined, BlockCondition.CONFIG, []
    atoms = _BARE_CONFIG_RE.findall(text)
    return None, BlockCondition.OPAQUE, atoms


def extract_blocks(path: str, text: str) -> list[ConditionalBlock]:
    """All conditional branches of a file, with presence conditions."""
    blocks: list[ConditionalBlock] = []
    # stack entries: (open_block, prior_branch_negations, parent_presence)
    stack: list[dict] = []

    def combined_presence(own: Expr | None,
                          frame: dict) -> Expr | None:
        """AND of parent presence, sibling negations, and own."""
        parts: list[Expr] = []
        parent = frame["parent_presence"]
        if parent is not None:
            parts.append(parent)
        elif frame["parent_opaque"]:
            return None
        for sibling in frame["negations"]:
            if sibling is None:
                return None
            parts.append(NotExpr(sibling))
        if own is None:
            return None
        parts.append(own)
        combined = parts[0]
        for part in parts[1:]:
            combined = AndExpr(combined, part)
        return combined

    def parent_state() -> tuple[Expr | None, bool]:
        if not stack:
            return None, False
        current = stack[-1]["current"]
        if current is None:
            return None, True
        return current.presence, current.presence is None

    for lineno, raw in enumerate(text.split("\n"), start=1):
        stripped = raw.strip()
        match = _IFDEF_RE.match(stripped)
        if match:
            directive, name = match.groups()
            own, kind, atoms = _translate_symbol(name)
            if own is not None and directive == "ifndef":
                own = NotExpr(own)
            parent_presence, parent_opaque = parent_state()
            frame = {"negations": [], "parent_presence": parent_presence,
                     "parent_opaque": parent_opaque, "own": own,
                     "current": None}
            block = ConditionalBlock(
                path=path, start=lineno, end=lineno, directive=directive,
                condition_kind=kind,
                presence=combined_presence(own, frame),
                atoms=atoms)
            blocks.append(block)
            frame["current"] = block
            stack.append(frame)
            continue
        match = _IF_RE.match(stripped)
        if match:
            directive, expression = match.groups()
            own, kind, atoms = _translate_if(expression)
            if directive == "if":
                parent_presence, parent_opaque = parent_state()
                frame = {"negations": [], "parent_presence": parent_presence,
                         "parent_opaque": parent_opaque, "own": own,
                         "current": None}
                block = ConditionalBlock(
                    path=path, start=lineno, end=lineno,
                    directive=directive, condition_kind=kind,
                    presence=combined_presence(own, frame), atoms=atoms)
                blocks.append(block)
                frame["current"] = block
                stack.append(frame)
            else:  # elif
                if not stack:
                    continue
                frame = stack[-1]
                if frame["current"] is not None:
                    frame["current"].end = lineno
                frame["negations"].append(frame["own"])
                frame["own"] = own
                block = ConditionalBlock(
                    path=path, start=lineno, end=lineno,
                    directive="elif", condition_kind=kind,
                    presence=combined_presence(own, frame), atoms=atoms)
                blocks.append(block)
                frame["current"] = block
            continue
        if stripped.startswith("#else"):
            if not stack:
                continue
            frame = stack[-1]
            if frame["current"] is not None:
                frame["current"].end = lineno
            frame["negations"].append(frame["own"])
            frame["own"] = ConstExpr(Tristate.Y)
            kind = BlockCondition.CONFIG \
                if all(n is not None for n in frame["negations"]) \
                else BlockCondition.ENVIRONMENT
            block = ConditionalBlock(
                path=path, start=lineno, end=lineno, directive="else",
                condition_kind=kind,
                presence=combined_presence(ConstExpr(Tristate.Y), frame),
                atoms=[])
            blocks.append(block)
            frame["current"] = block
            continue
        if stripped.startswith("#endif"):
            if stack:
                frame = stack.pop()
                if frame["current"] is not None:
                    frame["current"].end = lineno
            continue
        if stack and stripped:
            current = stack[-1]["current"]
            if current is not None:
                current.body_lines.append(lineno)
    return blocks
