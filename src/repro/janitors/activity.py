"""Per-developer activity metrics from commit history.

For each developer between two refs, §IV collects:

- the number of patches contributed;
- the number of *subsystems* touched, proxied by MAINTAINERS entries
  matching the patched files;
- the number of designated *mailing lists* for those files (coarser,
  since related entries share lists);
- the share of patches for which the developer is a listed maintainer
  of some touched file;
- the *coefficient of variation* (std/mean) of the number of patches
  touching each file the developer ever touched — low cv means uniform,
  breadth-first work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.kernel.maintainers import MaintainersDb
from repro.vcs.repository import LogOptions, Repository


@dataclass
class DeveloperActivity:
    """One developer's §IV metrics over a history window."""
    name: str
    email: str
    patches: int = 0
    subsystems: set[str] = field(default_factory=set)
    lists: set[str] = field(default_factory=set)
    maintainer_patches: int = 0
    #: path -> number of this developer's patches touching it
    file_touches: dict[str, int] = field(default_factory=dict)

    @property
    def maintainer_share(self) -> float:
        """Fraction of patches touching files this developer maintains."""
        if self.patches == 0:
            return 0.0
        return self.maintainer_patches / self.patches

    @property
    def file_cv(self) -> float:
        """std/mean of per-file patch counts (population std)."""
        counts = list(self.file_touches.values())
        if not counts:
            return 0.0
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        variance = sum((count - mean) ** 2 for count in counts) / len(counts)
        return math.sqrt(variance) / mean


class ActivityAnalyzer:
    """Computes DeveloperActivity records from a repository."""
    def __init__(self, repository: Repository,
                 maintainers: MaintainersDb) -> None:
        self._repository = repository
        self._maintainers = maintainers

    def analyze(self, since: str | None = None, until: str | None = None,
                options: LogOptions | None = None
                ) -> dict[str, DeveloperActivity]:
        """Activity per developer email over the given window."""
        activities: dict[str, DeveloperActivity] = {}
        for commit in self._repository.log(since=since, until=until,
                                           options=options):
            email = commit.author.email
            activity = activities.get(email)
            if activity is None:
                activity = DeveloperActivity(name=commit.author.name,
                                             email=email)
                activities[email] = activity
            patch = self._repository.show(commit)
            paths = patch.paths()
            if not paths:
                continue
            activity.patches += 1
            is_maintainer_patch = False
            for path in paths:
                activity.file_touches[path] = \
                    activity.file_touches.get(path, 0) + 1
                for entry in self._maintainers.entries_for_path(path):
                    activity.subsystems.add(entry.name)
                    activity.lists.update(entry.lists)
                    if email in entry.maintainer_emails():
                        is_maintainer_patch = True
            if is_maintainer_patch:
                activity.maintainer_patches += 1
        return activities

    def patch_count(self, email: str, since: str | None = None,
                    until: str | None = None) -> int:
        """Number of patches by one developer in a window."""
        count = 0
        for commit in self._repository.log(since=since, until=until):
            if commit.author.email == email:
                count += 1
        return count
