"""Janitor identification: Table I thresholds + the cv ranking.

The procedure (§IV):

1. select developers passing the Table I thresholds over the long
   history window (v3.0..v4.4): ≥10 patches, ≥20 subsystems, ≥3
   mailing lists, <5% maintainer patches;
2. additionally require ≥20 patches inside the evaluation window
   (v4.3..v4.4) so the experiment has enough janitor patches;
3. rank by the per-file coefficient of variation, ascending (uniform,
   breadth-first work first), and take the top N (the paper takes 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.janitors.activity import ActivityAnalyzer, DeveloperActivity
from repro.kernel.maintainers import MaintainersDb
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class JanitorCriteria:
    """Table I, plus the evaluation-window activity floor."""

    min_patches: int = 10
    min_subsystems: int = 20
    min_lists: int = 3
    max_maintainer_share: float = 0.05
    min_eval_window_patches: int = 20
    top_n: int = 10

    def passes(self, activity: DeveloperActivity) -> bool:
        """True when the activity clears every Table I threshold."""
        return (activity.patches >= self.min_patches
                and len(activity.subsystems) >= self.min_subsystems
                and len(activity.lists) >= self.min_lists
                and activity.maintainer_share < self.max_maintainer_share)


@dataclass
class RankedDeveloper:
    """One Table II row."""

    name: str
    email: str
    patches: int
    subsystems: int
    lists: int
    maintainer_share: float
    file_cv: float
    eval_window_patches: int = 0

    def as_row(self) -> list[str]:
        """Table II cell values for this developer."""
        return [self.name, str(self.patches), str(self.subsystems),
                str(self.lists), f"{self.maintainer_share:.0%}",
                f"{self.file_cv:.2f}"]


class JanitorFinder:
    """Applies Table I thresholds and the cv ranking (§IV)."""
    def __init__(self, repository: Repository, maintainers: MaintainersDb,
                 criteria: JanitorCriteria | None = None) -> None:
        self._repository = repository
        self._maintainers = maintainers
        self.criteria = criteria or JanitorCriteria()
        self._analyzer = ActivityAnalyzer(repository, maintainers)

    def identify(self, *, history_since: str | None,
                 history_until: str | None,
                 eval_since: str | None,
                 eval_until: str | None) -> list[RankedDeveloper]:
        """The Table II procedure. Returns the top-N ranked developers."""
        activities = self._analyzer.analyze(since=history_since,
                                            until=history_until)
        eval_counts: dict[str, int] = {}
        for commit in self._repository.log(since=eval_since,
                                           until=eval_until):
            eval_counts[commit.author.email] = \
                eval_counts.get(commit.author.email, 0) + 1

        qualified: list[RankedDeveloper] = []
        for email, activity in activities.items():
            if not self.criteria.passes(activity):
                continue
            window_patches = eval_counts.get(email, 0)
            if window_patches < self.criteria.min_eval_window_patches:
                continue
            qualified.append(RankedDeveloper(
                name=activity.name,
                email=email,
                patches=activity.patches,
                subsystems=len(activity.subsystems),
                lists=len(activity.lists),
                maintainer_share=activity.maintainer_share,
                file_cv=activity.file_cv,
                eval_window_patches=window_patches,
            ))
        qualified.sort(key=lambda dev: (dev.file_cv, dev.email))
        return qualified[:self.criteria.top_n]

    def janitor_emails(self, **windows) -> set[str]:
        """Convenience: the identified developers' emails."""
        return {dev.email for dev in self.identify(**windows)}
