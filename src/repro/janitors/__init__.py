"""Janitor identification (paper §IV).

- :mod:`repro.janitors.activity` — per-developer activity metrics from
  commit history and MAINTAINERS (patch count, subsystems, lists,
  maintainer share, per-file coefficient of variation);
- :mod:`repro.janitors.identify` — Table I thresholds and the cv
  ranking that produces Table II.
"""

from repro.janitors.activity import ActivityAnalyzer, DeveloperActivity
from repro.janitors.identify import (
    JanitorCriteria,
    JanitorFinder,
    RankedDeveloper,
)

__all__ = [
    "ActivityAnalyzer",
    "DeveloperActivity",
    "JanitorCriteria",
    "JanitorFinder",
    "RankedDeveloper",
]
