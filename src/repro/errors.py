"""Exception hierarchy for the JMake reproduction.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch one base type at API boundaries while tests can assert on precise
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class VcsError(ReproError):
    """Raised by the version-control substrate (bad refs, bad objects)."""


class PatchFormatError(VcsError):
    """Raised when unified-diff text cannot be parsed."""


class PatchApplyError(VcsError):
    """Raised when a patch does not apply to the given source text."""


class PreprocessorError(ReproError):
    """Raised by the C preprocessor substrate.

    Carries the file and line of the offending directive when known.
    """

    def __init__(self, message: str, *, file: str | None = None,
                 line: int | None = None) -> None:
        location = ""
        if file is not None:
            location = f"{file}:{line if line is not None else '?'}: "
        super().__init__(f"{location}{message}")
        self.file = file
        self.line = line


class IncludeNotFoundError(PreprocessorError):
    """Raised when an ``#include`` target cannot be resolved."""


class MacroError(PreprocessorError):
    """Raised on malformed macro definitions or expansions."""


class CompileError(ReproError):
    """Raised by the compiler front end when a translation unit is invalid.

    ``diagnostics`` holds the individual :class:`repro.cc.compiler.Diagnostic`
    records that caused the failure.
    """

    def __init__(self, message: str, diagnostics: list | None = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class ToolchainError(ReproError):
    """Raised when a requested cross-toolchain is unavailable."""


class KconfigError(ReproError):
    """Raised on malformed Kconfig input or unsatisfiable constraints."""


class KbuildError(ReproError):
    """Raised by the build orchestrator (missing Makefile, bad target)."""


class MakefileNotFoundError(KbuildError):
    """Raised when no Kbuild Makefile governs a source file."""


class FaultPlanError(ReproError):
    """Raised on malformed fault-injection plans (``--fault-plan``)."""


class WorkloadError(ReproError):
    """Raised by the synthetic corpus generator on inconsistent specs."""


class EvaluationError(ReproError):
    """Raised by the evaluation harness on malformed experiment requests."""


class SchemaError(ReproError):
    """Raised on serialized records that cannot be migrated to the
    current ``schema_version`` (unknown or future versions)."""


class ServiceError(ReproError):
    """Base class for check-service failures."""


class ServiceOverloadedError(ServiceError):
    """Raised when admission control rejects a request (queue full).

    Carries structured context so callers can distinguish overload from
    other submit failures and log something actionable: the admission
    ``queue_depth`` at rejection time, the configured ``limit``, and the
    ``shard_id`` of the deepest shard queue (None before the pool
    starts).
    """

    def __init__(self, message: str, *,
                 queue_depth: int = 0,
                 limit: int = 0,
                 shard_id: "int | None" = None) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.limit = limit
        self.shard_id = shard_id


#: preferred name for the typed overload rejection (same class; the
#: historical ``ServiceOverloadedError`` spelling remains an alias)
ServiceOverloadError = ServiceOverloadedError


class ServiceDrainingError(ServiceError):
    """Raised when a request arrives after shutdown/drain began."""


class WorkerCrashError(ServiceError):
    """Raised inside a shard worker when an injected ``worker_crash``
    fault kills it; the supervisor treats the dead task as a crashed
    worker process."""


class TransportError(ServiceError):
    """Base class for shard-transport failures (worker processes,
    sockets, framing above the journal layer)."""


class WorkerLostError(TransportError):
    """Raised when a remote shard worker dies or its connection drops
    while work is in flight. Carries the worker index and how many
    assignments were requeued so supervision tests can assert on the
    recovery path.
    """

    def __init__(self, message: str, *, worker_id: int = -1,
                 requeued: int = 0) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.requeued = requeued


class AuthError(TransportError):
    """Raised when the shared-key HMAC challenge/response handshake
    fails: the coordinator rejects the HELLO with a typed error frame
    and the worker surfaces it as this class (never retried — a wrong
    key cannot become right by reconnecting)."""


class CorpusMismatchError(TransportError):
    """Raised when a connecting worker's rebuilt corpus does not match
    the coordinator's fingerprint (head commit id). Checking commits
    against a different corpus would silently break byte-identity, so
    the session is refused instead.
    """

    def __init__(self, message: str, *, expected: str = "",
                 actual: str = "") -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class WireError(TransportError):
    """Base class for wire-codec failures (framing + message schema)."""


class FrameTruncatedError(WireError):
    """Raised when a byte buffer ends inside a frame (header or
    payload cut short). The streaming decoder treats this as "wait for
    more bytes"; the one-shot decoder surfaces it as corruption of a
    supposedly complete message.
    """

    def __init__(self, message: str, *, needed: int = 0,
                 have: int = 0) -> None:
        super().__init__(message)
        self.needed = needed
        self.have = have


class FrameCorruptError(WireError):
    """Raised on a structurally damaged frame: bad magic, unknown wire
    version, CRC32 mismatch, or an undecodable payload. ``offset`` is
    the byte offset of the bad frame within the buffer fed so far."""

    def __init__(self, message: str, *, offset: int = 0) -> None:
        super().__init__(message)
        self.offset = offset


class FrameTooLargeError(WireError):
    """Raised when a frame header declares a payload larger than
    ``repro.service.transport.wire.MAX_FRAME_BYTES`` — a corrupt length
    field would otherwise stall the stream waiting for gigabytes."""

    def __init__(self, message: str, *, declared: int = 0,
                 limit: int = 0) -> None:
        super().__init__(message)
        self.declared = declared
        self.limit = limit


class WireSchemaError(WireError):
    """Raised when a well-framed payload fails message validation:
    unknown message type, missing fields, or a record whose
    ``schema_version`` the codec does not speak."""


class SimulatedCrashError(ReproError):
    """Raised by the chaos harness to model sudden process death
    (power loss, OOM kill) at a deterministic point. Production code
    never catches it — that is the point: whatever was not yet durable
    when it fires is what a real crash would lose."""


class StoreError(ReproError):
    """Raised by the persistent verdict store (fleet mode): unusable
    database files, identity mismatches between a store and the journal
    feeding it, or malformed query filters."""


class JournalError(ReproError):
    """Base class for write-ahead journal failures."""


class JournalCorruptError(JournalError):
    """Raised when journal replay meets a corrupted *interior* record
    (CRC mismatch with valid data after it). A torn *final* record is
    the expected crash signature and is truncated instead.

    ``offset`` is the byte offset of the bad frame; ``path`` the
    journal file.
    """

    def __init__(self, message: str, *, path: str = "",
                 offset: int = 0) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset
