"""Exception hierarchy for the JMake reproduction.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch one base type at API boundaries while tests can assert on precise
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class VcsError(ReproError):
    """Raised by the version-control substrate (bad refs, bad objects)."""


class PatchFormatError(VcsError):
    """Raised when unified-diff text cannot be parsed."""


class PatchApplyError(VcsError):
    """Raised when a patch does not apply to the given source text."""


class PreprocessorError(ReproError):
    """Raised by the C preprocessor substrate.

    Carries the file and line of the offending directive when known.
    """

    def __init__(self, message: str, *, file: str | None = None,
                 line: int | None = None) -> None:
        location = ""
        if file is not None:
            location = f"{file}:{line if line is not None else '?'}: "
        super().__init__(f"{location}{message}")
        self.file = file
        self.line = line


class IncludeNotFoundError(PreprocessorError):
    """Raised when an ``#include`` target cannot be resolved."""


class MacroError(PreprocessorError):
    """Raised on malformed macro definitions or expansions."""


class CompileError(ReproError):
    """Raised by the compiler front end when a translation unit is invalid.

    ``diagnostics`` holds the individual :class:`repro.cc.compiler.Diagnostic`
    records that caused the failure.
    """

    def __init__(self, message: str, diagnostics: list | None = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class ToolchainError(ReproError):
    """Raised when a requested cross-toolchain is unavailable."""


class KconfigError(ReproError):
    """Raised on malformed Kconfig input or unsatisfiable constraints."""


class KbuildError(ReproError):
    """Raised by the build orchestrator (missing Makefile, bad target)."""


class MakefileNotFoundError(KbuildError):
    """Raised when no Kbuild Makefile governs a source file."""


class FaultPlanError(ReproError):
    """Raised on malformed fault-injection plans (``--fault-plan``)."""


class WorkloadError(ReproError):
    """Raised by the synthetic corpus generator on inconsistent specs."""


class EvaluationError(ReproError):
    """Raised by the evaluation harness on malformed experiment requests."""


class SchemaError(ReproError):
    """Raised on serialized records that cannot be migrated to the
    current ``schema_version`` (unknown or future versions)."""


class ServiceError(ReproError):
    """Base class for check-service failures."""


class ServiceOverloadedError(ServiceError):
    """Raised when admission control rejects a request (queue full)."""


class ServiceDrainingError(ServiceError):
    """Raised when a request arrives after shutdown/drain began."""
