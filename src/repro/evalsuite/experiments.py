"""In-text statistics of §V and the experiment registry.

Every numbered artifact of DESIGN.md's per-experiment index resolves to
a function here; the benchmark harness calls these and prints the same
rows/series the paper reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro.core.report import FileStatus
from repro.evalsuite.figures import (
    describe_figure,
    figure4a_config_times,
    figure4b_i_times,
    figure4c_o_times,
    figure5_overall,
    figure6_janitor_overall,
)
from repro.evalsuite.runner import EvaluationResult
from repro.evalsuite.stats import Share


# -- E-S1: choice of architecture (§V-B) -----------------------------------

def architecture_stats(result: EvaluationResult) -> dict:
    """E-S1: architecture-choice statistics (§V-B)."""
    stats: dict = {}
    for janitor_only, key in ((False, "all"), (True, "janitor")):
        instances = [record for record in
                     result.file_instances(janitor_only=janitor_only)
                     if record.useful_archs]
        total = len(instances)
        x86 = sum(1 for record in instances
                  if "x86_64" in record.useful_archs)
        arch_counter: Counter = Counter()
        for record in instances:
            for arch in record.useful_archs:
                if arch != "x86_64":
                    arch_counter[arch] += 1
        non_host_c = sum(1 for record in instances
                         if record.is_c and record.needed_non_host_arch)
        non_host_h = sum(1 for record in instances
                         if record.is_h and record.needed_non_host_arch)
        stats[key] = {
            "instances_with_coverage": total,
            "x86_64_beneficial": Share(x86, total),
            "other_arch_frequency": arch_counter.most_common(),
            "non_host_only_c_instances": non_host_c,
            "non_host_only_h_instances": non_host_h,
        }
    certified = [patch for patch in result.patches if patch.certified]
    with_defconfig = sum(
        1 for patch in certified
        if any(record.used_defconfig for record in patch.files))
    stats["certified_patches"] = Share(len(certified),
                                       len(result.patches))
    stats["certified_needing_defconfig"] = with_defconfig
    return stats


def render_architecture_stats(stats: dict) -> str:
    """Text rendering of E-S1."""
    lines = ["Architecture choice (E-S1)"]
    for key in ("all", "janitor"):
        sub = stats[key]
        lines.append(f"  [{key}] x86_64 beneficial for "
                     f"{sub['x86_64_beneficial'].render()} of instances "
                     f"with coverage")
        if sub["other_arch_frequency"]:
            arch, count = sub["other_arch_frequency"][0]
            lines.append(f"  [{key}] next most beneficial arch: {arch} "
                         f"({count} instances)")
        lines.append(f"  [{key}] instances benefiting only from a "
                     f"non-host arch: .c={sub['non_host_only_c_instances']}"
                     f" .h={sub['non_host_only_h_instances']}")
    lines.append(f"  certified patches: "
                 f"{stats['certified_patches'].render()}; of which "
                 f"{stats['certified_needing_defconfig']} needed a "
                 f"configs/ defconfig")
    return "\n".join(lines)


# -- E-S2: properties of mutations (§V-B) -----------------------------------

def mutation_stats(result: EvaluationResult) -> dict:
    """E-S2: mutation-count statistics (§V-B)."""
    stats: dict = {}
    for janitor_only, who in ((False, "all"), (True, "janitor")):
        for suffix, kind in ((".c", "c"), (".h", "h")):
            instances = [record for record in result.file_instances(
                janitor_only=janitor_only, suffix=suffix)
                if record.mutation_count > 0]
            total = len(instances)
            one = sum(1 for record in instances
                      if record.mutation_count == 1)
            three = sum(1 for record in instances
                        if record.mutation_count <= 3)
            most = max((record.mutation_count for record in instances),
                       default=0)
            stats[f"{who}_{kind}"] = {
                "total": total,
                "one_mutation": Share(one, total),
                "at_most_three": Share(three, total),
                "max_mutations": most,
            }
    return stats


def render_mutation_stats(stats: dict) -> str:
    """Text rendering of E-S2."""
    lines = ["Mutation counts (E-S2)"]
    for key, sub in stats.items():
        lines.append(
            f"  [{key}] one mutation: {sub['one_mutation'].render()}, "
            f"<=3: {sub['at_most_three'].render()}, "
            f"max: {sub['max_mutations']}")
    return "\n".join(lines)


# -- E-S3: benefits of mutations for .c files ---------------------------------

def cfile_benefit_stats(result: EvaluationResult) -> dict:
    """E-S3: .c benefit statistics (§V-B)."""
    stats: dict = {}
    for janitor_only, who in ((False, "all"), (True, "janitor")):
        instances = result.file_instances(janitor_only=janitor_only,
                                          suffix=".c")
        total = len(instances)
        confirmed_first = sum(
            1 for record in instances
            if record.first_clean_covers_all
            or record.status is FileStatus.COMMENT_ONLY)
        insidious = [record for record in instances
                     if record.insidious_under_allyes]
        rescued = [record for record in insidious
                   if record.status is FileStatus.OK]
        never = [record for record in insidious
                 if record.status is FileStatus.LINES_NOT_COMPILED]
        stats[who] = {
            "total_instances": total,
            "confirmed_first_compile": Share(confirmed_first, total),
            "insidious": Share(len(insidious), total),
            "rescued_by_other_configs": len(rescued),
            "never_rescued": len(never),
        }
    return stats


def render_cfile_benefit_stats(stats: dict) -> str:
    """Text rendering of E-S3."""
    lines = ["Benefits of mutations for .c files (E-S3)"]
    for who, sub in stats.items():
        lines.append(
            f"  [{who}] all lines compiled at first error-free build: "
            f"{sub['confirmed_first_compile'].render()}")
        lines.append(
            f"  [{who}] insidious (clean allyesconfig build missed "
            f"lines): {sub['insidious'].render()}; rescued by other "
            f"configs: {sub['rescued_by_other_configs']}, never: "
            f"{sub['never_rescued']}")
    return "\n".join(lines)


# -- E-S4: benefits for .h files ------------------------------------------------

def hfile_benefit_stats(result: EvaluationResult) -> dict:
    """E-S4: .h benefit statistics (§V-B)."""
    stats: dict = {}
    for janitor_only, who in ((False, "all"), (True, "janitor")):
        instances = result.file_instances(janitor_only=janitor_only,
                                          suffix=".h")
        total = len(instances)
        free = sum(1 for record in instances
                   if record.status in (FileStatus.OK,
                                        FileStatus.COMMENT_ONLY)
                   and record.candidate_compilations == 0)
        needed_extra = [record for record in instances
                        if record.candidate_compilations > 0]
        extra_ok = [record for record in needed_extra
                    if record.status is FileStatus.OK]
        extra_failed = [record for record in instances
                        if record.status is FileStatus.LINES_NOT_COMPILED]
        max_compilations = max(
            (record.candidate_compilations for record in instances),
            default=0)
        stats[who] = {
            "total_instances": total,
            "covered_by_patch_c_files": Share(free, total),
            "needed_extra_c_files": Share(len(needed_extra), total),
            "extra_c_success": Share(len(extra_ok), total),
            "never_compiled": Share(len(extra_failed), total),
            "max_candidate_compilations": max_compilations,
        }
    return stats


def render_hfile_benefit_stats(stats: dict) -> str:
    """Text rendering of E-S4."""
    lines = ["Benefits of mutations for .h files (E-S4)"]
    for who, sub in stats.items():
        lines.append(
            f"  [{who}] covered by the patch's own .c files: "
            f"{sub['covered_by_patch_c_files'].render()}; needed extra "
            f".c files: {sub['needed_extra_c_files'].render()} "
            f"(success {sub['extra_c_success'].render()}, never "
            f"{sub['never_compiled'].render()}, max "
            f"{sub['max_candidate_compilations']} compilations)")
    return "\n".join(lines)


# -- E-S5: summary ------------------------------------------------------------

def summary_stats(result: EvaluationResult) -> dict:
    """E-S5: the headline certification rates (§V-B)."""
    all_patches = result.patch_records()
    janitor_patches = result.patch_records(janitor_only=True)
    return {
        "all": Share(sum(1 for p in all_patches if p.certified),
                     len(all_patches)),
        "janitor": Share(sum(1 for p in janitor_patches if p.certified),
                         len(janitor_patches)),
        "single_config_sufficient": Share(
            sum(1 for p in all_patches
                if p.certified and p.invocation_counts.get("config", 0)
                <= 1),
            len(all_patches)),
    }


def render_summary_stats(stats: dict) -> str:
    """Text rendering of E-S5."""
    return "\n".join([
        "Summary (E-S5)",
        f"  all patches fully certified: {stats['all'].render()}",
        f"  janitor patches fully certified: "
        f"{stats['janitor'].render()}",
        f"  patches certified with a single configuration: "
        f"{stats['single_config_sufficient'].render()}",
    ])


# -- E-S6: limitations -----------------------------------------------------------

def limitation_stats(result: EvaluationResult) -> dict:
    """E-S6: the bootstrap-file limitation (§V-D)."""
    bootstrap_instances = [
        record for record in result.file_instances()
        if record.status is FileStatus.BOOTSTRAP_UNTREATABLE]
    affected_patches = {record.commit_id
                        for record in bootstrap_instances}
    return {
        "untreatable_file_instances": len(bootstrap_instances),
        "affected_patches": Share(len(affected_patches),
                                  len(result.patches)),
    }


def render_limitation_stats(stats: dict) -> str:
    """Text rendering of E-S6."""
    return "\n".join([
        "Bootstrap-file limitation (E-S6)",
        f"  untreatable file instances: "
        f"{stats['untreatable_file_instances']}",
        f"  affected patches: {stats['affected_patches'].render()}",
    ])


# -- registry ---------------------------------------------------------------------

@dataclass
class Experiment:
    """One registry entry: id, title, and a run callable."""
    id: str
    title: str
    run: Callable[[EvaluationResult], tuple]


def _figure_experiment(fid, title, build, thresholds):
    def run(result: EvaluationResult):
        cdf = build(result)
        return cdf, describe_figure(cdf, title=title,
                                    thresholds=thresholds)
    return Experiment(id=fid, title=title, run=run)


def _stat_experiment(sid, title, compute, render):
    def run(result: EvaluationResult):
        stats = compute(result)
        return stats, render(stats)
    return Experiment(id=sid, title=title, run=run)


EXPERIMENTS: dict[str, Experiment] = {}


def _register(experiment: Experiment) -> None:
    EXPERIMENTS[experiment.id] = experiment


_register(_figure_experiment(
    "E-F4a", "Fig 4a: configuration creation time",
    figure4a_config_times, [5.0]))
_register(_figure_experiment(
    "E-F4b", "Fig 4b: .i file generation time",
    figure4b_i_times, [15.0, 22.0]))
_register(_figure_experiment(
    "E-F4c", "Fig 4c: .o file generation time",
    figure4c_o_times, [7.0, 15.0]))
_register(_figure_experiment(
    "E-F5", "Fig 5: overall running time (all patches)",
    figure5_overall, [30.0, 60.0]))
_register(_figure_experiment(
    "E-F6", "Fig 6: overall running time (janitor patches)",
    figure6_janitor_overall, [30.0, 60.0, 1080.0]))
_register(_stat_experiment(
    "E-S1", "architecture choice", architecture_stats,
    render_architecture_stats))
_register(_stat_experiment(
    "E-S2", "mutation counts", mutation_stats, render_mutation_stats))
_register(_stat_experiment(
    "E-S3", ".c benefit", cfile_benefit_stats,
    render_cfile_benefit_stats))
_register(_stat_experiment(
    "E-S4", ".h benefit", hfile_benefit_stats,
    render_hfile_benefit_stats))
_register(_stat_experiment(
    "E-S5", "summary", summary_stats, render_summary_stats))
_register(_stat_experiment(
    "E-S6", "limitations", limitation_stats, render_limitation_stats))
