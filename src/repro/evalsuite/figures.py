"""Figure regenerators: the CDFs of §V-C.

- Figure 4a: per-invocation configuration-creation time;
- Figure 4b: per-invocation ``.i``-generation time;
- Figure 4c: per-invocation ``.o``-generation time;
- Figure 5: overall JMake running time per patch (all patches);
- Figure 6: overall running time per patch (janitor patches).

Each returns a :class:`~repro.evalsuite.stats.Cdf`; use ``.series()``
for plotting data or ``.render_ascii()`` for terminal output.
"""

from __future__ import annotations

from repro.evalsuite.runner import EvaluationResult
from repro.evalsuite.stats import Cdf


def figure4a_config_times(result: EvaluationResult) -> Cdf:
    """Fig 4a: CDF of configuration-creation times."""
    return Cdf(result.step_durations("config"))


def figure4b_i_times(result: EvaluationResult) -> Cdf:
    """Fig 4b: CDF of .i-generation invocation times."""
    return Cdf(result.step_durations("make_i"))


def figure4c_o_times(result: EvaluationResult) -> Cdf:
    """Fig 4c: CDF of .o-generation invocation times."""
    return Cdf(result.step_durations("make_o"))


def figure5_overall(result: EvaluationResult) -> Cdf:
    """Fig 5: CDF of per-patch overall runtime, all patches."""
    return Cdf(result.overall_durations(janitor_only=False))


def figure6_janitor_overall(result: EvaluationResult) -> Cdf:
    """Fig 6: CDF of per-patch overall runtime, janitor patches."""
    return Cdf(result.overall_durations(janitor_only=True))


def describe_figure(cdf: Cdf, *, title: str,
                    thresholds: list[float]) -> str:
    """The textual summary the paper reports alongside each CDF."""
    if len(cdf) == 0:
        return f"{title}: no samples"
    lines = [f"{title} ({len(cdf)} samples)"]
    for threshold in thresholds:
        lines.append(f"  <= {threshold:g}s: "
                     f"{cdf.fraction_at_most(threshold):.1%}")
    lines.append(f"  max: {cdf.max:.1f}s")
    return "\n".join(lines)
