"""Evaluation harness: run JMake over a corpus and regenerate every
table and figure of the paper's §V.

- :mod:`repro.evalsuite.stats` — CDFs and aggregate helpers;
- :mod:`repro.evalsuite.runner` — the per-commit driver producing
  :class:`EvaluationResult`;
- :mod:`repro.evalsuite.tables` — Table I–IV renderers;
- :mod:`repro.evalsuite.figures` — Figure 4a/4b/4c/5/6 series;
- :mod:`repro.evalsuite.experiments` — the experiment registry mapping
  DESIGN.md experiment ids to callables.
"""

from repro.evalsuite.runner import (
    EvaluationResult,
    EvaluationRunner,
    FileInstanceRecord,
    PatchRecord,
)
from repro.evalsuite.stats import Cdf

__all__ = [
    "Cdf",
    "EvaluationResult",
    "EvaluationRunner",
    "FileInstanceRecord",
    "PatchRecord",
]
