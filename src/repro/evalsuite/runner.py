"""The evaluation driver: JMake over every commit of a corpus window.

Mirrors §V-A: take ``git log -w --diff-filter=M --no-merges`` between
the window tags, drop commits whose changes are entirely outside
``.c``/``.h`` or inside ``Documentation/``/``scripts/``/``tools/``, and
run JMake on the rest, recording per-file-instance and per-patch data
sufficient to regenerate every table, figure, and in-text statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buildcache.cache import BuildCache
from repro.buildcache.stats import CacheStats
from repro.cc.toolchain import ToolchainRegistry
from repro.core.changes import extract_changed_files
from repro.core.jmake import CheckSession, JMakeOptions
from repro.core.report import FileReport, FileStatus, PatchReport
from repro.errors import EvaluationError
from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    SITE_CACHE_LOAD,
    SITE_CACHE_STORE,
)
from repro.faults.resilience import RetryPolicy
from repro.janitors.identify import JanitorCriteria, JanitorFinder
from repro.kernel.layout import HazardKind
from repro.obs.logcfg import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.workload.corpus import Corpus
from repro.workload.personas import PersonaKind

_logger = get_logger("evalsuite.runner")


@dataclass
class FileInstanceRecord:
    """One file at one commit, as §V calls a *file instance*."""

    commit_id: str
    path: str
    status: FileStatus
    mutation_count: int
    useful_archs: list[str] = field(default_factory=list)
    missing_lines: list[int] = field(default_factory=list)
    candidate_compilations: int = 0
    #: all tokens covered by the first attempt whose clean .o succeeded
    first_clean_covers_all: bool = False
    #: some allyesconfig compilation succeeded but left tokens missing
    insidious_under_allyes: bool = False
    #: certification needed an architecture other than the host
    needed_non_host_arch: bool = False
    #: a non-allyesconfig configuration contributed coverage
    used_defconfig: bool = False
    #: ground-truth hazard kinds the commit touched in this file
    hazard_kinds: list[HazardKind] = field(default_factory=list)

    @property
    def is_c(self) -> bool:
        """True for .c instances."""
        return self.path.endswith(".c")

    @property
    def is_h(self) -> bool:
        """True for .h instances."""
        return self.path.endswith(".h")


@dataclass
class PatchRecord:
    """One checked patch: verdicts, author, timing, accounting."""
    commit_id: str
    author_name: str
    author_email: str
    is_janitor: bool
    shape: str                      # c_only | h_only | both
    certified: bool
    elapsed_seconds: float
    invocation_counts: dict[str, int] = field(default_factory=dict)
    invocation_durations: dict[str, list[float]] = field(
        default_factory=dict)
    files: list[FileInstanceRecord] = field(default_factory=list)
    #: CERTIFIED / ATTENTION REQUIRED / PARTIAL:<archs>
    verdict: str = ""
    quarantined_archs: list[str] = field(default_factory=list)
    #: FaultReport entries for the faults injected while checking
    fault_reports: list = field(default_factory=list)

    @property
    def fully_checked(self) -> bool:
        """False for PARTIAL commits — they must not be counted as
        checked (that silent over-count was the quarantine bug)."""
        return not self.quarantined_archs


@dataclass
class EvaluationResult:
    """Everything one evaluation run produced."""
    total_commits: int = 0
    ignored_commits: int = 0
    janitor_emails: set[str] = field(default_factory=set)
    patches: list[PatchRecord] = field(default_factory=list)
    #: build-cache telemetry for this run (None with caching disabled)
    cache_stats: CacheStats | None = None
    #: serialized per-commit span trees, sorted by commit index
    #: (None unless the runner observed the run)
    span_trees: "list[dict] | None" = None
    #: merged pipeline metrics (None unless the runner observed the run)
    metrics: "MetricsRegistry | None" = None
    #: verdict-journal telemetry (None when the run was not journaled);
    #: ``resumed`` is how many verdicts were replayed instead of rerun
    journal_stats: "dict | None" = None
    #: service scheduling telemetry (None outside service mode)
    service_stats: "dict | None" = None

    def canonical_records(self) -> str:
        """A deterministic text rendering of every verdict-bearing field.

        Two runs whose tables and figures would be identical produce the
        same string — the cached-vs-uncached equivalence surface. Cache
        telemetry is deliberately excluded; floats render via ``repr``
        so even last-bit drift shows up.
        """
        lines = [f"total={self.total_commits}",
                 f"ignored={self.ignored_commits}",
                 f"janitors={','.join(sorted(self.janitor_emails))}"]
        for patch in self.patches:
            lines.append(
                f"patch {patch.commit_id} author={patch.author_email} "
                f"janitor={patch.is_janitor} shape={patch.shape} "
                f"certified={patch.certified} "
                f"verdict={patch.verdict} "
                f"elapsed={patch.elapsed_seconds!r}")
            for fault in patch.fault_reports:
                # Cache-site faults only degrade probes/stores; their
                # count depends on cache state, which legitimately varies
                # with partitioning — step-site faults are the invariant.
                if fault.site in (SITE_CACHE_LOAD, SITE_CACHE_STORE):
                    continue
                lines.append(
                    f"  fault {fault.kind}@{fault.site} arch={fault.arch} "
                    f"path={fault.path} attempt={fault.attempt}")
            for kind in sorted(patch.invocation_counts):
                durations = ",".join(
                    repr(value) for value
                    in patch.invocation_durations.get(kind, []))
                lines.append(f"  step {kind} "
                             f"n={patch.invocation_counts[kind]} "
                             f"durations=[{durations}]")
            for record in patch.files:
                lines.append(
                    f"  file {record.path} status={record.status.name} "
                    f"mutations={record.mutation_count} "
                    f"archs={','.join(record.useful_archs)} "
                    f"missing={record.missing_lines} "
                    f"candidates={record.candidate_compilations} "
                    f"first_clean={record.first_clean_covers_all} "
                    f"insidious={record.insidious_under_allyes} "
                    f"non_host={record.needed_non_host_arch} "
                    f"defconfig={record.used_defconfig} "
                    f"hazards={','.join(kind.name for kind in record.hazard_kinds)}")
        return "\n".join(lines)

    # -- selections -------------------------------------------------------

    def patch_records(self, *, janitor_only: bool = False
                      ) -> list[PatchRecord]:
        """All patches, or the janitor subset."""
        if not janitor_only:
            return list(self.patches)
        return [patch for patch in self.patches if patch.is_janitor]

    def file_instances(self, *, janitor_only: bool = False,
                       suffix: str | None = None
                       ) -> list[FileInstanceRecord]:
        """File instances filtered by author set and suffix."""
        instances: list[FileInstanceRecord] = []
        for patch in self.patch_records(janitor_only=janitor_only):
            for record in patch.files:
                if suffix is None or record.path.endswith(suffix):
                    instances.append(record)
        return instances

    def step_durations(self, kind: str) -> list[float]:
        """All per-invocation durations of one step kind."""
        durations: list[float] = []
        for patch in self.patches:
            durations.extend(patch.invocation_durations.get(kind, []))
        return durations

    def overall_durations(self, *, janitor_only: bool = False
                          ) -> list[float]:
        """Per-patch elapsed simulated seconds."""
        return [patch.elapsed_seconds
                for patch in self.patch_records(janitor_only=janitor_only)]


#: criteria scaled to the synthetic corpus (the tree has ~40 MAINTAINERS
#: entries vs the kernel's ~1500, so the subsystem floor scales down;
#: the *structure* of the rule is Table I's).
def scaled_criteria(corpus: Corpus) -> JanitorCriteria:
    """Table I criteria scaled to the synthetic corpus size."""
    entries = len(corpus.tree.maintainers)
    return JanitorCriteria(
        min_patches=10,
        min_subsystems=max(3, entries // 3),
        min_lists=3,
        max_maintainer_share=0.05,
        min_eval_window_patches=max(
            2, len(corpus.eval_metadata) // 100),
        top_n=10,
    )


#: worker-process state for the parallel runner (set by the pool
#: initializer; each forked worker owns an independent JMake instance
#: but shares the pre-forked, copy-on-write build cache)
_WORKER: dict = {}


def _init_worker(corpus: Corpus, options: JMakeOptions,
                 cache: BuildCache | None, observe: bool,
                 jobs: int, fault_plan: "FaultPlan | None" = None,
                 retry_policy: "RetryPolicy | None" = None) -> None:
    _WORKER["corpus"] = corpus
    _WORKER["cache"] = cache
    _WORKER["jobs"] = jobs
    tracer = Tracer() if observe else None
    metrics = MetricsRegistry() if observe else None
    _WORKER["tracer"] = tracer
    _WORKER["metrics"] = metrics
    _WORKER["metrics_base"] = metrics.snapshot() if metrics is not None \
        else None
    _WORKER["jmake"] = CheckSession.from_generated_tree(corpus.tree,
                                                 options=options,
                                                 cache=cache,
                                                 tracer=tracer,
                                                 metrics=metrics,
                                                 fault_plan=fault_plan,
                                                 retry_policy=retry_policy)
    _WORKER["stats_base"] = cache.stats_snapshot() \
        if cache is not None else None


def _serialize_commit_tree(tracer: Tracer, index: int, jobs: int) -> dict:
    """Serialize the root span of the commit just checked.

    Simulated times rebase to the commit's own start (a span tree is a
    pure function of (corpus, commit)), and the worker id recorded is
    the commit's deterministic *lane* (``index % jobs``) rather than
    the racing OS process — together these make ``--trace-out`` output
    byte-stable across runs for any ``--jobs`` value.
    """
    roots = tracer.drain()
    root = roots[-1]
    root.set("commit.index", index)
    root.set("worker", index % jobs)
    return root.to_dict()


def _check_one(task: "tuple[int, str]") -> tuple:
    index, commit_id = task
    corpus: Corpus = _WORKER["corpus"]
    report = _WORKER["jmake"].check_commit(corpus.repository, commit_id)
    cache: BuildCache | None = _WORKER["cache"]
    delta = None
    if cache is not None:
        snapshot = cache.stats_snapshot()
        delta = snapshot.delta(_WORKER["stats_base"])
        _WORKER["stats_base"] = snapshot
    tree = None
    metrics_delta = None
    tracer: "Tracer | None" = _WORKER["tracer"]
    if tracer is not None:
        tree = _serialize_commit_tree(tracer, index, _WORKER["jobs"])
        snapshot = _WORKER["metrics"].snapshot()
        metrics_delta = snapshot.delta(_WORKER["metrics_base"])
        _WORKER["metrics_base"] = snapshot
    return index, report, delta, tree, metrics_delta


class EvaluationSession:
    """Runs JMake over a corpus window (§V-A protocol)."""
    def __init__(self, corpus: Corpus,
                 options: JMakeOptions | None = None,
                 criteria: JanitorCriteria | None = None,
                 cache: "BuildCache | bool | None" = None,
                 observe: bool = False,
                 fault_plan: "FaultPlan | None" = None,
                 retry_policy: "RetryPolicy | None" = None) -> None:
        self.corpus = corpus
        self.options = options or JMakeOptions()
        self.criteria = criteria or scaled_criteria(corpus)
        #: when True the run records span trees and pipeline metrics
        #: (simulated timings and verdicts are unaffected either way)
        self.observe = observe
        #: active fault plan (None outside fault-injection runs) and the
        #: retry/timeout policy the build systems run under
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        #: ``None``/``True`` -> a fresh private cache, ``False`` ->
        #: caching off, a BuildCache -> shared (warm across runs)
        if cache is False:
            self.cache: BuildCache | None = None
        elif cache is None or cache is True:
            self.cache = BuildCache()
        else:
            self.cache = cache

    def identify_janitors(self) -> set[str]:
        """The §IV identification over the corpus history."""
        finder = JanitorFinder(self.corpus.repository,
                               self.corpus.tree.maintainers,
                               criteria=self.criteria)
        ranked = finder.identify(
            history_since=None,
            history_until=Corpus.TAG_EVAL_END,
            eval_since=Corpus.TAG_EVAL_START,
            eval_until=Corpus.TAG_EVAL_END)
        return {developer.email for developer in ranked}

    def run(self, *, limit: int | None = None,
            use_ground_truth_janitors: bool = False,
            jobs: int = 1,
            service: "bool | int | object" = False,
            journal: str | None = None,
            resume: bool = False,
            journal_fsync: bool = True,
            journal_checkpoint_interval: int = 32,
            on_journal_append=None) -> EvaluationResult:
        """Run JMake over the evaluation window.

        ``jobs`` > 1 distributes patches over worker processes the way
        the paper ran 25 parallel processes on its testbed (§V-A);
        results are identical to the serial run because every check is
        a pure function of (corpus, commit).

        ``service`` routes the commits through an in-process sharded
        :class:`~repro.service.CheckService` instead — ``True`` for the
        default config, an int for a shard count, or a full
        ``ServiceConfig``. Verdict-bearing records are byte-identical
        to the sequential path (the differential suite pins this);
        span trees/metrics are not collected in service mode.

        ``journal`` names a write-ahead verdict journal: every patch
        verdict is durably appended the moment it exists, under every
        driver. ``resume=True`` replays that journal first and reruns
        only the commits without a durable verdict — the final result
        is byte-identical (``canonical_records()``) to an uninterrupted
        run, because verdicts are pure functions of (corpus, commit)
        and the codec round-trips them exactly. ``resume=False`` with
        an existing journal starts over (the stale journal is wiped).
        Span trees/metrics cover only the *fresh* commits of a resumed
        run; verdict-bearing records are unaffected.
        ``on_journal_append`` is the chaos observer (see
        :class:`repro.faults.chaos.CrashPoint`).
        """
        from repro.api import validate_jobs
        jobs = validate_jobs(jobs)
        if resume and journal is None:
            raise EvaluationError(
                "resume=True requires a journal path")
        stats_start = self.cache.stats_snapshot() \
            if self.cache is not None else None
        result = EvaluationResult()
        if use_ground_truth_janitors:
            result.janitor_emails = {
                persona.email for persona in self.corpus.roster
                if persona.kind is PersonaKind.JANITOR}
        else:
            result.janitor_emails = self.identify_janitors()

        repository = self.corpus.repository
        metadata = self.corpus.metadata_by_commit()
        commits = repository.log(since=Corpus.TAG_EVAL_START,
                                 until=Corpus.TAG_EVAL_END)
        # Commits dropped by the log filters themselves (merges,
        # whitespace-only) count toward the ignored population.
        window_size = len(self.corpus.eval_metadata)
        filtered_out = window_size - len(commits)
        if limit is not None:
            commits = commits[:limit]
            window_size = len(commits) + filtered_out
        result.total_commits = window_size
        result.ignored_commits = filtered_out

        checkable = []
        for commit in commits:
            if extract_changed_files(repository.show(commit)):
                checkable.append(commit)
            else:
                result.ignored_commits += 1

        ledger = None
        replayed: dict[str, PatchRecord] = {}
        if journal is not None:
            from repro.journal.records import patch_record_from_dict
            ledger = self._open_ledger(
                journal, resume=resume, fsync=journal_fsync,
                checkpoint_interval=journal_checkpoint_interval,
                on_append=on_journal_append,
                ground_truth=use_ground_truth_janitors)
            for key in ledger.keys():
                replayed[key] = patch_record_from_dict(ledger.get(key))
        pending = [commit for commit in checkable
                   if commit.id not in replayed]

        fresh: dict[str, PatchRecord] = {}

        def record_report(commit, report: PatchReport) -> None:
            """Build the verdict record and journal it immediately."""
            record = self._patch_record(commit, report, result,
                                        metadata.get(commit.id))
            fresh[commit.id] = record
            if ledger is not None:
                from repro.journal.records import patch_record_to_dict
                ledger.emit(commit.id, patch_record_to_dict(record))

        _logger.info("checking %d commits (%d replayed from journal; "
                     "jobs=%d, observe=%s, service=%s)", len(pending),
                     len(checkable) - len(pending), jobs, self.observe,
                     bool(service))
        trees: "list[dict] | None" = None
        metrics: "MetricsRegistry | None" = None
        try:
            if service:
                result.service_stats = self._run_service(
                    pending, service, record_report)
            elif jobs > 1:
                trees, metrics = self._run_parallel(
                    pending, jobs, record_report)
            else:
                tracer = Tracer() if self.observe else None
                metrics = MetricsRegistry() if self.observe else None
                jmake = CheckSession.from_generated_tree(
                    self.corpus.tree,
                    options=self.options,
                    cache=self.cache,
                    tracer=tracer,
                    metrics=metrics,
                    fault_plan=self.fault_plan,
                    retry_policy=self.retry_policy)
                trees = [] if self.observe else None
                for index, commit in enumerate(pending):
                    record_report(commit,
                                  jmake.check_commit(repository, commit))
                    if tracer is not None:
                        trees.append(
                            _serialize_commit_tree(tracer, index, 1))
        finally:
            if ledger is not None:
                result.journal_stats = dict(
                    ledger.stats(),
                    resumed=len(checkable) - len(pending))
                ledger.close()

        for commit in checkable:
            record = fresh.get(commit.id)
            if record is None:
                record = replayed[commit.id]
            result.patches.append(record)
        if self.cache is not None:
            result.cache_stats = \
                self.cache.stats_snapshot().delta(stats_start)
        result.span_trees = trees
        result.metrics = metrics
        return result

    def _open_ledger(self, journal: str, *, resume: bool, fsync: bool,
                     checkpoint_interval: int, on_append,
                     ground_truth: bool):
        """Open (or wipe) the verdict ledger and bind the run identity.

        The meta record refuses a --resume against a journal written by
        a different corpus/options combination — replaying verdicts of
        another run would silently produce wrong tables.
        """
        from repro.journal import VerdictLedger

        injector = FaultInjector(self.fault_plan) \
            if self.fault_plan else None
        ledger = VerdictLedger(journal, fsync=fsync,
                               checkpoint_interval=checkpoint_interval,
                               injector=injector, on_append=on_append,
                               fresh=not resume)
        spec = self.corpus.spec
        ledger.bind_meta({
            "corpus_seed": spec.seed,
            "history_commits": spec.history_commits,
            "eval_commits": spec.eval_commits,
            "use_configs": self.options.use_configs,
            "use_allmodconfig": self.options.use_allmodconfig,
            "ground_truth": ground_truth,
        })
        return ledger

    def _run_service(self, commits, service, on_report) -> dict:
        """Route the commits through an in-process check service.

        The service shares this runner's cache/fault-plan/retry-policy
        substrate; per-request sessions keep verdicts byte-identical to
        the sequential path. ``on_report`` fires per commit in
        submission order as results land (journaling incrementally);
        returns the service's scheduling stats (supervisor/breaker
        state included).
        """
        from repro.service import CheckService, ServiceConfig

        if isinstance(service, ServiceConfig):
            config = service
        elif service is True:
            config = ServiceConfig()
        else:
            config = ServiceConfig(shards=int(service))
        if config.fault_plan is None:
            config.fault_plan = self.fault_plan
        if config.retry_policy is None:
            config.retry_policy = self.retry_policy
        check_service = CheckService(
            self.corpus, options=self.options, config=config,
            cache=self.cache if self.cache is not None else False)
        by_id = {commit.id: commit for commit in commits}
        check_service.check_commits(
            [commit.id for commit in commits],
            on_result=lambda result: on_report(by_id[result.commit_id],
                                               result.report))
        return check_service.stats()

    def _run_parallel(self, commits, jobs: int, on_report):
        """Fan patches out over forked worker processes.

        The shared build cache is primed in the parent before the fork
        (Kconfig models and all*config per architecture), so every
        worker inherits the solved artifacts copy-on-write. Tasks run
        through ``imap_unordered`` in chunks — finished chunks stream
        back instead of rendezvousing like ``pool.map`` — and order is
        restored from each task's index. Workers return per-task stats
        deltas which the parent merges into its own counters.
        """
        import multiprocessing

        if self.cache is not None:
            self.cache.prime(
                self.corpus.tree, ToolchainRegistry(),
                use_allmodconfig=self.options.use_allmodconfig)
        context = multiprocessing.get_context("fork")
        tasks = [(index, commit.id)
                 for index, commit in enumerate(commits)]
        trees: "list[dict] | None" = [None] * len(tasks) \
            if self.observe else None
        metrics = MetricsRegistry() if self.observe else None
        chunksize = max(1, len(tasks) // (jobs * 4))
        with context.Pool(
                processes=jobs,
                initializer=_init_worker,
                initargs=(self.corpus, self.options, self.cache,
                          self.observe, jobs, self.fault_plan,
                          self.retry_policy)) as pool:
            for index, report, delta, tree, metrics_delta in \
                    pool.imap_unordered(_check_one, tasks, chunksize):
                # reports land (and journal) in completion order; the
                # caller restores final ordering from the commit list,
                # and the ledger is an order-free keyed map
                on_report(commits[index], report)
                if delta is not None and self.cache is not None:
                    self.cache.stats.merge(delta)
                if tree is not None and trees is not None:
                    # tasks land in completion order; slotting by index
                    # (and commutative metric merging) keeps the merged
                    # result identical however the workers raced
                    trees[index] = tree
                if metrics_delta is not None and metrics is not None:
                    metrics.merge(metrics_delta)
        if trees is not None:
            trees = [tree for tree in trees if tree is not None]
        return trees, metrics

    # -- record construction ------------------------------------------------

    def _patch_record(self, commit, report: PatchReport,
                      result: EvaluationResult,
                      ground_truth) -> PatchRecord:
        has_c = any(path.endswith(".c") for path in report.file_reports)
        has_h = any(path.endswith(".h") for path in report.file_reports)
        shape = "both" if (has_c and has_h) else \
            ("c_only" if has_c else "h_only")
        record = PatchRecord(
            commit_id=commit.id,
            author_name=commit.author.name,
            author_email=commit.author.email,
            is_janitor=commit.author.email in result.janitor_emails,
            shape=shape,
            certified=report.certified,
            elapsed_seconds=report.elapsed_seconds,
            invocation_counts=dict(report.invocation_counts),
            invocation_durations={
                kind: list(durations) for kind, durations
                in report.invocation_durations.items()},
            verdict=report.verdict,
            quarantined_archs=list(report.quarantined_archs),
            fault_reports=list(report.fault_reports),
        )
        hazard_by_path: dict[str, list[HazardKind]] = {}
        if ground_truth is not None:
            for edit in ground_truth.edits:
                if edit.hazard_kind is not None:
                    hazard_by_path.setdefault(edit.path, []).append(
                        edit.hazard_kind)
        for path, file_report in report.file_reports.items():
            record.files.append(self._file_record(
                commit.id, file_report, hazard_by_path.get(path, [])))
        return record

    @staticmethod
    def _file_record(commit_id: str, report: FileReport,
                     hazard_kinds: list[HazardKind]) -> FileInstanceRecord:
        all_tokens = {mutation.token for mutation in report.mutations}
        # §V-B "benefits for .c files": the good case is that the first
        # compilation that produces no error messages already subjects
        # every changed line to the compiler.
        first_i_ok = next((attempt for attempt in report.attempts
                           if attempt.i_ok), None)
        first_clean = bool(all_tokens) and first_i_ok is not None \
            and first_i_ok.tokens_found >= all_tokens \
            and any(attempt.o_ok for attempt in report.attempts)
        # §V-B "insidious case": an allyesconfig build goes through
        # without errors, yet its .i lacked some mutation tokens.
        insidious = bool(all_tokens) and any(
            attempt.i_ok
            and attempt.config_target == "allyesconfig"
            and not attempt.tokens_found >= all_tokens
            for attempt in report.attempts)
        used_defconfig = any(
            attempt.o_ok and attempt.config_target != "allyesconfig"
            and attempt.tokens_found
            for attempt in report.attempts)
        return FileInstanceRecord(
            commit_id=commit_id,
            path=report.path,
            status=report.status,
            mutation_count=len(report.mutations),
            useful_archs=list(report.useful_archs),
            missing_lines=report.missing_changed_lines(),
            candidate_compilations=report.candidate_compilations,
            first_clean_covers_all=first_clean,
            insidious_under_allyes=insidious,
            needed_non_host_arch=bool(report.useful_archs) and
            "x86_64" not in report.useful_archs,
            used_defconfig=used_defconfig,
            hazard_kinds=hazard_kinds,
        )


class EvaluationRunner(EvaluationSession):
    """Deprecated pre-``repro.api`` name of :class:`EvaluationSession`."""

    def __init__(self, *args, **kwargs) -> None:
        import warnings
        warnings.warn(
            "EvaluationRunner is deprecated; use "
            "repro.api.EvaluationSession (or the repro.api.evaluate "
            "helper)",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)
