"""Statistical helpers for the evaluation: CDFs and share computations."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass


class Cdf:
    """Empirical cumulative distribution function over durations."""

    def __init__(self, values: list[float]) -> None:
        self._sorted = sorted(values)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def values(self) -> list[float]:
        """The sorted sample."""
        return list(self._sorted)

    def fraction_at_most(self, threshold: float) -> float:
        """P(X <= threshold); 0.0 for an empty sample."""
        if not self._sorted:
            return 0.0
        return bisect_right(self._sorted, threshold) / len(self._sorted)

    def percentile(self, fraction: float) -> float:
        """Smallest value v with P(X <= v) >= fraction."""
        if not self._sorted:
            raise ValueError("empty CDF")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        # First index whose cumulative share covers the fraction.
        target = fraction * len(self._sorted)
        index = max(0, min(len(self._sorted) - 1, int(target + 0.999999) - 1))
        return self._sorted[index]

    @property
    def max(self) -> float:
        """Largest sample value."""
        if not self._sorted:
            raise ValueError("empty CDF")
        return self._sorted[-1]

    @property
    def min(self) -> float:
        """Smallest sample value."""
        if not self._sorted:
            raise ValueError("empty CDF")
        return self._sorted[0]

    def series(self, points: int = 100) -> list[tuple[float, float]]:
        """(x, P(X<=x)) pairs suitable for plotting Figure-style CDFs."""
        if not self._sorted:
            return []
        n = len(self._sorted)
        pairs: list[tuple[float, float]] = []
        for index, value in enumerate(self._sorted):
            pairs.append((value, (index + 1) / n))
        if len(pairs) <= points:
            return pairs
        step = len(pairs) / points
        sampled = [pairs[int(i * step)] for i in range(points)]
        if sampled[-1] != pairs[-1]:
            sampled.append(pairs[-1])
        return sampled

    def render_ascii(self, *, width: int = 60, height: int = 12,
                     title: str = "") -> str:
        """A terminal rendering of the CDF for harness output."""
        if not self._sorted:
            return f"{title}: (empty)"
        lo, hi = self._sorted[0], self._sorted[-1]
        span = hi - lo or 1.0
        rows: list[str] = []
        for row in range(height, 0, -1):
            frac = row / height
            line = []
            for col in range(width):
                x = lo + span * col / (width - 1)
                line.append("#" if self.fraction_at_most(x) >= frac
                            else " ")
            rows.append(f"{frac:4.0%} |" + "".join(line))
        axis = "      +" + "-" * width
        labels = f"      {lo:<12.1f}{'':^{max(0, width - 24)}}{hi:>12.1f}"
        header = [title] if title else []
        return "\n".join(header + rows + [axis, labels])


@dataclass(frozen=True)
class Share:
    """A count out of a total, rendered like the paper's 'N (P%)'."""

    count: int
    total: int

    @property
    def fraction(self) -> float:
        """count/total, 0.0 when the total is zero."""
        return self.count / self.total if self.total else 0.0

    def render(self) -> str:
        """The paper's 'N (P%)' formatting."""
        return f"{self.count} ({self.fraction:.0%})"
