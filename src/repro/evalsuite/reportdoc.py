"""Markdown report generation for an evaluation run.

Turns an :class:`~repro.evalsuite.runner.EvaluationResult` into a
self-contained markdown document with every table, figure summary, and
in-text statistic — the file a CI job would attach to a run, and the
format EXPERIMENTS.md is written in.
"""

from __future__ import annotations

from repro.evalsuite.experiments import EXPERIMENTS
from repro.evalsuite.figures import (
    figure4a_config_times,
    figure4b_i_times,
    figure4c_o_times,
    figure5_overall,
    figure6_janitor_overall,
)
from repro.evalsuite.runner import EvaluationResult
from repro.evalsuite.tables import table3, table4

_FIGURES = [
    ("Figure 4a — configuration creation time", figure4a_config_times,
     [5.0]),
    ("Figure 4b — .i generation time", figure4b_i_times, [15.0, 22.0]),
    ("Figure 4c — .o generation time", figure4c_o_times, [7.0, 15.0]),
    ("Figure 5 — overall running time (all patches)", figure5_overall,
     [30.0, 60.0]),
    ("Figure 6 — overall running time (janitor patches)",
     figure6_janitor_overall, [30.0, 60.0, 1080.0]),
]

_STAT_EXPERIMENTS = ["E-S1", "E-S2", "E-S3", "E-S4", "E-S5", "E-S6"]


def _code_block(text: str) -> str:
    return "```\n" + text + "\n```"


def write_markdown_report(result: EvaluationResult, *,
                          title: str = "JMake evaluation report") -> str:
    """Render the complete evaluation as one markdown document."""
    sections: list[str] = [f"# {title}", ""]

    checked = len(result.patches)
    certified = sum(1 for patch in result.patches if patch.certified)
    sections += [
        "## Window",
        "",
        f"- commits in window: **{result.total_commits}**",
        f"- ignored (merges, whitespace-only, docs-only, non-.c/.h): "
        f"**{result.ignored_commits}**",
        f"- patches checked: **{checked}**",
        f"- fully certified: **{certified}** "
        f"({certified / checked:.0%})" if checked else "- no patches",
        f"- identified janitors: **{len(result.janitor_emails)}**",
        "",
    ]

    _, table3_text = table3(result)
    sections += ["## Table III — patch characteristics", "",
                 _code_block(table3_text), ""]
    _, table4_text = table4(result, janitor_only=True)
    sections += ["## Table IV — reasons lines escape the compiler "
                 "(janitor patches)", "", _code_block(table4_text), ""]

    sections += ["## Figures (simulated seconds)", ""]
    for heading, build, thresholds in _FIGURES:
        cdf = build(result)
        lines = [f"### {heading}", ""]
        if len(cdf) == 0:
            lines += ["(no samples)", ""]
        else:
            for threshold in thresholds:
                lines.append(f"- ≤ {threshold:g} s: "
                             f"{cdf.fraction_at_most(threshold):.1%}")
            lines += [f"- max: {cdf.max:.1f} s",
                      f"- samples: {len(cdf)}", "",
                      _code_block(cdf.render_ascii(width=50, height=8)),
                      ""]
        sections += lines

    sections += ["## In-text statistics", ""]
    for experiment_id in _STAT_EXPERIMENTS:
        _, text = EXPERIMENTS[experiment_id].run(result)
        sections += [f"### {experiment_id}", "", _code_block(text), ""]

    sections += [
        "## Worst patches",
        "",
        "| commit | author | verdict | elapsed (s) |",
        "|---|---|---|---|",
    ]
    worst = sorted(result.patches, key=lambda p: -p.elapsed_seconds)[:10]
    for patch in worst:
        verdict = "certified" if patch.certified else "attention"
        sections.append(
            f"| `{patch.commit_id[:12]}` | {patch.author_name} | "
            f"{verdict} | {patch.elapsed_seconds:.1f} |")
    sections.append("")
    return "\n".join(sections)
