"""Renderers for the paper's tables.

Each function returns both the structured data and a fixed-width text
rendering, so benchmarks can print the same rows the paper reports and
tests can assert on the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import FileStatus
from repro.evalsuite.runner import EvaluationResult
from repro.evalsuite.stats import Share
from repro.janitors.identify import JanitorCriteria, RankedDeveloper
from repro.kernel.layout import HazardKind


def render_grid(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table rendering used by all table outputs."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells):
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths))
    rule = "-+-".join("-" * width for width in widths)
    return "\n".join([fmt(headers), rule] + [fmt(row) for row in rows])


# -- Table I ----------------------------------------------------------------

def table1(criteria: JanitorCriteria | None = None
           ) -> tuple[dict, str]:
    """Thresholds on janitor activity (Table I)."""
    criteria = criteria or JanitorCriteria()
    data = {
        "# patches": f">= {criteria.min_patches}",
        "# subsystems": f">= {criteria.min_subsystems}",
        "# lists": f">= {criteria.min_lists}",
        "# maintainer patches":
            f"< {criteria.max_maintainer_share:.0%}",
    }
    rows = [[key, value] for key, value in data.items()]
    return data, render_grid(["threshold", "value"], rows)


# -- Table II ----------------------------------------------------------------

def table2(ranked: list[RankedDeveloper],
           tool_users: set[str] = frozenset(),
           interns: set[str] = frozenset()) -> tuple[list[dict], str]:
    """Janitors identified using the criteria (Table II)."""
    data = []
    rows = []
    for developer in ranked:
        marker = ""
        if developer.name in tool_users:
            marker = " (T)"
        elif developer.name in interns:
            marker = " (I)"
        data.append({
            "name": developer.name,
            "patches": developer.patches,
            "subsystems": developer.subsystems,
            "lists": developer.lists,
            "maintainer": developer.maintainer_share,
            "file_cv": developer.file_cv,
        })
        rows.append([developer.name + marker, str(developer.patches),
                     str(developer.subsystems), str(developer.lists),
                     f"{developer.maintainer_share:.0%}",
                     f"{developer.file_cv:.2f}"])
    text = render_grid(
        ["developer", "patches", "subsystems", "lists", "maintainer",
         "file cv"], rows)
    return data, text


# -- Table III ----------------------------------------------------------------

@dataclass
class Table3Row:
    """One Table III row: label plus all/janitor shares."""
    label: str
    all_patches: Share
    janitor_patches: Share


def table3(result: EvaluationResult) -> tuple[list[Table3Row], str]:
    """Characteristics of all patches and of janitor patches."""
    def shares(janitor_only: bool) -> dict[str, Share]:
        records = result.patch_records(janitor_only=janitor_only)
        total = len(records)
        counts = {"c_only": 0, "h_only": 0, "both": 0}
        for record in records:
            counts[record.shape] += 1
        return {shape: Share(count, total)
                for shape, count in counts.items()}

    all_shares = shares(False)
    janitor_shares = shares(True)
    labels = {"c_only": ".c files only", "h_only": ".h files only",
              "both": "both .c and .h files"}
    rows_data = [Table3Row(labels[shape], all_shares[shape],
                           janitor_shares[shape])
                 for shape in ("c_only", "h_only", "both")]
    rows = [[row.label, row.all_patches.render(),
             row.janitor_patches.render()] for row in rows_data]
    return rows_data, render_grid(
        ["", "All patches", "Janitor patches"], rows)


# -- Table IV ----------------------------------------------------------------

_TABLE4_LABELS = {
    HazardKind.CHOICE_UNSET:
        "change under #ifdef variable not set by allyesconfig",
    HazardKind.NEVER_SET:
        "change under #ifdef variable never set in the kernel",
    HazardKind.MODULE_ONLY: "change under #ifdef MODULE",
    HazardKind.IFNDEF: "change under #ifndef or #else",
    HazardKind.IFDEF_AND_ELSE: "change under both #ifdef and #else",
    HazardKind.IF_ZERO: "change under #if 0",
    HazardKind.UNUSED_MACRO: "change in unused macro",
}


def table4(result: EvaluationResult, *,
           janitor_only: bool = True) -> tuple[dict[HazardKind, int], str]:
    """Reasons why some changed lines are not subjected to the compiler.

    Counts affected file instances per hazard category, over the
    (by default janitor) file instances whose verdict was
    LINES_NOT_COMPILED, using corpus ground truth for attribution the
    way the paper's authors studied the code by hand.
    """
    counts: dict[HazardKind, int] = {kind: 0 for kind in _TABLE4_LABELS}
    for instance in result.file_instances(janitor_only=janitor_only):
        if instance.status is not FileStatus.LINES_NOT_COMPILED:
            continue
        for kind in set(instance.hazard_kinds):
            if kind in counts:   # ARCH_CONDITIONAL is not a Table IV row
                counts[kind] += 1
    rows = [[_TABLE4_LABELS[kind], str(count)]
            for kind, count in counts.items()]
    return counts, render_grid(["reason", "affected file instances"],
                               rows)
