"""Command-line interface: ``jmake``.

Subcommands::

    jmake demo                      run JMake on a demo patch over the
                                    synthetic tree and print the report
    jmake evaluate [--commits N]    build a corpus, run the evaluation
                                    window, and print every table/figure
    jmake janitors [--commits N]    identify janitors (Tables I-II)

Everything runs offline against the generated substrate; see README.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.jmake import JMake, JMakeOptions
from repro.evalsuite.experiments import EXPERIMENTS
from repro.evalsuite.runner import EvaluationRunner
from repro.evalsuite.tables import table1, table2, table3, table4
from repro.janitors.identify import JanitorFinder
from repro.kernel.generator import generate_tree
from repro.vcs.diff import Patch, diff_texts
from repro.workload.corpus import Corpus, CorpusSpec, build_corpus
from repro.workload.personas import PersonaKind


def _demo(args: argparse.Namespace) -> int:
    tree = generate_tree()
    jmake = JMake.from_generated_tree(tree)

    path = "drivers/staging/comedi/comedi0.c"
    original = tree.files[path]
    edited = original.replace("int status = 0;",
                              "int status = 0;\n\tint retries = 0;")
    files = dict(tree.files)
    files[path] = edited
    worktree = JMake.worktree_for_files(files)
    patch = Patch(files=[diff_texts(path, original, edited)])

    print(f"Checking a demo patch touching {path} ...")
    report = jmake.check_patch(worktree, patch)
    print(report.render())
    return 0 if report.certified else 1


def _evaluate(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"jmake evaluate: --jobs must be a positive integer "
              f"(got {args.jobs})", file=sys.stderr)
        return 2
    spec = CorpusSpec(seed=args.seed,
                      history_commits=max(200, args.commits // 2),
                      eval_commits=args.commits)
    print(f"Building corpus ({spec.eval_commits} evaluation commits) ...")
    corpus = build_corpus(spec)
    options = JMakeOptions(use_configs=not args.no_configs,
                           use_allmodconfig=args.allmodconfig)
    if args.no_cache:
        cache: "BuildCache | bool" = False
    else:
        from repro.buildcache.cache import BuildCache, CachePolicy
        policy = CachePolicy(clock=args.cache_clock)
        if args.cache_file:
            cache = BuildCache.load(args.cache_file, policy)
        else:
            cache = BuildCache(policy)
    runner = EvaluationRunner(corpus, options=options, cache=cache)
    print("Running JMake over the evaluation window ...")
    result = runner.run(limit=args.limit, jobs=args.jobs)
    if args.cache_file and runner.cache is not None:
        runner.cache.save(args.cache_file)
        print(f"build cache written to {args.cache_file}")

    print(f"\ncommits: {result.total_commits}  ignored: "
          f"{result.ignored_commits}  patches checked: "
          f"{len(result.patches)}\n")
    if args.cache_stats and result.cache_stats is not None:
        print("Build cache statistics\n" + result.cache_stats.render()
              + "\n")
    _, text = table3(result)
    print("Table III — patch characteristics\n" + text + "\n")
    _, text = table4(result)
    print("Table IV — reasons lines escape the compiler (janitors)\n"
          + text + "\n")
    for experiment_id in ("E-F4a", "E-F4b", "E-F4c", "E-F5", "E-F6",
                          "E-S1", "E-S2", "E-S3", "E-S4", "E-S5", "E-S6"):
        _, text = EXPERIMENTS[experiment_id].run(result)
        print(text + "\n")
    if args.output:
        from repro.evalsuite.reportdoc import write_markdown_report
        with open(args.output, "w") as handle:
            handle.write(write_markdown_report(result))
        print(f"markdown report written to {args.output}")
    return 0


def _janitors(args: argparse.Namespace) -> int:
    spec = CorpusSpec(seed=args.seed,
                      history_commits=args.commits,
                      eval_commits=max(100, args.commits // 3))
    print(f"Building corpus ({spec.history_commits} history commits) ...")
    corpus = build_corpus(spec)
    from repro.evalsuite.runner import scaled_criteria
    criteria = scaled_criteria(corpus)
    _, text = table1(criteria)
    print("Table I — thresholds\n" + text + "\n")
    finder = JanitorFinder(corpus.repository, corpus.tree.maintainers,
                           criteria=criteria)
    ranked = finder.identify(
        history_since=None, history_until=Corpus.TAG_EVAL_END,
        eval_since=Corpus.TAG_EVAL_START, eval_until=Corpus.TAG_EVAL_END)
    tool_users = {p.name for p in corpus.roster if p.tool_user}
    interns = {p.name for p in corpus.roster if p.intern}
    _, text = table2(ranked, tool_users=tool_users, interns=interns)
    print("Table II — identified janitors\n" + text)
    ground_truth = {p.name for p in corpus.roster
                    if p.kind is PersonaKind.JANITOR}
    hits = sum(1 for dev in ranked if dev.name in ground_truth)
    print(f"\nground-truth janitors recovered: {hits}/{len(ranked)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``jmake`` command."""
    parser = argparse.ArgumentParser(
        prog="jmake",
        description="JMake reproduction (Lawall & Muller, DSN 2017)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="check one demo patch")
    demo.set_defaults(func=_demo)

    evaluate = sub.add_parser("evaluate",
                              help="regenerate the paper's evaluation")
    evaluate.add_argument("--commits", type=int, default=400)
    evaluate.add_argument("--limit", type=int, default=None)
    evaluate.add_argument("--seed", default="jmake-cli")
    evaluate.add_argument("--no-configs", action="store_true",
                          help="allyesconfig only (the E-S1 baseline)")
    evaluate.add_argument("--allmodconfig", action="store_true",
                          help="also try allmodconfig (the E-A1 extension)")
    evaluate.add_argument("--jobs", type=int, default=1,
                          help="worker processes (the paper used 25)")
    evaluate.add_argument("--no-cache", action="store_true",
                          help="disable the content-addressed build cache")
    evaluate.add_argument("--cache-stats", action="store_true",
                          help="print build-cache hit/miss statistics")
    evaluate.add_argument("--cache-file", default=None,
                          help="pickle the build cache here "
                               "(loaded first if it exists)")
    evaluate.add_argument("--cache-clock", default="replay",
                          choices=["replay", "probe"],
                          help="hit accounting: replay charges the full "
                               "modeled cost (timings byte-identical); "
                               "probe charges only the probe cost")
    evaluate.add_argument("--output", default=None,
                          help="write a markdown report to this path")
    evaluate.set_defaults(func=_evaluate)

    janitors = sub.add_parser("janitors",
                              help="identify janitors (Tables I-II)")
    janitors.add_argument("--commits", type=int, default=900)
    janitors.add_argument("--seed", default="jmake-cli")
    janitors.set_defaults(func=_janitors)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
